"""Phoenix matrix: executor crash-restart vs lineage recompute.

Spark's fault story is *lineage*: lose an executor, recompute the lost
partitions from the RDD recipe.  TeraHeap adds a second story: cached
partitions living in H2 sit on a durable device, so a successor VM can
recover the committed image and **re-adopt** the blocks instead of
recomputing them.  This experiment measures exactly that trade, by
killing the executor at every interesting point of a cached three-stage
job and driving it to completion through the bounded-restart loop
(:func:`repro.frameworks.spark.recovery.run_job`):

- crash *before* the first durable commit (mid promotion flush, mid
  coalesced H2 flush, between major-GC copy batches): nothing to adopt,
  every persisted block is reported lost and recomputed from lineage;
- crash *after* a commit (mid second epoch commit, mid second header
  batch, at a task boundary of the final pass): the successor re-adopts
  every committed block and recomputes nothing;
- crash with nothing persisted: pure lineage recompute, the Spark
  baseline the paper's Section 2 compares against.

Acceptance, per crash cell: the kill fires, the job completes with
exactly one restart and the crash-free value, the adoption ledger
balances (``adopted + quarantined + lost == persisted blocks``,
``recomputed == quarantined + lost``), post-commit cells adopt
everything and beat the cold-recompute wall whenever they adopted
anything, and the whole cell — walls included — is byte-identical when
run twice (``--check-determinism``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..config import TeraHeapConfig, VMConfig
from ..errors import RetryExhausted, UnrecoverableCrash
from ..faults.plan import FaultConfig
from ..frameworks.spark import (
    CachePolicy,
    SparkConf,
    SparkContext,
    run_job,
)
from ..runtime import JavaVM
from ..units import KiB, gb

#: partitions per RDD (also tasks per pass)
NUM_PARTITIONS = 4
#: passes over the cached data; a major GC (and, under ``commit``/
#: ``flush`` writeback, a durable epoch commit) separates them
PASSES = 3
REGION_SIZE = 64 * KiB
PROMOTION_BUFFER = 32 * KiB
WORKLOAD_SEED = 11
FAULT_SEED = 2207

POLICIES: Tuple[str, ...] = ("commit", "flush")
#: persisted fraction of the lineage chain: 0.0 nothing, 0.5 the
#: expensive middle stage, 1.0 middle and top
FRACTIONS: Tuple[float, ...] = (0.0, 0.5, 1.0)


@dataclass(frozen=True)
class CrashSpec:
    """One cell of the sweep: where to kill, and what recovery owes us.

    ``adopts`` is the calibrated expectation: ``True`` when the kill
    lands after the first durable epoch commit (so every persisted
    block must be re-adopted), ``False`` when it lands before (so every
    persisted block must be reported lost and recomputed).
    """

    name: str
    crash_point: Optional[str] = None
    crash_after: int = 1
    crash_stage: Optional[str] = None
    crash_task: int = 1
    adopts: bool = False


#: visit counts calibrated against the 3-pass workload (see the probe
#: table in docs/resilience.md): commits land at the end of each major
#: GC, so the first ``h2_flush``/``promotion_flush``/``major_compact``
#: visits precede any commit while the *second* ``epoch_commit`` and
#: ``region_metadata_update`` visits interrupt commit 2 with commit 1
#: already durable
CRASH_POINTS: Tuple[CrashSpec, ...] = (
    CrashSpec("task-boundary", crash_stage="top", crash_task=10, adopts=True),
    CrashSpec("epoch_commit", crash_point="epoch_commit", crash_after=2,
              adopts=True),
    CrashSpec("region_metadata_update",
              crash_point="region_metadata_update", crash_after=2,
              adopts=True),
    CrashSpec("h2_flush", crash_point="h2_flush", crash_after=1),
    CrashSpec("promotion_flush", crash_point="promotion_flush",
              crash_after=8),
    CrashSpec("major_compact", crash_point="major_compact", crash_after=30),
)
#: with nothing persisted the GC safepoints never run; only the task
#: boundary can kill the executor
NOTHING_PERSISTED_POINTS: Tuple[CrashSpec, ...] = (
    CrashSpec("task-boundary", crash_stage="top", crash_task=10),
)


def make_vm(policy: str, fault: Optional[FaultConfig] = None) -> JavaVM:
    return JavaVM(
        VMConfig(
            heap_size=gb(8),
            teraheap=TeraHeapConfig(
                enabled=True,
                h2_size=gb(64),
                region_size=REGION_SIZE,
                promotion_buffer_size=PROMOTION_BUFFER,
                writeback_policy=policy,
            ),
            page_cache_size=gb(8),
            faults=fault,
            audit="full",
        )
    )


def build_job(ctx: SparkContext, fraction: float):
    """The three-stage cached job: src -> mid (expensive) -> top.

    ``mid`` costs 10x the compute of the other stages, so losing its
    cached blocks is what hurts — exactly the asymmetry that makes H2
    block survival worth measuring against lineage recompute.
    """
    src = ctx.range_rdd(gb(1), compute_ops_per_chunk=200, name="src")
    mid = src.map(ops_per_chunk=2000, name="mid")
    top = mid.map(ops_per_chunk=200, name="top")
    if fraction >= 0.5:
        mid.persist()
    if fraction >= 1.0:
        top.persist()

    def job() -> int:
        total = 0
        for i in range(PASSES):
            total += top.evaluate()
            if i < PASSES - 1:
                ctx.vm.major_gc()
        return total

    return job


def persisted_blocks(fraction: float) -> int:
    persisted = (1 if fraction >= 0.5 else 0) + (1 if fraction >= 1.0 else 0)
    return persisted * NUM_PARTITIONS


@dataclass
class CellResult:
    """One (crash point, policy, fraction) cell of the matrix."""

    point: str
    policy: str
    fraction: float
    crashed: bool = False
    restarts: int = 0
    value: int = 0
    adopted: int = 0
    quarantined: int = 0
    lost: int = 0
    recomputed: int = 0
    recovery_wall: float = 0.0
    error: str = ""
    report_digests: List[str] = field(default_factory=list)

    def digest(self) -> str:
        """Canonical cell outcome, for the determinism acceptance check."""
        lines = [
            f"[cell] {self.point}/{self.policy}/{self.fraction:g}",
            f"crashed\t{self.crashed}",
            f"restarts\t{self.restarts}",
            f"value\t{self.value}",
            "blocks\t"
            f"adopted={self.adopted} quarantined={self.quarantined} "
            f"lost={self.lost} recomputed={self.recomputed}",
            f"recovery_wall\t{self.recovery_wall:.9f}",
            f"error\t{self.error.splitlines()[0] if self.error else '-'}",
        ]
        lines.extend(f"[restart]\n{d}" for d in self.report_digests)
        return "\n".join(lines)

    def row(self, cold_wall: float) -> str:
        outcome = self.error.splitlines()[0] if self.error else "ok"
        speedup = (
            f"{cold_wall / self.recovery_wall:5.2f}x"
            if self.recovery_wall > 0
            else "    -"
        )
        return (
            f"{self.point:24s} {self.policy:7s} {self.fraction:4.1f} "
            f"{'crash' if self.crashed else 'ran':6s} "
            f"r={self.restarts} "
            f"adopt={self.adopted:2d} quar={self.quarantined:2d} "
            f"lost={self.lost:2d} recomp={self.recomputed:2d} "
            f"wall={self.recovery_wall:8.4f}s vs cold {speedup} "
            f"{outcome}"
        )


def run_cell(
    spec: CrashSpec,
    policy: str,
    fraction: float,
    workload_seed: int = WORKLOAD_SEED,
    fault_seed: int = FAULT_SEED,
) -> CellResult:
    result = CellResult(point=spec.name, policy=policy, fraction=fraction)
    fault = FaultConfig(
        seed=workload_seed,
        fault_seed=fault_seed,
        crash_point=spec.crash_point,
        crash_after=spec.crash_after,
        crash_stage=spec.crash_stage,
        crash_task=spec.crash_task,
    )
    vm = make_vm(policy, fault)
    ctx = SparkContext(
        vm,
        SparkConf(
            cache_policy=CachePolicy.TERAHEAP, num_partitions=NUM_PARTITIONS
        ),
    )
    job = build_job(ctx, fraction)
    try:
        job_result = run_job(ctx, job)
    except (RetryExhausted, UnrecoverableCrash) as exc:
        result.error = f"{type(exc).__name__}: {exc}"
        result.crashed = True
        return result
    result.value = job_result.value
    result.restarts = job_result.restarts
    result.report_digests = [r.digest() for r in job_result.reports]
    log = ctx.vm.resilience.log
    result.crashed = log.crash_count > 0
    result.adopted = log.adoption_count("adopted")
    result.quarantined = log.adoption_count("quarantined")
    result.lost = log.adoption_count("lost")
    result.recomputed = log.adoption_count("recomputed")
    # The successor VM's clock starts at zero on restart, so its elapsed
    # time is exactly the recovery wall: recover + adopt + finish the
    # job.  Without a crash this is simply the job wall.
    result.recovery_wall = ctx.vm.clock.now
    return result


def run_baseline(
    policy: str, fraction: float, workload_seed: int = WORKLOAD_SEED
) -> Tuple[int, float]:
    """Crash-free cold run: (value, full-recompute wall)."""
    vm = make_vm(policy)
    ctx = SparkContext(
        vm,
        SparkConf(
            cache_policy=CachePolicy.TERAHEAP, num_partitions=NUM_PARTITIONS
        ),
    )
    job = build_job(ctx, fraction)
    return job(), vm.clock.now


def check_cell(
    cell: CellResult,
    spec: CrashSpec,
    baseline_value: int,
    cold_wall: float,
) -> List[str]:
    """The acceptance assertions for one crash cell."""
    where = f"{cell.point}/{cell.policy}/{cell.fraction:g}"
    failures: List[str] = []
    if not cell.crashed:
        return [f"{where}: crash never fired"]
    if cell.error:
        return [f"{where}: {cell.error}"]
    if cell.restarts != 1:
        failures.append(f"{where}: {cell.restarts} restarts, expected 1")
    if cell.value != baseline_value:
        failures.append(
            f"{where}: value {cell.value} != crash-free {baseline_value}"
        )
    expected_blocks = persisted_blocks(cell.fraction)
    accounted = cell.adopted + cell.quarantined + cell.lost
    if accounted != expected_blocks:
        failures.append(
            f"{where}: adoption ledger unbalanced: "
            f"{accounted} accounted != {expected_blocks} persisted"
        )
    if cell.recomputed != cell.quarantined + cell.lost:
        failures.append(
            f"{where}: recomputed {cell.recomputed} != "
            f"quarantined+lost {cell.quarantined + cell.lost}"
        )
    if spec.adopts and cell.adopted != expected_blocks:
        failures.append(
            f"{where}: post-commit crash adopted {cell.adopted} of "
            f"{expected_blocks} committed blocks"
        )
    if not spec.adopts and cell.adopted != 0:
        failures.append(
            f"{where}: pre-commit crash adopted {cell.adopted} blocks "
            "that were never durable"
        )
    if cell.adopted > 0 and cell.recovery_wall >= cold_wall:
        failures.append(
            f"{where}: recovery wall {cell.recovery_wall:.4f}s not below "
            f"cold recompute {cold_wall:.4f}s despite "
            f"{cell.adopted} adopted blocks"
        )
    return failures


def cells_for(fraction: float, smoke: bool) -> Sequence[CrashSpec]:
    if fraction <= 0.0:
        return NOTHING_PERSISTED_POINTS
    if smoke:
        return tuple(
            s for s in CRASH_POINTS
            if s.name in ("task-boundary", "epoch_commit", "h2_flush")
        )
    return CRASH_POINTS


def run_matrix(
    policies: Sequence[str] = POLICIES,
    fractions: Sequence[float] = FRACTIONS,
    smoke: bool = False,
    workload_seed: int = WORKLOAD_SEED,
    fault_seed: int = FAULT_SEED,
    determinism: bool = True,
) -> Tuple[List[Tuple[CellResult, float]], List[str]]:
    """Sweep crash point x policy x persisted fraction.

    Returns ``(cells, failures)`` where each cell is paired with its
    cold-recompute wall for reporting.
    """
    results: List[Tuple[CellResult, float]] = []
    failures: List[str] = []
    for policy in policies:
        for fraction in fractions:
            baseline_value, cold_wall = run_baseline(
                policy, fraction, workload_seed
            )
            for spec in cells_for(fraction, smoke):
                cell = run_cell(
                    spec, policy, fraction, workload_seed, fault_seed
                )
                results.append((cell, cold_wall))
                failures.extend(
                    check_cell(cell, spec, baseline_value, cold_wall)
                )
                if determinism and not cell.error:
                    rerun = run_cell(
                        spec, policy, fraction, workload_seed, fault_seed
                    )
                    if rerun.digest() != cell.digest():
                        failures.append(
                            f"{cell.point}/{policy}/{fraction:g}: cell "
                            "digest differs across reruns"
                        )
    return results, failures


def format_matrix(
    results: List[Tuple[CellResult, float]], failures: List[str]
) -> str:
    lines = [
        "crash_point              policy  frac fate   restarts "
        "blocks(adopt/quar/lost/recomp)  recovery_wall  outcome"
    ]
    lines.extend(cell.row(cold) for cell, cold in results)
    if failures:
        lines.append("")
        lines.append(f"{len(failures)} failure(s):")
        lines.extend(f"  {msg}" for msg in failures)
    else:
        lines.append("")
        lines.append(
            "all crash cells recovered: committed blocks re-adopted, lost "
            "partitions recomputed from lineage, values crash-free-exact"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.phoenix",
        description=(
            "executor crash-restart matrix: H2 block adoption vs "
            "lineage recompute"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller matrix ('commit' policy, fractions 0/1, 3 points)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any acceptance failure",
    )
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run every crash cell twice; digests must be byte-identical",
    )
    parser.add_argument("--workload-seed", type=int, default=WORKLOAD_SEED)
    parser.add_argument("--fault-seed", type=int, default=FAULT_SEED)
    parser.add_argument(
        "--csv-out",
        default=None,
        help="write the last cell's resilience-event CSV to this path",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write the last cell's chrome trace (with crash/restart/"
        "adoption instants) to this path",
    )
    args = parser.parse_args(argv)

    policies: Sequence[str] = ("commit",) if args.smoke else POLICIES
    fractions: Sequence[float] = (0.0, 1.0) if args.smoke else FRACTIONS
    results, failures = run_matrix(
        policies=policies,
        fractions=fractions,
        smoke=args.smoke,
        workload_seed=args.workload_seed,
        fault_seed=args.fault_seed,
        determinism=args.check_determinism,
    )
    print(format_matrix(results, failures))
    if args.csv_out or args.trace_out:
        _write_artifacts(args)
    if args.check and failures:
        return 1
    return 0


def _write_artifacts(args) -> None:
    """Re-run one post-commit cell and export its CSV/chrome trace."""
    from ..metrics.chrome_trace import chrome_trace_json, vm_engine
    from ..metrics.trace import resilience_events_csv, write_csv

    fault = FaultConfig(
        seed=args.workload_seed,
        fault_seed=args.fault_seed,
        crash_stage="top",
        crash_task=10,
    )
    vm = make_vm("commit", fault)
    ctx = SparkContext(
        vm,
        SparkConf(
            cache_policy=CachePolicy.TERAHEAP, num_partitions=NUM_PARTITIONS
        ),
    )
    run_job(ctx, build_job(ctx, 1.0))
    log = ctx.vm.resilience.log
    if args.csv_out:
        write_csv(args.csv_out, resilience_events_csv(log))
        print(f"resilience events -> {args.csv_out}")
    if args.trace_out:
        with open(args.trace_out, "w") as f:
            f.write(
                chrome_trace_json(
                    vm_engine(ctx.vm), label="phoenix", resilience=log
                )
            )
        print(f"chrome trace -> {args.trace_out}")


if __name__ == "__main__":
    sys.exit(main())
