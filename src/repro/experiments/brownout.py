"""Brownout chaos-soak: device brownouts vs. the H2 governor.

A Spark-style caching workload (TERAHEAP policy: every cached partition
is tagged and migrated to H2) runs while the backing device browns out —
a scheduled window of simulated time during which every device op costs
``1/fraction`` times its clean cost and H2 region allocations are
denied.  The matrix crosses brownout *duration* (as a fraction of the
clean run time) with the H2 governor on/off:

- **governor off** (the ungoverned control): every major GC keeps
  aiming transfers at the browned-out device; the denials burn through
  the resilience failure budget, H2 transfers degrade *permanently*,
  the cache pins itself in H1, and the run dies with a modeled
  ``OutOfMemoryError`` (or limps across the line with large stalls).
- **governor on**: the device-health watchdog sees the cost-ratio EWMA
  blow its SLO, the circuit trips OPEN, transfers halt before the
  failure budget is touched, the block manager falls back to
  serialized-on-heap caching (recompute penalty when the budget is
  full), and emergency backpressure (shed + stall + full GC, charged to
  ``Bucket.ALLOC_STALL``) absorbs the pressure spike instead of dying.
  After the window, half-open probes re-close the circuit and caching
  returns to H2.

Every cell runs twice and its digest — fault schedule, circuit/health
timelines, final counters — must be byte-identical: the determinism
acceptance check, gated in CI via ``--smoke --check --check-determinism``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from ..clock import Bucket
from ..config import GovernorConfig, TeraHeapConfig, VMConfig
from ..devices.base import AccessPattern
from ..errors import OutOfMemoryError
from ..faults.plan import FaultConfig
from ..frameworks.spark.block_manager import BlockManager
from ..frameworks.spark.conf import CachePolicy, SparkConf
from ..frameworks.spark.rdd import MaterializedPartition
from ..runtime import JavaVM
from ..units import KiB, gb

#: workload shape (sizes are simulated bytes — the repo's scaled units)
HEAP = gb(2.5)
H2_SIZE = gb(64)
REGION_SIZE = 32 * KiB
PAGE_CACHE = 256 * KiB
NUM_RDDS = 6
CHUNKS = 10
CHUNK_SIZE = 16 * KiB
STEPS = 30
GC_EVERY = 3
TOUCHES = 2
WORKLOAD_SEED = 23
FAULT_SEED = 1861

#: brownout window: service fraction and start point (of clean runtime)
BROWNOUT_FRACTION = 0.5
WINDOW_START = 0.30
#: window durations swept, as fractions of the clean runtime
DURATIONS: Tuple[float, ...] = (0.15, 0.40)

#: The legacy failure budget sits between the governed run's denial
#: count (a handful, before the circuit trips) and the ungoverned run's
#: (every mover region of every window GC): with the governor the budget
#: is never reached; without it transfers degrade *permanently*, the
#: rooted cache pins itself in H1 and the old generation eventually
#: overflows.
FAILURE_BUDGET = 12


class _RDDHandle:
    """Duck-typed stand-in for :class:`~repro.frameworks.spark.rdd.RDD`.

    The block manager only needs ``rdd_id`` / ``cache_label`` / ``name``;
    building real RDDs would drag in a SparkContext this soak does not
    want.
    """

    def __init__(self, rdd_id: int):
        self.rdd_id = rdd_id
        self.name = f"rdd-{rdd_id}"
        self.cache_label = f"rdd-{rdd_id}"


def make_vm(
    governor: bool,
    windows: Tuple[Tuple[float, float, float], ...],
    probe_backoff: float = 5e-3,
) -> JavaVM:
    fault = FaultConfig(
        seed=WORKLOAD_SEED,
        fault_seed=FAULT_SEED,
        brownout_windows=windows,
        brownout_denies_alloc=True,
        failure_budget=FAILURE_BUDGET,
    )
    gov = None
    if governor:
        gov = GovernorConfig(
            probe_backoff=probe_backoff,
            probe_backoff_max=32 * probe_backoff,
        )
    return JavaVM(
        VMConfig(
            heap_size=HEAP,
            teraheap=TeraHeapConfig(
                enabled=True,
                h2_size=H2_SIZE,
                region_size=REGION_SIZE,
            ),
            page_cache_size=PAGE_CACHE,
            faults=fault,
            governor=gov,
        )
    )


class Workload:
    """Steady caching + re-reading: the chaos-soak's mutator.

    Each step materialises and caches one fresh partition (cycling over
    ``NUM_RDDS`` labels), touches ``TOUCHES`` previously cached
    partitions chunk by chunk with random access (H2-resident reads go
    through the page cache to the device — the health monitor's feed),
    and every ``GC_EVERY`` steps runs a major GC so tagged groups
    migrate to H2.
    """

    def __init__(self, vm: JavaVM, seed: int):
        self.vm = vm
        self.rdds = [_RDDHandle(i) for i in range(NUM_RDDS)]
        self.bm = BlockManager(
            vm,
            SparkConf(
                cache_policy=CachePolicy.TERAHEAP,
                storage_fraction=0.3,
            ),
        )
        self.rng = Random(seed)
        self.live: List[Tuple[_RDDHandle, int, MaterializedPartition]] = []
        self.completed_steps = 0

    def _compute(self, rdd: _RDDHandle, index: int):
        vm = self.vm

        def build(_: int) -> MaterializedPartition:
            with vm.roots.frame() as frame:
                chunks = [
                    frame.push(
                        vm.allocate(
                            CHUNK_SIZE, name=f"{rdd.name}-p{index}-c{j}"
                        )
                    )
                    for j in range(CHUNKS)
                ]
                root = vm.allocate(
                    256, refs=chunks, name=f"{rdd.name}-p{index}"
                )
            return MaterializedPartition(root=root, chunks=chunks)

        return build

    def run_step(self, step: int) -> None:
        vm = self.vm
        rdd = self.rdds[step % NUM_RDDS]
        index = step // NUM_RDDS
        part = self.bm.get_or_compute(rdd, index, self._compute(rdd, index))
        self.live.append((rdd, index, part))
        # Re-read older cached partitions: the steady analytical scans
        # that (a) make recomputes/deserializations measurable and (b)
        # stream device reads past the health monitor.
        for _ in range(min(TOUCHES, len(self.live) - 1)):
            pick = self.rng.randrange(len(self.live) - 1)
            old_rdd, old_index, _ = self.live[pick]
            cached = self.bm.get_or_compute(
                old_rdd, old_index, self._compute(old_rdd, old_index)
            )
            for chunk in cached.chunks:
                vm.read_object(chunk, AccessPattern.RANDOM)
        vm.compute(64)
        if (step + 1) % GC_EVERY == 0:
            vm.major_gc()
        self.completed_steps = step + 1


# ======================================================================
# One matrix cell
# ======================================================================
@dataclass
class CellResult:
    governor: bool
    duration_frac: float
    steps_target: int = STEPS
    oom: bool = False
    completed_steps: int = 0
    elapsed: float = 0.0
    stall_s: float = 0.0
    alloc_stall_s: float = 0.0
    alloc_stalls: int = 0
    emergency_gcs: int = 0
    sheds: int = 0
    recomputes: int = 0
    deserializations: int = 0
    governor_fallbacks: int = 0
    transfers_denied: int = 0
    h2_degraded: bool = False
    trips: int = 0
    probes: int = 0
    circuit_states: List[str] = field(default_factory=list)
    heap_report: str = ""
    digest: str = ""

    @property
    def label(self) -> str:
        return (
            f"gov={'on' if self.governor else 'off'}"
            f"/dur={self.duration_frac:g}"
        )

    def row(self) -> str:
        fate = "OOM" if self.oom else "ok"
        timeline = (
            "->".join(["closed"] + self.circuit_states)
            if self.circuit_states
            else "closed"
        )
        return (
            f"{self.label:16s} {fate:4s} "
            f"steps={self.completed_steps:2d}/{self.steps_target} "
            f"t={self.elapsed:7.3f}s stall={self.stall_s:8.5f}s "
            f"shed={self.sheds:2d} recomp={self.recomputes:2d} "
            f"deser={self.deserializations:2d} denied={self.transfers_denied:3d} "
            f"trips={self.trips} probes={self.probes} "
            f"circuit={timeline}"
        )


def _digest(vm: JavaVM, result: CellResult) -> str:
    parts = ["[fault-schedule]"]
    if vm.resilience is not None:
        parts.append(vm.resilience.plan.schedule_digest())
    parts.append("[health]")
    if vm.health is not None:
        parts.append(vm.health.digest())
    parts.append("[circuit]")
    if vm.governor is not None:
        parts.append(vm.governor.timeline_digest())
    parts.append("[counters]")
    parts.append(
        f"oom={result.oom} steps={result.completed_steps} "
        f"elapsed={result.elapsed:.6f} stall={result.stall_s:.6f} "
        f"alloc_stalls={result.alloc_stalls} sheds={result.sheds} "
        f"recomputes={result.recomputes} deser={result.deserializations} "
        f"fallbacks={result.governor_fallbacks} "
        f"denied={result.transfers_denied} trips={result.trips} "
        f"probes={result.probes}"
    )
    return "\n".join(parts)


def clean_runtime(steps: int = STEPS) -> float:
    """Simulated seconds of a brownout-free, governed run (calibration)."""
    vm = make_vm(governor=True, windows=())
    workload = Workload(vm, WORKLOAD_SEED)
    for step in range(steps):
        workload.run_step(step)
    return vm.elapsed()


def run_cell(
    governor: bool, duration_frac: float, t_clean: float, steps: int = STEPS
) -> CellResult:
    result = CellResult(
        governor=governor, duration_frac=duration_frac, steps_target=steps
    )
    windows = (
        (WINDOW_START * t_clean, duration_frac * t_clean, BROWNOUT_FRACTION),
    )
    vm = make_vm(
        governor, windows, probe_backoff=max(0.02 * t_clean, 1e-4)
    )
    workload = Workload(vm, WORKLOAD_SEED)
    try:
        for step in range(steps):
            workload.run_step(step)
    except OutOfMemoryError as oom:
        result.oom = True
        result.heap_report = oom.heap_report
    result.completed_steps = workload.completed_steps
    result.elapsed = vm.elapsed()
    summary = (
        vm.resilience.log.summary() if vm.resilience is not None else {}
    )
    result.alloc_stall_s = vm.clock.total(Bucket.ALLOC_STALL)
    result.stall_s = (
        summary.get("backoff_seconds", 0.0)
        + summary.get("stall_seconds", 0.0)
        + result.alloc_stall_s
    )
    result.alloc_stalls = vm.alloc_stalls
    result.emergency_gcs = vm.emergency_gcs
    result.sheds = workload.bm.sheds
    result.recomputes = workload.bm.recomputes
    result.deserializations = workload.bm.deserializations
    result.governor_fallbacks = workload.bm.governor_fallbacks
    result.transfers_denied = getattr(
        vm.collector, "h2_transfers_denied", 0
    )
    result.h2_degraded = (
        vm.resilience.degraded if vm.resilience is not None else False
    )
    if vm.governor is not None:
        result.trips = vm.governor.trips
        result.probes = vm.governor.probes
        result.circuit_states = [
            t.new.value for t in vm.governor.transitions
        ]
    result.digest = _digest(vm, result)
    return result


# ======================================================================
# The matrix
# ======================================================================
def run_matrix(
    durations: Sequence[float] = DURATIONS,
    steps: int = STEPS,
    check_determinism: bool = True,
) -> Tuple[List[CellResult], List[str], float]:
    """Sweep durations x governor on/off; returns (cells, failures, t_clean)."""
    t_clean = clean_runtime(steps)
    results: List[CellResult] = []
    failures: List[str] = []
    cells: Dict[Tuple[bool, float], CellResult] = {}
    for duration in durations:
        for governor in (True, False):
            cell = run_cell(governor, duration, t_clean, steps)
            results.append(cell)
            cells[(governor, duration)] = cell
            if check_determinism:
                rerun = run_cell(governor, duration, t_clean, steps)
                if rerun.digest != cell.digest:
                    failures.append(
                        f"{cell.label}: digest differs across reruns"
                    )
    # Acceptance shape: the governed run survives every window with
    # bounded stall time; the ungoverned control either dies or stalls
    # at least twice as long.
    for duration in durations:
        on = cells[(True, duration)]
        off = cells[(False, duration)]
        if on.oom:
            failures.append(f"{on.label}: governed run OOMed")
        if on.completed_steps < steps:
            failures.append(
                f"{on.label}: governed run finished only "
                f"{on.completed_steps}/{steps} steps"
            )
        if on.stall_s > 0.25 * on.elapsed:
            failures.append(
                f"{on.label}: stall time {on.stall_s:.4f}s is not bounded "
                f"(>25% of {on.elapsed:.4f}s)"
            )
        if not off.oom and off.stall_s < 2.0 * max(on.stall_s, 1e-9):
            failures.append(
                f"{off.label}: ungoverned control neither OOMed nor "
                f"stalled >=2x the governed run "
                f"({off.stall_s:.6f}s vs {on.stall_s:.6f}s)"
            )
        if on.trips < 1:
            failures.append(f"{on.label}: circuit never tripped")
    return results, failures, t_clean


def format_matrix(
    results: List[CellResult], failures: List[str], t_clean: float
) -> str:
    lines = [
        f"clean runtime: {t_clean:.3f}s simulated; window opens at "
        f"{WINDOW_START:.0%}, service fraction {BROWNOUT_FRACTION:g}",
        "",
    ]
    lines.extend(cell.row() for cell in results)
    if failures:
        lines.append("")
        lines.append(f"{len(failures)} failure(s):")
        lines.extend(f"  {msg}" for msg in failures)
    else:
        lines.append("")
        lines.append(
            "governed runs absorbed every brownout (zero OOM, bounded "
            "stalls); ungoverned controls died or stalled >=2x"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.brownout",
        description="brownout-duration x governor on/off chaos soak",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single window duration, fewer steps",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if the acceptance shape fails",
    )
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run every cell twice and require byte-identical digests",
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--durations",
        type=float,
        nargs="+",
        default=None,
        help="brownout durations as fractions of the clean runtime",
    )
    args = parser.parse_args(argv)

    durations: Sequence[float] = args.durations or (
        (0.25,) if args.smoke else DURATIONS
    )
    steps = args.steps or (26 if args.smoke else STEPS)
    results, failures, t_clean = run_matrix(
        durations=durations,
        steps=steps,
        check_determinism=args.check_determinism,
    )
    print(format_matrix(results, failures, t_clean))
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
