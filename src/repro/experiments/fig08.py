"""Figure 8: TeraHeap vs Parallel Scavenge (jdk11) vs G1 (jdk17).

The paper's findings to reproduce: G1 beats PS (7-72%) by cutting GC time
but cannot remove caching S/D; TeraHeap then beats G1 (21-48%); and G1
OOMs on SVM, BC and RL because long-lived humongous objects fragment its
region space.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..metrics.report import ExperimentResult, normalize
from .configs import SPARK_WORKLOADS_TABLE3
from .runner import run_spark_workload

SYSTEMS = ("spark-sd11", "spark-g1", "teraheap")

#: workloads whose large row batches fragment G1's humongous regions
G1_OOM_EXPECTED = {"SVM", "BC", "RL"}


def run(
    workloads: Optional[List[str]] = None, scale: float = 1.0
) -> Dict[str, List[ExperimentResult]]:
    results: Dict[str, List[ExperimentResult]] = {}
    for name in workloads or list(SPARK_WORKLOADS_TABLE3):
        cfg = SPARK_WORKLOADS_TABLE3[name]
        # The same DRAM for all three systems: the largest TeraHeap point,
        # which every collector except G1's fragmentation victims can run.
        dram = cfg.th_drams[-1]
        rows = [
            run_spark_workload(name, system, dram, cfg, scale=scale)
            for system in SYSTEMS
        ]
        results[name] = normalize(rows)
    return results


def format_results(results: Dict[str, List[ExperimentResult]]) -> str:
    lines = []
    for name, rows in results.items():
        baseline = next((r.total for r in rows if not r.oom), None)
        lines.append(f"== {name} ==")
        for r in rows:
            lines.append("  " + r.row(baseline))
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_results(run(scale=0.5)))
