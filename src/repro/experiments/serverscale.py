"""Serverscale matrix: co-located tenant VMs on one shared device.

The paper evaluates TeraHeap one JVM at a time; this experiment asks
the server question its motivation implies (Section 1): what happens
when N executor JVMs share one NVMe device and one DRAM budget?  A
:class:`~repro.server.box.ServerBox` boots N tenants — private heap
stores, per-tenant DRAM carves, one shared page-cache budget and one
bandwidth-arbitrated device — and runs heterogeneous cached-analytics
jobs under a deterministic min-clock scheduler.

Each cell of the (tenant count x mean dataset size) sweep runs three
boxes:

- a **uniform** box (equal datasets, arbiter on) measuring the
  aggregate-throughput and device-saturation curve as tenants are
  packed on;
- a **mixed** box (datasets spread ±60% around the mean, arbiter on)
  and its **control** twin (static 1/N bandwidth shares, static equal
  H2/DR2 budgets, fixed watermarks) measuring per-tenant fairness.

Acceptance: aggregate throughput grows from one tenant to two and ends
sublinear (the device saturates — busy fraction rises toward 1); the
work-conserving arbiter never loses aggregate throughput vs the static
control; and it *narrows* the max/min per-tenant progress-rate gap on
every mixed cell — heavy tenants borrow bandwidth the moment light
siblings finish instead of crawling at a frozen 1/N share.  Every cell
is byte-identical when run twice (``--check-determinism``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..server import ServerBox, ServerSpec
from ..server.box import BoxReport
from ..units import fmt_bytes, gb

#: tenant-count sweep (the x-axis of the saturation curve)
TENANT_COUNTS: Tuple[int, ...] = (1, 2, 4, 6)
#: mean per-tenant dataset sweep (paper-scale GB)
DATASET_SIZES_GB: Tuple[float, ...] = (0.5, 1.0)
#: dataset heterogeneity of the mixed/control boxes
SPREAD = 0.6


def make_spec(
    tenants: int, mean_gb: float, arbiter: bool, spread: float
) -> ServerSpec:
    return ServerSpec(
        tenants=tenants,
        mean_dataset_bytes=gb(mean_gb),
        arbiter=arbiter,
        spread=spread,
    )


@dataclass
class CellResult:
    """One (tenant count, mean dataset) cell: uniform + mixed + control."""

    tenants: int
    mean_gb: float
    uniform_throughput: float = 0.0
    uniform_busy: float = 0.0
    uniform_makespan: float = 0.0
    mixed_throughput: float = 0.0
    mixed_gap: float = 0.0
    mixed_p99: float = 0.0
    mixed_epochs: int = 0
    control_throughput: float = 0.0
    control_gap: float = 0.0
    control_p99: float = 0.0
    #: canonical per-tenant lines + epoch log digests, determinism-gated
    detail: List[str] = field(default_factory=list)

    def digest(self) -> str:
        head = [
            f"[cell] {self.tenants}x{self.mean_gb:g}GB",
            "uniform\t%.9f\t%.9f\t%.9f"
            % (
                self.uniform_throughput,
                self.uniform_busy,
                self.uniform_makespan,
            ),
            "mixed\t%.9f\t%.9f\t%.9f\t%d"
            % (
                self.mixed_throughput,
                self.mixed_gap,
                self.mixed_p99,
                self.mixed_epochs,
            ),
            "control\t%.9f\t%.9f\t%.9f"
            % (
                self.control_throughput,
                self.control_gap,
                self.control_p99,
            ),
        ]
        return "\n".join(head + self.detail)

    def row(self) -> str:
        return (
            f"{self.tenants:3d} {self.mean_gb:5.2f}GB "
            f"agg={self.uniform_throughput:11,.0f} B/s "
            f"busy={self.uniform_busy:5.3f} "
            f"gap: arbiter={self.mixed_gap:6.3f} "
            f"control={self.control_gap:6.3f} "
            f"p99: {self.mixed_p99 * 1e3:7.2f}ms/"
            f"{self.control_p99 * 1e3:7.2f}ms "
            f"epochs={self.mixed_epochs:3d}"
        )


def _describe(tag: str, report: BoxReport) -> List[str]:
    lines = []
    for t in report.tenants:
        lines.append(
            "%s\t%s\tdata=%d\tdone=%.9f\tgc=%.9f\tstalls=%d\t"
            "h2=%d\thit=%.6f\trd=%d\twr=%d"
            % (
                tag,
                t.name,
                t.dataset_bytes,
                t.finish_time,
                t.gc_seconds,
                t.alloc_stalls,
                t.h2_moved_bytes,
                t.cache_hit_ratio,
                t.device_read,
                t.device_written,
            )
        )
    lines.extend(f"{tag}\t{line}" for line in report.epoch_log)
    return lines


def _box_p99(report: BoxReport) -> float:
    return max((t.p99_pause for t in report.tenants), default=0.0)


def run_cell(tenants: int, mean_gb: float) -> CellResult:
    cell = CellResult(tenants=tenants, mean_gb=mean_gb)
    uniform = ServerBox(
        make_spec(tenants, mean_gb, arbiter=True, spread=0.0)
    ).run()
    cell.uniform_throughput = uniform.aggregate_throughput
    cell.uniform_busy = uniform.device_busy_fraction
    cell.uniform_makespan = uniform.makespan
    mixed = ServerBox(
        make_spec(tenants, mean_gb, arbiter=True, spread=SPREAD)
    ).run()
    cell.mixed_throughput = mixed.aggregate_throughput
    cell.mixed_gap = mixed.fairness_gap
    cell.mixed_p99 = _box_p99(mixed)
    cell.mixed_epochs = mixed.epochs
    control = ServerBox(
        make_spec(tenants, mean_gb, arbiter=False, spread=SPREAD)
    ).run()
    cell.control_throughput = control.aggregate_throughput
    cell.control_gap = control.fairness_gap
    cell.control_p99 = _box_p99(control)
    cell.detail.extend(_describe("uniform", uniform))
    cell.detail.extend(_describe("mixed", mixed))
    cell.detail.extend(_describe("control", control))
    return cell


def check_cells(cells: List[CellResult]) -> List[str]:
    """Acceptance assertions over one completed matrix."""
    failures: List[str] = []
    by_mean = {}
    for cell in cells:
        by_mean.setdefault(cell.mean_gb, []).append(cell)
        where = f"{cell.tenants}x{cell.mean_gb:g}GB"
        if cell.tenants > 1:
            if cell.mixed_gap >= cell.control_gap:
                failures.append(
                    f"{where}: arbiter gap {cell.mixed_gap:.3f} does not "
                    f"narrow the control's {cell.control_gap:.3f}"
                )
            if cell.mixed_throughput < 0.95 * cell.control_throughput:
                failures.append(
                    f"{where}: arbiter throughput "
                    f"{cell.mixed_throughput:,.0f} B/s loses >5% to the "
                    f"static control {cell.control_throughput:,.0f} B/s"
                )
    for mean_gb, column in by_mean.items():
        column = sorted(column, key=lambda c: c.tenants)
        first, last = column[0], column[-1]
        if len(column) < 2 or first.tenants == last.tenants:
            continue
        if column[1].uniform_throughput <= first.uniform_throughput:
            failures.append(
                f"{mean_gb:g}GB: aggregate throughput does not grow from "
                f"{first.tenants} to {column[1].tenants} tenants "
                f"({first.uniform_throughput:,.0f} -> "
                f"{column[1].uniform_throughput:,.0f} B/s)"
            )
        scaling = last.uniform_throughput / first.uniform_throughput
        if scaling >= last.tenants / first.tenants:
            failures.append(
                f"{mean_gb:g}GB: throughput scaled {scaling:.2f}x over "
                f"{last.tenants / first.tenants:.0f}x tenants — no "
                "saturation"
            )
        if last.uniform_busy <= first.uniform_busy:
            failures.append(
                f"{mean_gb:g}GB: device busy fraction fell from "
                f"{first.uniform_busy:.3f} ({first.tenants} tenants) to "
                f"{last.uniform_busy:.3f} ({last.tenants} tenants)"
            )
        peak = max(c.uniform_throughput for c in column)
        if last.uniform_throughput < 0.85 * peak:
            failures.append(
                f"{mean_gb:g}GB: throughput collapses past saturation "
                f"({last.uniform_throughput:,.0f} B/s at {last.tenants} "
                f"tenants vs peak {peak:,.0f} B/s)"
            )
    return failures


def run_matrix(
    counts: Sequence[int] = TENANT_COUNTS,
    sizes: Sequence[float] = DATASET_SIZES_GB,
    determinism: bool = True,
) -> Tuple[List[CellResult], List[str]]:
    cells: List[CellResult] = []
    failures: List[str] = []
    for mean_gb in sizes:
        for tenants in counts:
            cell = run_cell(tenants, mean_gb)
            cells.append(cell)
            if determinism:
                rerun = run_cell(tenants, mean_gb)
                if rerun.digest() != cell.digest():
                    failures.append(
                        f"{tenants}x{mean_gb:g}GB: cell digest differs "
                        "across reruns"
                    )
    failures.extend(check_cells(cells))
    return cells, failures


def format_matrix(cells: List[CellResult], failures: List[str]) -> str:
    spec = ServerSpec()
    lines = [
        f"serverscale: shared H2 {fmt_bytes(spec.h2_capacity)}, "
        f"DR2 budget {fmt_bytes(spec.dr2_budget)}, "
        f"epoch {spec.epoch_seconds:g}s, spread ±{SPREAD:.0%}",
        "  N  dataset   uniform aggregate    device   "
        "fairness gap (mixed)     worst p99 pause",
    ]
    lines.extend(cell.row() for cell in cells)
    if failures:
        lines.append("")
        lines.append(f"{len(failures)} failure(s):")
        lines.extend(f"  {msg}" for msg in failures)
    else:
        lines.append("")
        lines.append(
            "server shape reproduced: aggregate throughput grows then "
            "saturates as the shared device fills, and the work-conserving "
            "arbiter narrows the per-tenant progress gap on every mixed "
            "cell without losing aggregate throughput"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.serverscale",
        description=(
            "multi-tenant server box: tenant count x dataset size, "
            "arbitrated vs static sharing"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="two tenant counts and one dataset size",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any acceptance failure",
    )
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run every cell twice; digests must be byte-identical",
    )
    parser.add_argument(
        "--csv-out",
        default=None,
        help="write the largest mixed box's per-tenant CSV to this path",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write a chrome trace with per-tenant lanes to this path",
    )
    args = parser.parse_args(argv)

    counts: Sequence[int] = (
        (TENANT_COUNTS[0], TENANT_COUNTS[-2]) if args.smoke
        else TENANT_COUNTS
    )
    sizes: Sequence[float] = (
        (DATASET_SIZES_GB[0],) if args.smoke else DATASET_SIZES_GB
    )
    cells, failures = run_matrix(
        counts=counts, sizes=sizes, determinism=args.check_determinism
    )
    print(format_matrix(cells, failures))
    if args.csv_out or args.trace_out:
        _write_artifacts(args, counts[-1], sizes[-1])
    if args.check and failures:
        return 1
    return 0


def _write_artifacts(args, tenants: int, mean_gb: float) -> None:
    """Re-run the largest mixed box and export its artifacts."""
    from ..metrics.chrome_trace import server_chrome_trace_json
    from ..metrics.trace import server_tenants_csv, write_csv

    box = ServerBox(make_spec(tenants, mean_gb, arbiter=True, spread=SPREAD))
    report = box.run()
    if args.csv_out:
        write_csv(args.csv_out, server_tenants_csv(report))
        print(f"tenant rows -> {args.csv_out}")
    if args.trace_out:
        with open(args.trace_out, "w") as f:
            f.write(server_chrome_trace_json(box))
        print(f"chrome trace -> {args.trace_out}")


if __name__ == "__main__":
    sys.exit(main())
