"""Figure 12: TeraHeap on the NVM server (Optane-backed H2).

(a) Spark-SD (off-heap on NVM App Direct) vs TeraHeap: TH wins up to 79%
    (avg 56%) by eliminating caching S/D and most GC.
(b) Spark-MO (heap on NVM Memory mode) vs TeraHeap: TH wins up to 86%
    (avg 48%) — the hardware cache is placement-agnostic, so GC over the
    NVM-resident heap is slow (minor GC +36% vs Spark-SD, 5.3x/11.8x more
    NVM reads/writes than TH).
(c) Panthera vs TeraHeap at equal DRAM and NVM budgets: TH wins 7-69% —
    Panthera still scans/compacts its whole NVM old generation each major
    GC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics.report import ExperimentResult
from .configs import PANTHERA_WORKLOADS, SPARK_WORKLOADS_TABLE3, SparkWorkloadConfig
from .runner import run_spark_workload

#: KMeans runs only in panel (c); give it an LR-like configuration
_KM_CFG = SparkWorkloadConfig(
    "KM", 70, [43, 70], [43, 70], 1084, huge_pages=True
)


def _cfg(name: str) -> SparkWorkloadConfig:
    if name == "KM":
        return _KM_CFG
    return SPARK_WORKLOADS_TABLE3[name]


def run_panel(
    baseline: str,
    workloads: Optional[List[str]] = None,
    scale: float = 1.0,
) -> Dict[str, Tuple[ExperimentResult, ExperimentResult]]:
    """Run (baseline, teraheap) pairs on the NVM device."""
    if workloads is None:
        workloads = (
            PANTHERA_WORKLOADS
            if baseline == "panthera"
            else list(SPARK_WORKLOADS_TABLE3)
        )
    out = {}
    for name in workloads:
        cfg = _cfg(name)
        if baseline == "panthera":
            from .configs import PANTHERA_DRAM_GB, TERAHEAP_H1_VS_PANTHERA_GB

            # Panthera's heap is fixed at 64 GB (Section 7.5) regardless
            # of the dataset: cached data that does not fit is dropped and
            # recomputed (MEMORY_ONLY semantics), which is the churn that
            # makes Panthera's NVM old-gen scans so costly.
            dataset = min(cfg.dataset_gb, 55)
            base = run_spark_workload(
                name, "panthera", PANTHERA_DRAM_GB, cfg,
                device_kind="nvm", scale=scale, dataset_gb=dataset,
            )
            th = run_spark_workload(
                name,
                "teraheap",
                TERAHEAP_H1_VS_PANTHERA_GB + 16,
                cfg,
                device_kind="nvm",
                scale=scale,
                dataset_gb=dataset,
            )
        else:
            dram = cfg.sd_drams[-2] if len(cfg.sd_drams) > 1 else cfg.sd_drams[-1]
            base = run_spark_workload(
                name, baseline, dram, cfg, device_kind="nvm", scale=scale
            )
            th = run_spark_workload(
                name, "teraheap", dram, cfg, device_kind="nvm", scale=scale
            )
        out[name] = (base, th)
    return out


def run(scale: float = 1.0, workloads: Optional[List[str]] = None):
    return {
        "sd_vs_th": run_panel("spark-sd", workloads, scale),
        "mo_vs_th": run_panel("spark-mo", workloads, scale),
        "panthera_vs_th": run_panel("panthera", workloads, scale),
    }


def format_pairs(pairs) -> str:
    lines = []
    for name, (base, th) in pairs.items():
        if base.oom or th.oom:
            lines.append(f"{name}: OOM ({base.system if base.oom else th.system})")
            continue
        gain = 1 - th.total / base.total if base.total else 0.0
        lines.append(
            f"{name}: {base.system}={base.total:9.1f}s  th={th.total:9.1f}s"
            f"  improvement={gain:6.1%}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    for panel, pairs in run(scale=0.5, workloads=["PR", "LR"]).items():
        print(f"-- {panel} --")
        print(format_pairs(pairs))
