"""Figure 9: the transfer hint and the low-threshold mechanism (Giraph).

(a) TeraHeap with (H) vs without (NH) ``h2_move`` hints.  Without hints,
objects move to H2 only when the high threshold fires — often while still
mutable — so subsequent updates become device read-modify-writes and
"other" time inflates (paper: the hint wins by 29-55%).

(b) TeraHeap with (L) vs without (NL) the low threshold, on PR and SSSP
with the large 91 GB dataset.  Without the low threshold, a pressure-
triggered transfer moves *all* marked objects, including heavily-updated
ones; with it, only enough to reach 50% occupancy (paper: up to 44%).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..metrics.report import ExperimentResult
from .configs import GIRAPH_WORKLOADS_TABLE4
from .runner import run_giraph_workload


def run_hint_ablation(
    workloads: List[str] = None,
) -> Dict[str, Tuple[ExperimentResult, ExperimentResult]]:
    """Panel (a): (no-hint, hint) pairs per workload."""
    out = {}
    for name in workloads or list(GIRAPH_WORKLOADS_TABLE4):
        cfg = GIRAPH_WORKLOADS_TABLE4[name]
        dram = cfg.drams[-1]
        no_hint, _, _ = run_giraph_workload(
            name,
            "giraph-th",
            dram,
            cfg,
            teraheap_overrides={"use_move_hint": False},
        )
        no_hint.system = "th-nohint"
        with_hint, _, _ = run_giraph_workload(name, "giraph-th", dram, cfg)
        with_hint.system = "th-hint"
        out[name] = (no_hint, with_hint)
    return out


def run_low_threshold_ablation(
    workloads: List[str] = ("PR", "SSSP"),
    dataset_gb: int = 91,
) -> Dict[str, Tuple[ExperimentResult, ExperimentResult]]:
    """Panel (b): (no-low, low) pairs on the large dataset."""
    out = {}
    drams = {"PR": 170, "SSSP": 200}
    for name in workloads:
        cfg = GIRAPH_WORKLOADS_TABLE4[name]
        dram = drams.get(name, cfg.drams[-1] * 2)
        no_low, _, _ = run_giraph_workload(
            name,
            "giraph-th",
            dram,
            cfg,
            dataset_gb=dataset_gb,
            teraheap_overrides={"low_threshold": None},
        )
        no_low.system = "th-nolow"
        with_low, _, _ = run_giraph_workload(
            name,
            "giraph-th",
            dram,
            cfg,
            dataset_gb=dataset_gb,
            teraheap_overrides={"low_threshold": 0.50},
        )
        with_low.system = "th-low"
        out[name] = (no_low, with_low)
    return out


def format_pairs(pairs) -> str:
    lines = []
    for name, (a, b) in pairs.items():
        gain = 1 - b.total / a.total if a.total else 0.0
        lines.append(
            f"{name}: {a.system}={a.total:9.1f}s  {b.system}={b.total:9.1f}s"
            f"  improvement={gain:6.1%}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_pairs(run_hint_ablation()))
    print(format_pairs(run_low_threshold_ablation()))
