"""The paper's experiment configurations (Tables 1-4, Figure 6 sweeps).

DRAM figures are the paper's GB values (converted to simulated bytes by
the runner).  Spark reserves 16 GB of DRAM for the driver + kernel page
cache (DR2); Giraph's DR2 is per-workload (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: DRAM reserved for system use (driver + page cache) in Spark runs (§6)
SPARK_DR2_GB = 16


@dataclass
class SparkWorkloadConfig:
    """One Table 3 row plus its Figure 6 DRAM sweep."""

    name: str
    dataset_gb: int
    #: Figure 6 x-axis DRAM points for Spark-SD (smallest ones OOM)
    sd_drams: List[int]
    #: Figure 6 DRAM points for TeraHeap
    th_drams: List[int]
    #: Spark-MO heap (NVM Memory mode fits all cached data, Table 3)
    mo_heap_gb: int
    #: hand-tuned H1 fraction of (DRAM - DR2) for TeraHeap (§6 explores
    #: 50-90%)
    th_h1_fraction: float = 1.0
    #: whether the ML streaming pattern gets huge pages in H2 (§6)
    huge_pages: bool = False


#: Table 3 / Figure 6 configurations (NVMe server)
SPARK_WORKLOADS_TABLE3: Dict[str, SparkWorkloadConfig] = {
    "PR": SparkWorkloadConfig("PR", 80, [32, 48, 80, 144], [32, 80], 1024),
    "CC": SparkWorkloadConfig("CC", 84, [33, 50, 84, 152], [33, 84], 1024),
    "SSSP": SparkWorkloadConfig("SSSP", 58, [27, 37, 58, 100], [37, 58], 650),
    "SVD": SparkWorkloadConfig("SVD", 40, [22, 28, 40, 64], [28, 40], 500),
    "TR": SparkWorkloadConfig("TR", 80, [59, 70, 80], [59, 80], 64),
    "LR": SparkWorkloadConfig(
        "LR", 70, [29, 43, 70, 124], [43, 70], 1084, huge_pages=True
    ),
    "LgR": SparkWorkloadConfig(
        "LgR", 70, [29, 43, 70, 124], [43, 70], 1084, huge_pages=True
    ),
    "SVM": SparkWorkloadConfig(
        "SVM", 48, [28, 32, 36, 48], [36, 48], 620, huge_pages=True
    ),
    "BC": SparkWorkloadConfig("BC", 98, [53, 57, 98, 180], [57, 98], 82),
    "RL": SparkWorkloadConfig("RL", 63, [24, 37, 63], [37, 63], 96),
}


@dataclass
class GiraphWorkloadConfig:
    """One Table 4 row plus its Figure 6 DRAM points."""

    name: str
    dataset_gb: int
    drams: List[int]
    ooc_heap_gb: int
    ooc_dr2_gb: int
    th_h1_gb: int
    th_dr2_gb: int


#: Table 4 / Figure 6 configurations (NVMe server)
GIRAPH_WORKLOADS_TABLE4: Dict[str, GiraphWorkloadConfig] = {
    "PR": GiraphWorkloadConfig("PR", 85, [74, 85], 70, 15, 50, 35),
    "CDLP": GiraphWorkloadConfig("CDLP", 85, [74, 85], 70, 15, 60, 25),
    "WCC": GiraphWorkloadConfig("WCC", 85, [74, 85], 70, 15, 60, 25),
    "BFS": GiraphWorkloadConfig("BFS", 65, [57, 65], 48, 17, 35, 30),
    "SSSP": GiraphWorkloadConfig("SSSP", 90, [78, 90], 75, 15, 50, 40),
}

#: Figure 12(c): Panthera comparison configuration (§7.5) — 64 GB heap,
#: 16 GB DRAM component, young gen 1/6 on DRAM, old gen 6 GB DRAM + 48 GB
#: NVM; TeraHeap gets a 16 GB H1 and H2 on NVM.
PANTHERA_HEAP_GB = 64
PANTHERA_DRAM_GB = 16
PANTHERA_DRAM_OLD_GB = 6
PANTHERA_NVM_OLD_GB = 48
TERAHEAP_H1_VS_PANTHERA_GB = 16

#: Figure 12(c) workload list (KMeans appears here only)
PANTHERA_WORKLOADS = ["PR", "CC", "SSSP", "SVD", "LR", "LgR", "KM", "SVM", "BC"]

#: Figure 13(a): thread-scaling workloads and thread counts
SCALING_THREADS = [4, 8, 16]
SCALING_WORKLOADS: List[Tuple[str, str]] = [
    ("spark", "CC"),
    ("spark", "LR"),
    ("giraph", "CDLP"),
]

#: Figure 13(b): small vs large dataset GB per workload
DATASET_SCALING: Dict[str, Tuple[int, int]] = {
    "CC": (32, 73),
    "LR": (64, 256),
    "CDLP": (25, 91),
}
