"""Section 4's post-write-barrier overhead benchmark (DaCapo stand-in).

The paper measures the TeraHeap-extended barrier (an extra reference
range check in the interpreter/JIT templates) at <=3% of execution time
*on average across the DaCapo suite*, and exactly zero when
``EnableTeraHeap`` is off.  This driver runs the synthetic DaCapo profiles
in :mod:`repro.workloads.dacapo` with the flag on and off and reports
per-benchmark and average overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import TeraHeapConfig, VMConfig
from ..runtime import JavaVM
from ..units import gb
from ..workloads.dacapo import DACAPO_PROFILES


@dataclass
class BarrierOverhead:
    baseline_time: float
    teraheap_time: float
    baseline_barriers: int
    teraheap_barriers: int
    #: per-profile overhead fractions (suite view)
    per_benchmark: Dict[str, float] = field(default_factory=dict)

    @property
    def overhead(self) -> float:
        if self.baseline_time <= 0:
            return 0.0
        return self.teraheap_time / self.baseline_time - 1.0

    @property
    def mean_overhead(self) -> float:
        if not self.per_benchmark:
            return self.overhead
        return sum(self.per_benchmark.values()) / len(self.per_benchmark)

    @property
    def max_overhead(self) -> float:
        if not self.per_benchmark:
            return self.overhead
        return max(self.per_benchmark.values())


def _run_suite(enabled: bool, operations: int):
    """Run every profile on one VM configuration."""
    times = {}
    barriers = 0
    for name, profile in DACAPO_PROFILES.items():
        config = VMConfig(
            heap_size=gb(8),
            teraheap=TeraHeapConfig(enabled=enabled, h2_size=gb(64)),
        )
        vm = JavaVM(config)
        profile.run(vm, operations)
        times[name] = vm.elapsed()
        barriers += vm.barrier.barrier_count
    return times, barriers


def run(updates: Optional[int] = None, operations: int = 5000) -> BarrierOverhead:
    """Run the suite with the barrier extension off and on.

    ``updates`` is accepted as an alias of ``operations`` for backwards
    compatibility with earlier callers.
    """
    if updates is not None:
        operations = updates
    base_times, base_barriers = _run_suite(False, operations)
    th_times, th_barriers = _run_suite(True, operations)
    per_benchmark = {
        name: (th_times[name] / base_times[name] - 1.0)
        if base_times[name]
        else 0.0
        for name in base_times
    }
    return BarrierOverhead(
        baseline_time=sum(base_times.values()),
        teraheap_time=sum(th_times.values()),
        baseline_barriers=base_barriers,
        teraheap_barriers=th_barriers,
        per_benchmark=per_benchmark,
    )


def format_result(result: BarrierOverhead) -> str:
    lines = ["benchmark    overhead"]
    for name, overhead in result.per_benchmark.items():
        lines.append(f"{name:<12s} {overhead:7.2%}")
    lines.append(f"{'average':<12s} {result.mean_overhead:7.2%}")
    lines.append(f"{'max':<12s} {result.max_overhead:7.2%}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_result(run()))
