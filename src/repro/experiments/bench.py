"""Perf trajectory bench: pinned workload matrix with a checked-in baseline.

Three cells, chosen to exercise the layers the struct-of-arrays store
refactor touched:

- ``fig06``: one pinned Figure 6 cell (PR on TeraHeap at its large DRAM
  point, reduced iteration scale) — the full VM path: allocation,
  barriers, minor/major GC, H2 transfers.
- ``gcscale``: one steal-half sweep point on the task engine — the
  digest-gated order-preserving trace kernels.
- ``large_graph``: a synthetic pointer graph marked/swept ``ROUNDS``
  times twice — once with a faithful copy of the legacy per-object
  model (Python objects + handle-chasing loops), once with the store's
  vectorized batch kernels (CSR frontier BFS, ``mark_batch``, masked
  sweeps).  The ratio is the refactor's speedup and is gated at
  ``MIN_SPEEDUP``.

Every cell records best-of-``REPEATS`` wall-clock seconds and the
process peak RSS.  The result is written to ``BENCH_0007.json`` (schema
below, documented in EXPERIMENTS.md) and CI re-runs the matrix against
the checked-in file, failing on a >15% wall-clock regression (plus a
small absolute slack for sub-second cells) or a large-graph speedup
below the floor.

Schema (``BENCH_SCHEMA = 1``)::

    {
      "schema": 1,
      "cells": {"<name>": {"wall_s": float, "peak_rss_kib": int}, ...},
      "large_graph": {"nodes": int, "edges": int, "rounds": int,
                       "speedup": float, "live_bytes": int}
    }
"""

from __future__ import annotations

import argparse
import json
import random
import resource
import time
from typing import Dict, List, Optional

import numpy as np

from ..heap.store import SPACE_FREED, HeapStore

BENCH_SCHEMA = 1
BENCH_FILE = "BENCH_0007.json"

#: large-graph workload pin (the acceptance cell)
GRAPH_NODES = 500_000
GRAPH_DEGREE = 8
GRAPH_ROUNDS = 5
GRAPH_SEED = 1007
#: fraction of newest nodes seeding each round's closure
GRAPH_ROOT_FRACTION = 0.01
#: survivor age at which a round's accounting counts an object tenured
TENURE_AGE = 3

#: required legacy/store wall-clock ratio on the large-graph cell
MIN_SPEEDUP = 5.0
#: per-cell wall-clock regression tolerance for --check
REGRESSION_TOLERANCE = 0.15
#: absolute slack added to every ceiling so sub-second cells do not
#: flake on scheduler noise (15% of 15ms is not a signal)
ABS_SLACK_S = 0.1
#: timing repeats per cell; the recorded wall clock is the minimum,
#: which is far more stable than a single run
REPEATS = 3

#: pinned fig06 cell: workload, system, DRAM point, iteration scale
FIG06_CELL = ("PR", "teraheap", 80, 0.2)
#: pinned gcscale cell: gc_threads, churn batches, steal policy
GCSCALE_CELL = (8, 24, "steal-half")


def peak_rss_kib() -> int:
    """Process peak resident set, KiB (ru_maxrss unit on Linux)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


# ======================================================================
# Large synthetic graph: legacy per-object model vs store kernels
# ======================================================================
class _LegacyHeapObject:
    """The pre-refactor object model, kept verbatim for the comparison:
    one Python object per heap object, references as object lists."""

    __slots__ = (
        "oid", "size", "refs", "space", "age", "mark_epoch", "address"
    )

    def __init__(self, oid: int, size: int):
        self.oid = oid
        self.size = size
        self.refs: List["_LegacyHeapObject"] = []
        self.space = 0
        self.age = 0
        self.mark_epoch = 0
        self.address = -1


def _topology(nodes: int, degree: int, seed: int):
    """Deterministic graph shape shared by both models.

    Returns (sizes, targets): node ``i`` is ``sizes[i]`` bytes and
    references the earlier nodes in ``targets[i]``.
    """
    rng = random.Random(seed)
    sizes: List[int] = []
    targets: List[List[int]] = []
    for i in range(nodes):
        sizes.append(16 + 8 * rng.randrange(64))
        fanout = rng.randrange(degree + 1)
        targets.append(
            [rng.randrange(i) for _ in range(fanout)] if i else []
        )
    return sizes, targets


def _legacy_rounds(
    sizes: List[int],
    targets: List[List[int]],
    roots: List[int],
    rounds: int,
) -> Dict[str, float]:
    objects = [
        _LegacyHeapObject(i, size) for i, size in enumerate(sizes)
    ]
    for i, out in enumerate(targets):
        objects[i].refs = [objects[t] for t in out]
    root_objs = [objects[i] for i in roots]
    live_bytes = 0
    promoted_bytes = 0
    t0 = time.perf_counter()
    for r in range(rounds):
        epoch = r + 1
        # Mark: transitive closure from the roots.
        stack = list(root_objs)
        live: List[_LegacyHeapObject] = []
        while stack:
            obj = stack.pop()
            if obj.mark_epoch >= epoch:
                continue
            obj.mark_epoch = epoch
            live.append(obj)
            for ref in obj.refs:
                if ref.mark_epoch < epoch:
                    stack.append(ref)
        live_bytes = sum(o.size for o in live)
        for obj in live:
            obj.age += 1
        # Compaction planning: slide every survivor to a fresh address
        # and total the bytes old enough to tenure.
        cursor = 0
        promoted_bytes = 0
        for obj in live:
            obj.address = cursor
            cursor += obj.size
            if obj.age >= TENURE_AGE:
                promoted_bytes += obj.size
        # Sweep: everything unmarked this epoch is freed.
        for obj in objects:
            if obj.mark_epoch < epoch:
                obj.space = SPACE_FREED
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "live_bytes": live_bytes,
        "promoted_bytes": promoted_bytes,
    }


def _store_rounds(
    sizes: List[int],
    targets: List[List[int]],
    roots: List[int],
    rounds: int,
) -> Dict[str, float]:
    store = HeapStore()
    # oids are 1-based (row 0 is the sentinel).
    for i, size in enumerate(sizes):
        store.new_object(
            size,
            [t + 1 for t in targets[i]],
            name="",
            flags=0,
            scan_factor=1.0,
        )
    root_oids = np.asarray(roots, dtype=np.int64) + 1
    all_oids = np.arange(1, len(store), dtype=np.int64)
    # The edge table is static for this workload, so the CSR snapshot is
    # part of graph construction, not of the per-round GC work (the
    # legacy side likewise builds its object graph before the clock).
    store.edge_csr()
    live_bytes = 0
    promoted_bytes = 0
    t0 = time.perf_counter()
    for r in range(rounds):
        epoch = r + 1
        live = store.bfs_closure_csr(root_oids)
        store.mark_batch(live, epoch)
        live_bytes = store.sum_sizes(live)
        store.age_increment(live)
        # Compaction planning: exclusive prefix sum over survivor sizes
        # is the batch form of the legacy sliding-cursor loop.
        live_sizes = store.size_view()[live]
        store.address_view()[live] = np.cumsum(live_sizes) - live_sizes
        promoted_bytes = int(
            live_sizes[store.age_view()[live] >= TENURE_AGE].sum()
        )
        dead = all_oids[~store.live_mask(all_oids, epoch)]
        store.set_space_batch(dead, SPACE_FREED)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "live_bytes": int(live_bytes),
        "promoted_bytes": promoted_bytes,
    }


def run_large_graph(
    nodes: int = GRAPH_NODES,
    degree: int = GRAPH_DEGREE,
    rounds: int = GRAPH_ROUNDS,
    seed: int = GRAPH_SEED,
) -> Dict:
    sizes, targets = _topology(nodes, degree, seed)
    roots = list(
        range(nodes - max(1, int(nodes * GRAPH_ROOT_FRACTION)), nodes)
    )
    legacy = min(
        (_legacy_rounds(sizes, targets, roots, rounds)
         for _ in range(REPEATS)),
        key=lambda r: r["wall_s"],
    )
    store = min(
        (_store_rounds(sizes, targets, roots, rounds)
         for _ in range(REPEATS)),
        key=lambda r: r["wall_s"],
    )
    for key in ("live_bytes", "promoted_bytes"):
        if legacy[key] != store[key]:
            raise AssertionError(
                f"legacy and store kernels disagree on {key}: "
                f"{legacy[key]} vs {store[key]}"
            )
    return {
        "nodes": nodes,
        "edges": sum(len(t) for t in targets),
        "rounds": rounds,
        "legacy_wall_s": legacy["wall_s"],
        "store_wall_s": store["wall_s"],
        "live_bytes": store["live_bytes"],
        "speedup": legacy["wall_s"] / max(store["wall_s"], 1e-9),
    }


# ======================================================================
# Full-stack cells
# ======================================================================
def run_fig06_cell() -> Dict[str, float]:
    from .configs import SPARK_WORKLOADS_TABLE3
    from .runner import run_spark_workload

    workload, system, dram, scale = FIG06_CELL
    cfg = SPARK_WORKLOADS_TABLE3[workload]
    wall = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = run_spark_workload(
            workload, system, dram, cfg, scale=scale
        )
        wall = min(wall, time.perf_counter() - t0)
        if result.oom:
            raise AssertionError("pinned fig06 bench cell must not OOM")
    return {"wall_s": wall, "peak_rss_kib": peak_rss_kib()}


def run_gcscale_cell() -> Dict[str, float]:
    from . import gc_scaling as gs

    threads, batches, policy = GCSCALE_CELL
    wall = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        gs.run_scaling((threads,), batches, policy)
        wall = min(wall, time.perf_counter() - t0)
    return {"wall_s": wall, "peak_rss_kib": peak_rss_kib()}


def run_matrix(
    nodes: int = GRAPH_NODES, rounds: int = GRAPH_ROUNDS
) -> Dict:
    cells: Dict[str, Dict] = {}
    workload, system, dram, scale = FIG06_CELL
    cells[f"fig06.{workload}.{system}.d{dram}.s{scale}"] = (
        run_fig06_cell()
    )
    threads, batches, policy = GCSCALE_CELL
    cells[f"gcscale.{policy}.t{threads}.b{batches}"] = run_gcscale_cell()
    graph = run_large_graph(nodes=nodes, rounds=rounds)
    cells["large_graph.legacy"] = {
        "wall_s": graph["legacy_wall_s"],
        "peak_rss_kib": peak_rss_kib(),
    }
    cells["large_graph.store"] = {
        "wall_s": graph["store_wall_s"],
        "peak_rss_kib": peak_rss_kib(),
    }
    return {
        "schema": BENCH_SCHEMA,
        "cells": cells,
        "large_graph": {
            "nodes": graph["nodes"],
            "edges": graph["edges"],
            "rounds": graph["rounds"],
            "speedup": graph["speedup"],
            "live_bytes": graph["live_bytes"],
        },
    }


# ======================================================================
# Regression gate
# ======================================================================
def check_baseline(
    payload: Dict,
    baseline: Dict,
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Compare a fresh matrix against the checked-in baseline.

    The legacy large-graph cell is exempt from the wall-clock gate —
    it measures the *old* model and only feeds the speedup ratio.
    """
    failures: List[str] = []
    base_cells = baseline.get("cells", {})
    for name, cell in payload["cells"].items():
        if name == "large_graph.legacy":
            continue
        base = base_cells.get(name)
        if base is None:
            failures.append(f"{name}: no baseline cell (matrix changed?)")
            continue
        ceiling = base["wall_s"] * (1.0 + tolerance) + ABS_SLACK_S
        if cell["wall_s"] > ceiling:
            failures.append(
                f"{name}: wall-clock regressed: {cell['wall_s']:.3f}s vs "
                f"baseline {base['wall_s']:.3f}s "
                f"(+{tolerance:.0%} ceiling {ceiling:.3f}s)"
            )
    speedup = payload["large_graph"]["speedup"]
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"large_graph: store speedup {speedup:.1f}x is below the "
            f"{MIN_SPEEDUP:.0f}x floor"
        )
    return failures


def format_payload(payload: Dict) -> str:
    lines = ["cell                                   wall_s  peak_rss_kib"]
    for name, cell in payload["cells"].items():
        lines.append(
            f"{name:38s} {cell['wall_s']:7.3f}  "
            f"{cell.get('peak_rss_kib', 0):12d}"
        )
    g = payload["large_graph"]
    lines.append(
        f"large_graph: {g['nodes']} nodes / {g['edges']} edges x "
        f"{g['rounds']} rounds -> store speedup {g['speedup']:.1f}x "
        f"(floor {MIN_SPEEDUP:.0f}x)"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.bench",
        description="Pinned perf-trajectory bench matrix",
    )
    parser.add_argument(
        "--out",
        default=BENCH_FILE,
        help=f"write the result payload here (default {BENCH_FILE})",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="run and print only; do not write --out",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="compare against a checked-in BENCH_*.json; exit 1 on "
        ">15%% wall-clock regression or a speedup below the floor",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=GRAPH_NODES,
        help="large-graph node count",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=GRAPH_ROUNDS,
        help="large-graph mark/sweep rounds",
    )
    args = parser.parse_args(argv)

    payload = run_matrix(nodes=args.nodes, rounds=args.rounds)
    print(format_payload(payload))
    status = 0
    if args.check is not None:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_baseline(payload, baseline)
        if failures:
            for failure in failures:
                print(f"BENCH REGRESSION: {failure}")
            status = 1
        else:
            print("bench gate: all cells within tolerance")
    if not args.no_write and status == 0:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return status


if __name__ == "__main__":  # pragma: no cover - CLI entry
    import sys

    sys.exit(main())
