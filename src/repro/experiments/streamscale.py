"""Streamscale matrix: block streaming vs whole-RDD materialisation.

Whole-RDD evaluation materialises every lineage stage per task batch, so
the executor's live set scales with the *input*; the block-streaming
executor (:mod:`repro.frameworks.spark.streaming`) bounds it at
``max_inflight_blocks x target_block_bytes`` and spills in-flight blocks
to H2 under pressure instead of recomputing them.  That trade has a
crossover, and this experiment measures it by running the same cached
three-stage pipeline both ways over a sweep of input sizes and in-flight
budgets against one fixed heap:

- **small inputs**: everything fits; streaming's per-block dispatch tax
  is pure overhead and the whole-RDD run wins;
- **large inputs**: the whole-RDD live set (3x the input, pinned per
  task batch) drowns the collector in near-full-heap GCs, while the
  streaming run stays flat and wins despite its spill traffic.

Acceptance, per cell: both executions produce the identical action
value; the streaming run's peak in-flight bytes never exceed its budget
(and no admission was forced past it); the largest input of each budget
column streams *faster* than whole-RDD while the smallest streams
*slower* (the measurable overhead); and every cell — walls included — is
byte-identical when run twice (``--check-determinism``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..clock import Bucket
from ..config import TeraHeapConfig, VMConfig
from ..frameworks.spark import (
    CachePolicy,
    SparkConf,
    SparkContext,
    StreamResult,
)
from ..runtime import JavaVM
from ..units import KiB, fmt_bytes, gb

#: partitions per RDD; with 8 mutator threads one batch covers them all,
#: which is exactly the whole-RDD pinning the streaming executor removes
NUM_PARTITIONS = 4
HEAP_BYTES = gb(4)
REGION_SIZE = 64 * KiB
PROMOTION_BUFFER = 32 * KiB
#: streamed block target: small enough that every sweep partition splits
#: into multiple blocks, so budgets and spills are actually exercised
TARGET_BLOCK_BYTES = 32 * KiB

#: input sweep (paper-scale GB) against the fixed heap: the smallest
#: cell fits trivially, the largest pins ~3x its bytes per task batch
INPUT_SIZES_GB: Tuple[float, ...] = (0.125, 0.5, 1.25)
#: in-flight budget sweep, in blocks
INFLIGHT_BLOCKS: Tuple[int, ...] = (2, 8)


def make_vm() -> JavaVM:
    return JavaVM(
        VMConfig(
            heap_size=HEAP_BYTES,
            teraheap=TeraHeapConfig(
                enabled=True,
                h2_size=gb(32),
                region_size=REGION_SIZE,
                promotion_buffer_size=PROMOTION_BUFFER,
            ),
            page_cache_size=gb(4),
        )
    )


def make_ctx(max_inflight_blocks: int) -> SparkContext:
    return SparkContext(
        make_vm(),
        SparkConf(
            cache_policy=CachePolicy.TERAHEAP,
            num_partitions=NUM_PARTITIONS,
            max_inflight_blocks=max_inflight_blocks,
            target_block_bytes=TARGET_BLOCK_BYTES,
        ),
    )


def build_pipeline(ctx: SparkContext, input_gb: float):
    """The cached pipeline: src -> mid -> top (persisted)."""
    src = ctx.range_rdd(gb(input_gb), compute_ops_per_chunk=64, name="src")
    mid = src.map(ops_per_chunk=64, name="mid")
    top = mid.map(ops_per_chunk=64, name="top")
    top.persist()
    return top


@dataclass
class CellResult:
    """One (input size, in-flight budget) cell, both executions."""

    input_gb: float
    inflight_blocks: int
    budget_bytes: int = 0
    baseline_value: int = 0
    baseline_wall: float = 0.0
    baseline_gc: float = 0.0
    streaming_value: int = 0
    streaming_wall: float = 0.0
    streaming_gc: float = 0.0
    blocks: int = 0
    peak_inflight: int = 0
    stalls: int = 0
    stall_seconds: float = 0.0
    spills: int = 0
    spill_bytes: int = 0
    unspills: int = 0
    forced: int = 0
    hidden_seconds: float = 0.0

    def digest(self) -> str:
        """Canonical cell outcome, for the determinism acceptance gate."""
        return "\n".join(
            [
                f"[cell] {self.input_gb:g}GB/{self.inflight_blocks}blk",
                f"budget\t{self.budget_bytes}",
                f"baseline\t{self.baseline_value}\t"
                f"{self.baseline_wall:.9f}\t{self.baseline_gc:.9f}",
                f"streaming\t{self.streaming_value}\t"
                f"{self.streaming_wall:.9f}\t{self.streaming_gc:.9f}",
                f"blocks\t{self.blocks}\tpeak={self.peak_inflight}",
                f"backpressure\tstalls={self.stalls} "
                f"stall_s={self.stall_seconds:.9f} forced={self.forced}",
                f"spills\t{self.spills}\tbytes={self.spill_bytes}\t"
                f"unspills={self.unspills}",
                f"hidden\t{self.hidden_seconds:.9f}",
            ]
        )

    def row(self) -> str:
        ratio = (
            self.baseline_wall / self.streaming_wall
            if self.streaming_wall > 0
            else 0.0
        )
        return (
            f"{self.input_gb:6.3f} {self.inflight_blocks:3d} "
            f"{fmt_bytes(self.budget_bytes):>9s} "
            f"rdd={self.baseline_wall:8.4f}s (gc {self.baseline_gc:7.4f}s) "
            f"stream={self.streaming_wall:8.4f}s "
            f"(gc {self.streaming_gc:7.4f}s) "
            f"x{ratio:5.2f} "
            f"blk={self.blocks:4d} peak={fmt_bytes(self.peak_inflight):>9s} "
            f"stall={self.stalls:3d} spill={self.spills:3d} "
            f"unspill={self.unspills:3d}"
        )


def gc_seconds(vm: JavaVM) -> float:
    clock = vm.clock
    return (
        clock.total(Bucket.MINOR_GC)
        + clock.total(Bucket.MAJOR_GC)
        + clock.total(Bucket.ALLOC_STALL)
    )


def run_cell(input_gb: float, inflight_blocks: int) -> CellResult:
    cell = CellResult(input_gb=input_gb, inflight_blocks=inflight_blocks)
    # Whole-RDD baseline: its own VM, so the streaming run sees an
    # identical cold executor.
    ctx = make_ctx(inflight_blocks)
    top = build_pipeline(ctx, input_gb)
    cell.baseline_value = top.evaluate()
    cell.baseline_wall = ctx.vm.clock.now
    cell.baseline_gc = gc_seconds(ctx.vm)
    # Streaming run.
    ctx = make_ctx(inflight_blocks)
    top = build_pipeline(ctx, input_gb)
    cell.budget_bytes = ctx.conf.inflight_budget_bytes
    result = run_streaming(ctx, top)
    cell.streaming_value = result.total_bytes
    cell.streaming_wall = ctx.vm.clock.now
    cell.streaming_gc = gc_seconds(ctx.vm)
    cell.blocks = result.blocks
    cell.peak_inflight = result.peak_inflight_bytes
    cell.stalls = result.backpressure_stalls
    cell.stall_seconds = result.stall_seconds
    cell.spills = result.spills
    cell.spill_bytes = result.spill_bytes
    cell.unspills = result.unspills
    cell.forced = result.forced_admissions
    cell.hidden_seconds = result.hidden_seconds
    return cell


def run_streaming(ctx: SparkContext, top) -> StreamResult:
    from ..frameworks.spark.streaming import StreamingExecutor

    return StreamingExecutor(ctx).run(top)


def check_cells(cells: List[CellResult]) -> List[str]:
    """Acceptance assertions over one completed matrix."""
    failures: List[str] = []
    by_budget = {}
    for cell in cells:
        by_budget.setdefault(cell.inflight_blocks, []).append(cell)
        where = f"{cell.input_gb:g}GB/{cell.inflight_blocks}blk"
        if cell.streaming_value != cell.baseline_value:
            failures.append(
                f"{where}: streaming value {cell.streaming_value} != "
                f"whole-RDD {cell.baseline_value}"
            )
        if cell.forced:
            failures.append(
                f"{where}: {cell.forced} forced admissions past the budget"
            )
        if cell.peak_inflight > cell.budget_bytes:
            failures.append(
                f"{where}: peak in-flight {cell.peak_inflight} B exceeds "
                f"budget {cell.budget_bytes} B"
            )
    for blocks, column in by_budget.items():
        column = sorted(column, key=lambda c: c.input_gb)
        smallest, largest = column[0], column[-1]
        if smallest.streaming_wall <= smallest.baseline_wall:
            failures.append(
                f"{smallest.input_gb:g}GB/{blocks}blk: streaming "
                f"({smallest.streaming_wall:.4f}s) shows no overhead over "
                f"whole-RDD ({smallest.baseline_wall:.4f}s) at the "
                "smallest input"
            )
        if largest.streaming_wall >= largest.baseline_wall:
            failures.append(
                f"{largest.input_gb:g}GB/{blocks}blk: streaming "
                f"({largest.streaming_wall:.4f}s) does not beat whole-RDD "
                f"({largest.baseline_wall:.4f}s) at the largest input"
            )
    return failures


def run_matrix(
    sizes: Sequence[float] = INPUT_SIZES_GB,
    budgets: Sequence[int] = INFLIGHT_BLOCKS,
    determinism: bool = True,
) -> Tuple[List[CellResult], List[str]]:
    cells: List[CellResult] = []
    failures: List[str] = []
    for blocks in budgets:
        for input_gb in sizes:
            cell = run_cell(input_gb, blocks)
            cells.append(cell)
            if determinism:
                rerun = run_cell(input_gb, blocks)
                if rerun.digest() != cell.digest():
                    failures.append(
                        f"{input_gb:g}GB/{blocks}blk: cell digest differs "
                        "across reruns"
                    )
    failures.extend(check_cells(cells))
    return cells, failures


def format_matrix(cells: List[CellResult], failures: List[str]) -> str:
    lines = [
        f"streamscale: heap {fmt_bytes(HEAP_BYTES)}, "
        f"{NUM_PARTITIONS} partitions, "
        f"block target {fmt_bytes(TARGET_BLOCK_BYTES)}",
        "input  blk    budget  whole-RDD wall (gc)        "
        "streaming wall (gc)      speedup  streaming counters",
    ]
    lines.extend(cell.row() for cell in cells)
    if failures:
        lines.append("")
        lines.append(f"{len(failures)} failure(s):")
        lines.extend(f"  {msg}" for msg in failures)
    else:
        lines.append("")
        lines.append(
            "crossover reproduced: streaming holds its in-flight budget, "
            "pays a measurable dispatch tax on the smallest input and "
            "beats whole-RDD materialisation on the largest"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.streamscale",
        description=(
            "block-streaming vs whole-RDD crossover: input size x "
            "in-flight budget"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="two sizes (smallest/largest) and one budget",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any acceptance failure",
    )
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run every cell twice; digests must be byte-identical",
    )
    parser.add_argument(
        "--csv-out",
        default=None,
        help="write the last streaming run's per-block CSV to this path",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write a chrome trace with the in-flight counter track",
    )
    args = parser.parse_args(argv)

    sizes: Sequence[float] = (
        (INPUT_SIZES_GB[0], INPUT_SIZES_GB[-1]) if args.smoke
        else INPUT_SIZES_GB
    )
    budgets: Sequence[int] = (
        (INFLIGHT_BLOCKS[-1],) if args.smoke else INFLIGHT_BLOCKS
    )
    cells, failures = run_matrix(
        sizes=sizes, budgets=budgets, determinism=args.check_determinism
    )
    print(format_matrix(cells, failures))
    if args.csv_out or args.trace_out:
        _write_artifacts(args, sizes[-1], budgets[-1])
    if args.check and failures:
        return 1
    return 0


def _write_artifacts(args, input_gb: float, inflight_blocks: int) -> None:
    """Re-run the largest cell's streaming pass and export its artifacts."""
    from ..metrics.chrome_trace import chrome_trace_json, vm_engine
    from ..metrics.trace import streaming_blocks_csv, write_csv

    ctx = make_ctx(inflight_blocks)
    top = build_pipeline(ctx, input_gb)
    result = run_streaming(ctx, top)
    if args.csv_out:
        write_csv(args.csv_out, streaming_blocks_csv(result))
        print(f"streaming blocks -> {args.csv_out}")
    if args.trace_out:
        with open(args.trace_out, "w") as f:
            f.write(
                chrome_trace_json(
                    vm_engine(ctx.vm), label="streamscale", streaming=result
                )
            )
        print(f"chrome trace -> {args.trace_out}")


if __name__ == "__main__":
    sys.exit(main())
