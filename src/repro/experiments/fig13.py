"""Figure 13: performance scaling with mutator threads and dataset size.

(a) CC/LR (Spark) and CDLP (Giraph) at 4/8/16 executor threads,
    normalised to 8 threads per system.  TeraHeap keeps scaling to 16
    threads (up to 23%) because H1 stays unpressured; the baselines stall
    (Spark-SD LR's GC grows ~44% at 16 threads) and Giraph-OOC OOMs at 4
    threads in the paper.
(b) Small vs large datasets: TeraHeap's advantage holds or grows (up to
    70%) as the dataset grows.
"""

from __future__ import annotations

from typing import Dict, List

from ..metrics.report import ExperimentResult
from .configs import (
    DATASET_SCALING,
    GIRAPH_WORKLOADS_TABLE4,
    SCALING_THREADS,
    SPARK_WORKLOADS_TABLE3,
)
from .runner import run_giraph_workload, run_spark_workload


def _run_cell(
    framework: str, workload: str, system: str, threads: int,
    dataset_gb=None, scale: float = 1.0,
) -> ExperimentResult:
    if framework == "spark":
        cfg = SPARK_WORKLOADS_TABLE3[workload]
        if dataset_gb is None:
            dram = cfg.sd_drams[-2]
        else:
            # Dataset scaling keeps the paper's DRAM : dataset pressure
            # ratio — DRAM grows with the data.
            dram = int(dataset_gb * 0.85) + 16
        return run_spark_workload(
            workload, system, dram, cfg,
            threads=threads, dataset_gb=dataset_gb, scale=scale,
        )
    cfg = GIRAPH_WORKLOADS_TABLE4[workload]
    if dataset_gb is None:
        dram = cfg.drams[-1]
    else:
        dram = int(dataset_gb * cfg.drams[-1] / cfg.dataset_gb)
    res, _, _ = run_giraph_workload(
        workload, system, dram, cfg,
        threads=threads, dataset_gb=dataset_gb,
    )
    return res


def run_thread_scaling(
    scale: float = 1.0,
    threads: List[int] = None,
) -> Dict[str, Dict[str, Dict[int, ExperimentResult]]]:
    """Panel (a): results[workload][system][threads]."""
    cells = [
        ("spark", "CC", "spark-sd"),
        ("spark", "CC", "teraheap"),
        ("spark", "LR", "spark-sd"),
        ("spark", "LR", "teraheap"),
        ("giraph", "CDLP", "giraph-ooc"),
        ("giraph", "CDLP", "giraph-th"),
    ]
    out: Dict[str, Dict[str, Dict[int, ExperimentResult]]] = {}
    for framework, workload, system in cells:
        per_threads = {}
        for t in threads or SCALING_THREADS:
            per_threads[t] = _run_cell(
                framework, workload, system, t, scale=scale
            )
        out.setdefault(workload, {})[system] = per_threads
    return out


def run_dataset_scaling(
    scale: float = 1.0,
) -> Dict[str, Dict[str, Dict[int, ExperimentResult]]]:
    """Panel (b): results[workload][system][dataset_gb]."""
    cells = [
        ("spark", "CC", ("spark-sd", "teraheap")),
        ("spark", "LR", ("spark-sd", "teraheap")),
        ("giraph", "CDLP", ("giraph-ooc", "giraph-th")),
    ]
    out: Dict[str, Dict[str, Dict[int, ExperimentResult]]] = {}
    for framework, workload, systems in cells:
        small, large = DATASET_SCALING[workload]
        for system in systems:
            per_ds = {}
            for ds in (small, large):
                per_ds[ds] = _run_cell(
                    framework, workload, system, 8, dataset_gb=ds,
                    scale=scale,
                )
            out.setdefault(workload, {})[system] = per_ds
    return out


def format_thread_scaling(results) -> str:
    lines = []
    for workload, per_system in results.items():
        for system, per_threads in per_system.items():
            base = per_threads.get(8)
            base_total = base.total if base and not base.oom else None
            cells = []
            for t, r in sorted(per_threads.items()):
                if r.oom:
                    cells.append(f"{t}t=OOM")
                elif base_total:
                    cells.append(f"{t}t={r.total / base_total:5.2f}")
            lines.append(f"{workload} {system}: " + "  ".join(cells))
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_thread_scaling(run_thread_scaling(scale=0.5)))
