"""Table 5: H2 metadata size in DRAM per TB of H2 space.

Purely analytic: metadata is the per-region Figure 2 structures times the
region count, so doubling the region size halves it.  Paper values:
417 MB at 1 MB regions down to 2 MB at 256 MB regions.
"""

from __future__ import annotations

from typing import Dict, List

from ..teraheap.regions import metadata_bytes_per_tb
from ..units import MiB

#: the paper's Table 5 region sizes (real MB) and metadata MB values
PAPER_TABLE5 = {1: 417, 2: 209, 4: 104, 8: 52, 16: 26, 32: 13, 64: 7, 128: 3, 256: 2}


def run(region_sizes_mb: List[int] = None) -> Dict[int, float]:
    """Metadata MB per TB of H2 for each region size."""
    sizes = region_sizes_mb or list(PAPER_TABLE5)
    return {
        size: metadata_bytes_per_tb(size * MiB) / MiB for size in sizes
    }


def format_results(results: Dict[int, float]) -> str:
    lines = ["Region (MB)  Metadata (MB/TB)  Paper (MB/TB)"]
    for size, meta in results.items():
        paper = PAPER_TABLE5.get(size, float("nan"))
        lines.append(f"{size:>10d}  {meta:>16.1f}  {paper:>13.1f}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_results(run()))
