"""Figure 7: GC timeline and old-generation occupancy for Spark PageRank.

The paper contrasts Spark-SD (many cheap major GCs, each reclaiming ~10%
of a perpetually-full old generation) with TeraHeap (an order of magnitude
fewer majors, each dominated by H2 compaction I/O, and minor-GC time
reduced because fewer old-to-young cards need scanning).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..gc.base import GCCycle
from .configs import SPARK_WORKLOADS_TABLE3


@dataclass
class GCTimeline:
    """One system's Figure 7 panel."""

    system: str
    cycles: List[GCCycle] = field(default_factory=list)
    total: float = 0.0

    @property
    def major_cycles(self) -> List[GCCycle]:
        return [c for c in self.cycles if c.kind == "major"]

    @property
    def minor_cycles(self) -> List[GCCycle]:
        return [c for c in self.cycles if c.kind == "minor"]

    @property
    def mean_major(self) -> float:
        majors = self.major_cycles
        return sum(c.duration for c in majors) / len(majors) if majors else 0.0

    @property
    def total_minor(self) -> float:
        return sum(c.duration for c in self.minor_cycles)

    def occupancy_series(self):
        """(time, old-gen occupancy) samples across the run."""
        return [
            (c.start_time + c.duration, c.old_occupancy_after)
            for c in self.cycles
        ]


def run(scale: float = 1.0, dram_gb: int = 80) -> List[GCTimeline]:
    """Run Spark PR under both systems and capture the GC record."""
    cfg = SPARK_WORKLOADS_TABLE3["PR"]
    timelines = []
    for system in ("spark-sd", "teraheap"):
        # Collect cycles via a fresh run; the runner returns only the
        # summary, so re-run with direct VM access.
        from .runner import build_spark_vm
        from ..frameworks.spark.workloads import SPARK_WORKLOADS
        from ..units import gb

        vm, ctx = build_spark_vm(system, dram_gb, cfg)
        SPARK_WORKLOADS["PR"](ctx, gb(cfg.dataset_gb), scale=scale)
        timelines.append(
            GCTimeline(
                system=system,
                cycles=list(vm.collector.stats.cycles),
                total=vm.elapsed(),
            )
        )
    return timelines


def format_results(timelines: List[GCTimeline]) -> str:
    lines = []
    for t in timelines:
        lines.append(
            f"{t.system}: majors={len(t.major_cycles)} "
            f"avg_major={t.mean_major:.2f}s "
            f"minors={len(t.minor_cycles)} total_minor={t.total_minor:.1f}s"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_results(run(scale=0.5)))
