"""Figure 6: performance under fixed DRAM size (NVMe server).

For every Spark workload, Spark-SD runs at each Figure 6 DRAM point and
TeraHeap at its two points; for every Giraph workload, Giraph-OOC and
TeraHeap run at the Table 4 DRAM points.  Results are normalised to the
first non-OOM bar, and OOM bars are reported as missing — reproducing
both the speedups (up to 73% / 28%) and the DRAM-reduction story (up to
4.6x / 1.2x less DRAM at equal-or-better performance).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..metrics.report import ExperimentResult, normalize
from .configs import GIRAPH_WORKLOADS_TABLE4, SPARK_WORKLOADS_TABLE3
from .runner import run_giraph_workload, run_spark_workload


def run_spark(
    workloads: Optional[List[str]] = None,
    scale: float = 1.0,
    drams_per_workload: Optional[int] = None,
) -> Dict[str, List[ExperimentResult]]:
    """Spark half of Figure 6."""
    results: Dict[str, List[ExperimentResult]] = {}
    for name in workloads or list(SPARK_WORKLOADS_TABLE3):
        cfg = SPARK_WORKLOADS_TABLE3[name]
        rows: List[ExperimentResult] = []
        sd_points = cfg.sd_drams
        th_points = cfg.th_drams
        if drams_per_workload:
            sd_points = sd_points[-drams_per_workload:]
            th_points = th_points[-drams_per_workload:]
        for dram in sd_points:
            rows.append(
                run_spark_workload(name, "spark-sd", dram, cfg, scale=scale)
            )
        for dram in th_points:
            rows.append(
                run_spark_workload(name, "teraheap", dram, cfg, scale=scale)
            )
        results[name] = normalize(rows)
    return results


def run_giraph(
    workloads: Optional[List[str]] = None, scale: float = 1.0
) -> Dict[str, List[ExperimentResult]]:
    """Giraph half of Figure 6."""
    results: Dict[str, List[ExperimentResult]] = {}
    for name in workloads or list(GIRAPH_WORKLOADS_TABLE4):
        cfg = GIRAPH_WORKLOADS_TABLE4[name]
        rows: List[ExperimentResult] = []
        for dram in cfg.drams:
            res, _, _ = run_giraph_workload(name, "giraph-ooc", dram, cfg)
            rows.append(res)
        for dram in cfg.drams:
            res, _, _ = run_giraph_workload(name, "giraph-th", dram, cfg)
            rows.append(res)
        results[name] = normalize(rows)
    return results


def format_results(results: Dict[str, List[ExperimentResult]]) -> str:
    lines = []
    for name, rows in results.items():
        lines.append(f"== {name} ==")
        baseline = next(
            (r.total for r in rows if not r.oom and r.total), None
        )
        for r in rows:
            lines.append("  " + r.row(baseline))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    spark = run_spark(scale=0.5)
    giraph = run_giraph()
    print(format_results(spark))
    print(format_results(giraph))


if __name__ == "__main__":  # pragma: no cover
    main()
