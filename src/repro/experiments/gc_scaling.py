"""GC-thread scaling: pause time and parallel efficiency, 1 to 16 threads.

Sweeps ``gc_threads`` over a deterministic allocation-churn workload and
reports, per point: GC pause totals, the emergent speedup over the
single-threaded engine schedule, parallel efficiency, and the engine's
scheduling counters (tasks, steals, per-worker idle time, imbalance).
With the task-based engine the speedup is an *output* — it comes from
critical paths over simulated worker lanes, not from a scalar divisor —
so this sweep is the direct check that parallel GC behaves: speedup must
grow with threads but stay sub-linear (termination protocol, steal
overhead, and chunky tasks all tax wide pools).

Four companion series exercise the adaptive scheduler:

- **steal policies** — the sweep runs under both ``steal-one`` and
  ``steal-half``; schedules diverge (different steal counts) while the
  total task cost stays identical, since policies only move work around.
- **TeraHeap scan cap** — a TeraHeap churn run whose H2 card-table has
  few stripes, so stripe ownership bounds H2 scan parallelism: the scan
  speedup plateaus at ``scan_parallelism`` while plain PS keeps scaling.
- **adaptive batching** — static vs feedback-controlled batch sizes at
  wide worker counts; the controller shrinks batches when imbalance
  spikes and the reported cycle imbalance drops.
- **G1 concurrent marking** — a mutator-intensity sweep on the G1
  collector: marking races ``Bucket.OTHER`` progress on the concurrent
  lane set, so the hidden share of marking rises with mutator work
  between cycles, while a back-to-back major-GC stress run (no mutator
  progress between cycles) hides essentially nothing.

The workload contains no randomness (the only RNG in the stack is the
engine's seeded victim selection), so a point's report is byte-identical
across runs; ``--check-baseline`` exploits that to fail CI when the
1-thread pause regresses more than 10% against the checked-in baseline,
and ``--check-determinism`` re-runs the steal-half and adaptive series
and fails on any digest mismatch.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..clock import Bucket
from ..config import GCEngineConfig, TeraHeapConfig, VMConfig
from ..runtime import JavaVM
from ..units import KiB, gb

#: gc_threads values of the sweep (the paper's testbed has 16 h/w threads)
SWEEP_THREADS = (1, 2, 4, 8, 16)

#: steal policies compared head-to-head
STEAL_POLICIES = ("steal-one", "steal-half")

#: churn-workload shape (objects are 8 KiB simulated chunks)
OBJECT_SIZE = 8 * KiB
OBJECTS_PER_BATCH = 64
#: every Nth batch contributes survivors to the resident store
RETAIN_EVERY = 3
#: every Nth object of a retained batch survives (with its sub-chain)
RETAIN_STRIDE = 7
#: resident-store size cap; eviction keeps old-gen churn (and major GCs)
RESIDENT_CAP = 60

#: allowed relative regression of the 1-thread pause vs the baseline
BASELINE_TOLERANCE = 0.10

#: TeraHeap scan-cap series: H2 sized to this many stripes (= regions),
#: so scan_parallelism caps H2 card scanning below wide thread counts
TH_STRIPES = 4
TH_REGION_SIZE = 256 * KiB
TH_PHASES = 10
TH_MEMBERS = 10

#: thread counts of the adaptive-batching comparison (wide pools)
ADAPTIVE_THREADS = (8, 16)
#: experiment-local shrink threshold: low enough that the 8-worker
#: config (imbalance ~1.1 static) adapts too, not just the 16-worker one
ADAPTIVE_SHRINK_THRESHOLD = 1.08

#: G1 concurrent-marking series: mutator record-ops between majors
G1_MUTATOR_INTENSITY = (0, 512, 2048, 8192)
G1_ROUNDS = 6
#: long-lived objects marking must traverse every cycle
G1_RESIDENT = 180
#: short-lived allocations per round (the only OTHER time at intensity 0)
G1_FRESH_PER_ROUND = 16
#: G1 runs at the paper's 8 parallel GC threads (2 concurrent lanes)
G1_GC_THREADS = 8
#: back-to-back majors of the stress run (no mutator progress between)
G1_STRESS_MAJORS = 5


@dataclass
class ScalingPoint:
    """One sweep point: a full churn run at a fixed ``gc_threads``."""

    gc_threads: int
    minor_count: int
    major_count: int
    total_pause_s: float
    mean_minor_pause_s: float
    #: engine-scheduled work: sum of raw task costs vs charged critical paths
    serial_s: float
    parallel_s: float
    tasks: int
    steals: int
    remote_steals: int
    idle_s: float
    imbalance: float
    steal_policy: str = "steal-one"
    batch_final_scale: float = 1.0
    worker_steals: List[int] = field(default_factory=list)
    worker_idle_s: List[float] = field(default_factory=list)
    #: total-pause speedup vs the 1-thread point (filled by run_scaling)
    pause_speedup: float = 1.0

    @property
    def engine_speedup(self) -> float:
        """Speedup of the engine-scheduled portion of the pauses."""
        if self.parallel_s <= 0.0:
            return 1.0
        return self.serial_s / self.parallel_s

    @property
    def efficiency(self) -> float:
        """Engine speedup per worker thread (1.0 = perfectly linear)."""
        return self.engine_speedup / self.gc_threads

    def to_dict(self) -> Dict[str, object]:
        return {
            "gc_threads": self.gc_threads,
            "steal_policy": self.steal_policy,
            "minor_count": self.minor_count,
            "major_count": self.major_count,
            "total_pause_s": round(self.total_pause_s, 9),
            "mean_minor_pause_s": round(self.mean_minor_pause_s, 9),
            "serial_s": round(self.serial_s, 9),
            "parallel_s": round(self.parallel_s, 9),
            "tasks": self.tasks,
            "steals": self.steals,
            "remote_steals": self.remote_steals,
            "idle_s": round(self.idle_s, 9),
            "imbalance": round(self.imbalance, 6),
            "batch_final_scale": round(self.batch_final_scale, 6),
            "worker_steals": self.worker_steals,
            "worker_idle_s": [round(v, 9) for v in self.worker_idle_s],
            "pause_speedup": round(self.pause_speedup, 6),
            "efficiency": round(self.efficiency, 6),
        }


def churn_engine_config(
    trace: bool = False,
    steal_policy: str = "steal-one",
    adaptive: bool = False,
    numa_nodes: int = 1,
) -> GCEngineConfig:
    """Engine config of the churn sweep: finer-grained than the defaults
    so 16 lanes have enough tasks to fill."""
    return GCEngineConfig(
        trace=trace,
        scan_batch_objects=8,
        copy_batch_objects=6,
        precompact_batch_objects=24,
        card_chunk_cards=512,
        steal_policy=steal_policy,
        adaptive_batching=adaptive,
        imbalance_shrink_threshold=ADAPTIVE_SHRINK_THRESHOLD,
        numa_nodes=numa_nodes,
    )


def run_churn(
    gc_threads: int,
    batches: int = 60,
    trace: bool = False,
    steal_policy: str = "steal-one",
    adaptive: bool = False,
    numa_nodes: int = 1,
) -> JavaVM:
    """Run the deterministic churn workload on a fresh VM.

    Allocates linked record batches; a fixed stride of every
    ``RETAIN_EVERY``-th batch is attached to a rooted table (promoting
    through the survivor spaces), and the resident store is evicted FIFO
    beyond ``RESIDENT_CAP`` so the old generation churns and major GCs
    occur.  No RNG anywhere: identical input at every thread count.
    """
    config = VMConfig(
        heap_size=gb(8),
        # The jdk11 PS flavour: old-gen collection is also parallel, so
        # the sweep exercises the engine in every phase.
        collector="ps11",
        gc_threads=gc_threads,
        engine=churn_engine_config(
            trace=trace,
            steal_policy=steal_policy,
            adaptive=adaptive,
            numa_nodes=numa_nodes,
        ),
    )
    vm = JavaVM(config)
    table = vm.roots.add(vm.allocate(64 * KiB, name="table"))
    resident: List = []
    for i in range(batches):
        batch = []
        prev = None
        for j in range(OBJECTS_PER_BATCH):
            # Chains restart every RETAIN_STRIDE objects, so a retained
            # object anchors a short record chain, not the whole batch.
            if j % RETAIN_STRIDE == 0:
                prev = None
            obj = vm.allocate(
                OBJECT_SIZE,
                refs=[prev] if prev is not None else [],
                name=f"rec-{i}-{j}",
            )
            prev = obj
            batch.append(obj)
        if i % RETAIN_EVERY == 0:
            # Chain tails: each anchors its whole sub-chain.
            for obj in batch[RETAIN_STRIDE - 1 :: RETAIN_STRIDE]:
                vm.write_ref(table, obj)
                resident.append(obj)
        if len(resident) > RESIDENT_CAP:
            evicted = resident[: len(resident) - RESIDENT_CAP]
            resident = resident[len(evicted):]
            for obj in evicted:
                vm.write_ref(table, None, remove=obj)
    return vm


def measure(vm: JavaVM, steal_policy: str = "steal-one") -> ScalingPoint:
    """Fold a finished run's GC stats into one ScalingPoint."""
    stats = vm.collector.stats
    workers = vm.config.gc_threads
    worker_steals = [0] * workers
    worker_idle = [0.0] * workers
    for cycle in stats.cycles:
        for idx, count in enumerate(cycle.worker_steals[:workers]):
            worker_steals[idx] += count
        for idx, sec in enumerate(cycle.worker_idle[:workers]):
            worker_idle[idx] += sec
    controller = stats.batch_controller_summary()
    return ScalingPoint(
        gc_threads=workers,
        minor_count=stats.minor_count,
        major_count=stats.major_count,
        total_pause_s=stats.total_time("minor") + stats.total_time("major"),
        mean_minor_pause_s=stats.mean_time("minor"),
        serial_s=sum(c.parallel_serial_seconds for c in stats.cycles),
        parallel_s=sum(c.parallel_seconds for c in stats.cycles),
        tasks=stats.total_tasks(),
        steals=stats.total_steals(),
        remote_steals=stats.total_remote_steals(),
        idle_s=stats.total_idle(),
        imbalance=stats.mean_imbalance(),
        steal_policy=steal_policy,
        batch_final_scale=controller["final_scale"],
        worker_steals=worker_steals,
        worker_idle_s=worker_idle,
    )


def run_scaling(
    threads: Sequence[int] = SWEEP_THREADS,
    batches: int = 60,
    steal_policy: str = "steal-one",
    adaptive: bool = False,
) -> List[ScalingPoint]:
    """The sweep: one churn run per gc_threads value."""
    points = [
        run_churn(t, batches=batches, steal_policy=steal_policy,
                  adaptive=adaptive)
        for t in threads
    ]
    measured = [measure(vm, steal_policy) for vm in points]
    base = next((p for p in measured if p.gc_threads == 1), measured[0])
    for p in measured:
        if p.total_pause_s > 0.0:
            p.pause_speedup = base.total_pause_s / p.total_pause_s
    return measured


def format_scaling(points: List[ScalingPoint]) -> str:
    lines = [
        "thr  minor major  pause_s   speedup  eff    tasks  steals"
        "  idle_s    imbal"
    ]
    for p in points:
        lines.append(
            f"{p.gc_threads:3d}  {p.minor_count:5d} {p.major_count:5d}"
            f"  {p.total_pause_s:8.4f}  {p.pause_speedup:6.2f}"
            f"  {p.efficiency:5.2f}  {p.tasks:6d}  {p.steals:6d}"
            f"  {p.idle_s:8.4f}  {p.imbalance:5.2f}"
        )
        steals = ",".join(str(s) for s in p.worker_steals)
        idles = ",".join(f"{v:.4f}" for v in p.worker_idle_s)
        lines.append(f"     worker_steals=[{steals}]")
        lines.append(f"     worker_idle_s=[{idles}]")
    return "\n".join(lines)


def format_policy_divergence(
    by_policy: Dict[str, List[ScalingPoint]]
) -> str:
    """Side-by-side steal counts per thread count: schedules diverge,
    total task cost does not."""
    lines = [
        "thr  steals(one) steals(half)  serial(one)  serial(half)"
        "  pause(one)  pause(half)"
    ]
    one = {p.gc_threads: p for p in by_policy.get("steal-one", [])}
    half = {p.gc_threads: p for p in by_policy.get("steal-half", [])}
    for t in sorted(set(one) & set(half)):
        a, b = one[t], half[t]
        lines.append(
            f"{t:3d}  {a.steals:11d} {b.steals:12d}  {a.serial_s:11.4f}"
            f"  {b.serial_s:12.4f}  {a.total_pause_s:10.4f}"
            f"  {b.total_pause_s:11.4f}"
        )
    return "\n".join(lines)


# ======================================================================
# TeraHeap scan-cap series (stripe ownership bounds scan parallelism)
# ======================================================================
@dataclass
class TeraHeapScanPoint:
    """H2 card-scan scheduling at one ``gc_threads`` value."""

    gc_threads: int
    #: stripe-bounded workers the scan phases actually ran on
    scan_workers: int
    scan_tasks: int
    scan_serial_s: float
    scan_parallel_s: float
    #: engine speedup of the non-H2 (plain PS) phases of the same run
    ps_speedup: float

    @property
    def scan_speedup(self) -> float:
        if self.scan_parallel_s <= 0.0:
            return 1.0
        return self.scan_serial_s / self.scan_parallel_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "gc_threads": self.gc_threads,
            "scan_workers": self.scan_workers,
            "scan_tasks": self.scan_tasks,
            "scan_serial_s": round(self.scan_serial_s, 9),
            "scan_parallel_s": round(self.scan_parallel_s, 9),
            "scan_speedup": round(self.scan_speedup, 6),
            "ps_speedup": round(self.ps_speedup, 6),
        }


def run_teraheap_churn(gc_threads: int, phases: int = TH_PHASES) -> JavaVM:
    """A TeraHeap workload generating H2 backward-reference scan work.

    Each phase moves a labelled object group to H2, then writes young
    references into the previous groups' device-resident members —
    dirtying H2 cards across every live stripe — and runs a minor plus a
    major GC.  The H2 heap has only ``TH_STRIPES`` stripes, so
    ``scan_parallelism`` caps the card-scan phases there no matter how
    many GC threads the VM has.
    """
    config = VMConfig(
        heap_size=gb(8),
        collector="ps11",
        gc_threads=gc_threads,
        engine=churn_engine_config(),
        teraheap=TeraHeapConfig(
            enabled=True,
            h2_size=TH_STRIPES * TH_REGION_SIZE,
            region_size=TH_REGION_SIZE,
        ),
        page_cache_size=gb(8),
    )
    vm = JavaVM(config)
    table = vm.roots.add(vm.allocate(16 * KiB, name="th-table"))
    groups: List[List] = []
    for i in range(phases):
        label = f"g{i}"
        if len(groups) >= TH_STRIPES - 1:
            # FIFO-drop the oldest group so H2 regions recycle.
            for obj in groups.pop(0):
                vm.write_ref(table, None, remove=obj)
        key = vm.allocate(4 * KiB, name=f"key-{label}")
        vm.write_ref(table, key)
        members = [key]
        for j in range(TH_MEMBERS):
            member = vm.allocate(OBJECT_SIZE, name=f"{label}-m{j}")
            vm.write_ref(key, member)
            members.append(member)
        vm.h2_tag_root(key, label)
        vm.h2_move(label)
        groups.append([key])
        vm.major_gc()  # transfers the group to H2
        # Backward references: every H2-resident member of the live
        # groups gains a young target, dirtying its card so the next
        # scavenge scans slices across all live stripes.
        for group in groups:
            anchor = group[0]
            if not anchor.in_h2:
                continue
            for member in [anchor] + list(anchor.refs):
                if member.in_h2:
                    young = vm.allocate(
                        OBJECT_SIZE, name=f"back-{i}-{member.oid}"
                    )
                    vm.write_ref(member, young)
        vm.minor_gc()
        del members
    return vm


def teraheap_scan_points(
    threads: Sequence[int] = SWEEP_THREADS, phases: int = TH_PHASES
) -> List[TeraHeapScanPoint]:
    """The TeraHeap series: H2 scan scheduling per gc_threads value."""
    points: List[TeraHeapScanPoint] = []
    for t in threads:
        vm = run_teraheap_churn(t, phases=phases)
        scan_workers = 0
        scan_tasks = 0
        scan_serial = 0.0
        scan_parallel = 0.0
        ps_serial = 0.0
        ps_parallel = 0.0
        for cycle in vm.collector.stats.cycles:
            for rec in cycle.engine_phases:
                if rec["phase"].startswith("h2-") and rec["phase"].endswith(
                    "-scan"
                ):
                    scan_workers = max(scan_workers, rec["workers"])
                    scan_tasks += rec["tasks"]
                    scan_serial += rec["serial_s"]
                    scan_parallel += rec["critical_s"]
                elif rec["phase"].startswith("minor-"):
                    ps_serial += rec["serial_s"]
                    ps_parallel += rec["critical_s"]
        points.append(
            TeraHeapScanPoint(
                gc_threads=t,
                scan_workers=scan_workers,
                scan_tasks=scan_tasks,
                scan_serial_s=scan_serial,
                scan_parallel_s=scan_parallel,
                ps_speedup=(
                    ps_serial / ps_parallel if ps_parallel > 0.0 else 1.0
                ),
            )
        )
    return points


def format_teraheap_points(points: List[TeraHeapScanPoint]) -> str:
    lines = [
        f"H2 stripes={TH_STRIPES} (scan_parallelism cap)",
        "thr  scan_workers  scan_tasks  scan_speedup  ps_speedup",
    ]
    for p in points:
        lines.append(
            f"{p.gc_threads:3d}  {p.scan_workers:12d}  {p.scan_tasks:10d}"
            f"  {p.scan_speedup:12.2f}  {p.ps_speedup:10.2f}"
        )
    return "\n".join(lines)


# ======================================================================
# Adaptive batch sizing (static vs feedback-controlled)
# ======================================================================
@dataclass
class AdaptivePoint:
    """Static vs adaptive batching at one wide worker count."""

    gc_threads: int
    static_imbalance: float
    adaptive_imbalance: float
    static_pause_s: float
    adaptive_pause_s: float
    final_scale: float
    shrinks: int
    grows: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "gc_threads": self.gc_threads,
            "static_imbalance": round(self.static_imbalance, 6),
            "adaptive_imbalance": round(self.adaptive_imbalance, 6),
            "static_pause_s": round(self.static_pause_s, 9),
            "adaptive_pause_s": round(self.adaptive_pause_s, 9),
            "final_scale": round(self.final_scale, 6),
            "shrinks": self.shrinks,
            "grows": self.grows,
        }


def run_adaptive_comparison(
    threads: Sequence[int] = ADAPTIVE_THREADS, batches: int = 60
) -> List[AdaptivePoint]:
    points: List[AdaptivePoint] = []
    for t in threads:
        static_vm = run_churn(t, batches=batches)
        adaptive_vm = run_churn(t, batches=batches, adaptive=True)
        controller = adaptive_vm.collector.stats.batch_controller_summary()
        s_stats = static_vm.collector.stats
        a_stats = adaptive_vm.collector.stats
        points.append(
            AdaptivePoint(
                gc_threads=t,
                static_imbalance=s_stats.mean_imbalance(),
                adaptive_imbalance=a_stats.mean_imbalance(),
                static_pause_s=(
                    s_stats.total_time("minor") + s_stats.total_time("major")
                ),
                adaptive_pause_s=(
                    a_stats.total_time("minor") + a_stats.total_time("major")
                ),
                final_scale=controller["final_scale"],
                shrinks=int(controller["shrinks"]),
                grows=int(controller["grows"]),
            )
        )
    return points


def format_adaptive_points(points: List[AdaptivePoint]) -> str:
    lines = [
        "thr  imbal(static)  imbal(adaptive)  pause(static)"
        "  pause(adaptive)  scale  shrinks grows"
    ]
    for p in points:
        lines.append(
            f"{p.gc_threads:3d}  {p.static_imbalance:13.4f}"
            f"  {p.adaptive_imbalance:15.4f}  {p.static_pause_s:13.4f}"
            f"  {p.adaptive_pause_s:15.4f}  {p.final_scale:5.2f}"
            f"  {p.shrinks:7d} {p.grows:5d}"
        )
    return "\n".join(lines)


# ======================================================================
# G1 concurrent marking (mutator intensity vs hidden-marking share)
# ======================================================================
@dataclass
class G1MarkingPoint:
    """Concurrent-marking overlap at one mutator intensity.

    ``hidden_s`` is the share of the concurrent-mark critical path that
    raced mutator (``Bucket.OTHER``) progress and was never charged to a
    pause; ``remark_s`` is the STW remark that always is.
    """

    label: str
    mutator_ops: int
    majors: int
    mark_serial_s: float
    mark_critical_s: float
    hidden_s: float
    remark_s: float
    mutator_s: float

    @property
    def hidden_share(self) -> float:
        """Fraction of the concurrent-mark critical path hidden behind
        the mutator (1.0 = marking was free, 0.0 = fully paused)."""
        if self.mark_critical_s <= 0.0:
            return 0.0
        return self.hidden_s / self.mark_critical_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "mutator_ops": self.mutator_ops,
            "majors": self.majors,
            "mark_serial_s": round(self.mark_serial_s, 9),
            "mark_critical_s": round(self.mark_critical_s, 9),
            "hidden_s": round(self.hidden_s, 9),
            "remark_s": round(self.remark_s, 9),
            "mutator_s": round(self.mutator_s, 9),
            "hidden_share": round(self.hidden_share, 6),
        }


def _g1_vm() -> JavaVM:
    """A G1 VM with a rooted resident set sized so each major's
    concurrent mark has real traversal work."""
    config = VMConfig(
        heap_size=gb(8),
        collector="g1",
        gc_threads=G1_GC_THREADS,
        engine=churn_engine_config(),
    )
    vm = JavaVM(config)
    table = vm.roots.add(vm.allocate(64 * KiB, name="g1-table"))
    for i in range(G1_RESIDENT):
        obj = vm.allocate(OBJECT_SIZE, name=f"g1-res-{i}")
        vm.write_ref(table, obj)
    # Warmup major: consumes the OTHER time accrued during setup, so the
    # measured cycles only see mutator progress from their own rounds.
    vm.major_gc()
    return vm


def _measure_g1(vm: JavaVM, label: str, mutator_ops: int) -> G1MarkingPoint:
    """Fold a G1 run's post-warmup majors into one marking point."""
    majors = [c for c in vm.collector.stats.cycles if c.kind == "major"][1:]
    serial = critical = hidden = remark = 0.0
    for c in majors:
        for rec in c.engine_phases:
            if rec["phase"] == "g1-concurrent-mark":
                serial += rec["serial_s"]
                critical += rec["critical_s"]
        hidden += c.concurrent_hidden
        remark += c.remark_pause
    return G1MarkingPoint(
        label=label,
        mutator_ops=mutator_ops,
        majors=len(majors),
        mark_serial_s=serial,
        mark_critical_s=critical,
        hidden_s=hidden,
        remark_s=remark,
        mutator_s=vm.clock.total(Bucket.OTHER),
    )


def run_g1_marking(mutator_ops: int, rounds: int = G1_ROUNDS) -> JavaVM:
    """Alternate mutator work and major GCs at a fixed intensity.

    Each round allocates a few short-lived records, runs ``mutator_ops``
    record operations (``vm.compute``), and triggers a major GC, so the
    concurrent mark of cycle N races exactly the mutator time of round N.
    """
    vm = _g1_vm()
    for i in range(rounds):
        for j in range(G1_FRESH_PER_ROUND):
            vm.allocate(OBJECT_SIZE, name=f"g1-fresh-{i}-{j}")
        if mutator_ops:
            vm.compute(mutator_ops)
        vm.major_gc()
    return vm


def run_g1_stress(majors: int = G1_STRESS_MAJORS) -> JavaVM:
    """Back-to-back majors: zero mutator progress between cycles, so the
    concurrent mark has nothing to hide behind."""
    vm = _g1_vm()
    for _ in range(majors):
        vm.major_gc()
    return vm


def g1_marking_points(
    intensities: Sequence[int] = G1_MUTATOR_INTENSITY,
    rounds: int = G1_ROUNDS,
) -> List[G1MarkingPoint]:
    """The G1 series: one point per mutator intensity, plus the
    back-to-back stress point."""
    points = [
        _measure_g1(run_g1_marking(ops, rounds=rounds), f"ops={ops}", ops)
        for ops in intensities
    ]
    points.append(_measure_g1(run_g1_stress(), "stress", 0))
    return points


def format_g1_marking_points(points: List[G1MarkingPoint]) -> str:
    lines = [
        f"G1 gc_threads={G1_GC_THREADS} "
        f"(concurrent lanes = gc_threads/4)",
        "point      majors  mark_crit_s  hidden_s   hidden%  remark_s"
        "  mutator_s",
    ]
    for p in points:
        lines.append(
            f"{p.label:9s}  {p.majors:6d}  {p.mark_critical_s:11.6f}"
            f"  {p.hidden_s:9.6f}  {p.hidden_share:6.1%}"
            f"  {p.remark_s:8.6f}  {p.mutator_s:9.6f}"
        )
    return "\n".join(lines)


# ======================================================================
# Baseline regression gate (CI)
# ======================================================================
def baseline_payload(
    by_policy: Dict[str, List[ScalingPoint]],
    batches: int,
    g1_marking: Optional[List[G1MarkingPoint]] = None,
) -> Dict:
    payload: Dict = {
        "schema": 3,
        "batches": batches,
        "policies": {
            policy: [p.to_dict() for p in points]
            for policy, points in sorted(by_policy.items())
        },
    }
    if g1_marking is not None:
        payload["g1_marking"] = [p.to_dict() for p in g1_marking]
    return payload


def payload_digest(payload: Dict) -> str:
    """Canonical digest of a sweep payload (the determinism artifact)."""
    doc = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode()).hexdigest()


def check_baseline(
    by_policy: Dict[str, List[ScalingPoint]], baseline: Dict
) -> List[str]:
    """Compare against a checked-in baseline; returns failure messages.

    The gate is the 1-thread total pause, per steal policy: the engine
    at one worker must reproduce the serial cost model, so a >10% drift
    there means the task decomposition or the engine's overhead
    accounting changed.
    """
    failures: List[str] = []
    base_policies = baseline.get("policies")
    if base_policies is None:
        # Schema-1 fallback: a flat point list, treated as steal-one.
        base_policies = {"steal-one": baseline.get("points", [])}
    for policy, points in sorted(by_policy.items()):
        base_points = {
            p["gc_threads"]: p for p in base_policies.get(policy, [])
        }
        one = next((p for p in points if p.gc_threads == 1), None)
        ref = base_points.get(1)
        if one is None or ref is None:
            failures.append(
                f"{policy}: baseline or sweep lacks a gc_threads=1 point"
            )
            continue
        ceiling = ref["total_pause_s"] * (1.0 + BASELINE_TOLERANCE)
        if one.total_pause_s > ceiling:
            failures.append(
                f"{policy}: 1-thread GC pause regressed: "
                f"{one.total_pause_s:.6f}s vs baseline "
                f"{ref['total_pause_s']:.6f}s (+{BASELINE_TOLERANCE:.0%} "
                f"ceiling {ceiling:.6f}s)"
            )
    return failures


def check_determinism(
    threads: Sequence[int], batches: int
) -> List[str]:
    """Re-run the steal-half sweep and the adaptive comparison; any
    digest drift between the two runs is a determinism regression."""
    failures: List[str] = []
    first = baseline_payload(
        {"steal-half": run_scaling(threads, batches, "steal-half")}, batches
    )
    second = baseline_payload(
        {"steal-half": run_scaling(threads, batches, "steal-half")}, batches
    )
    if payload_digest(first) != payload_digest(second):
        failures.append("steal-half sweep digests differ across two runs")
    adaptive_threads = [t for t in threads if t >= 8] or list(threads)[-1:]
    a1 = [p.to_dict() for p in run_adaptive_comparison(
        adaptive_threads, batches
    )]
    a2 = [p.to_dict() for p in run_adaptive_comparison(
        adaptive_threads, batches
    )]
    if payload_digest({"points": a1}) != payload_digest({"points": a2}):
        failures.append(
            "adaptive-batching digests differ across two runs"
        )
    g1_intensities = (0, 2048)
    g1 = [
        [p.to_dict() for p in g1_marking_points(g1_intensities, rounds=3)]
        for _ in range(2)
    ]
    if payload_digest({"points": g1[0]}) != payload_digest(
        {"points": g1[1]}
    ):
        failures.append(
            "g1 concurrent-marking digests differ across two runs"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.gc_scaling",
        description="GC-thread scaling sweep on the task-based GC engine",
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="*",
        default=list(SWEEP_THREADS),
        help="gc_threads values to sweep",
    )
    parser.add_argument(
        "--batches",
        type=int,
        default=None,
        help="churn batches per point (default: 60, or 24 with --smoke)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast sweep (CI)",
    )
    parser.add_argument(
        "--policy",
        choices=list(STEAL_POLICIES) + ["both"],
        default="both",
        help="steal policy (or 'both' for the head-to-head comparison)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write the sweep results as the new baseline JSON",
    )
    parser.add_argument(
        "--check-baseline",
        metavar="PATH",
        default=None,
        help="fail if the 1-thread pause regresses >10%% vs this JSON",
    )
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="re-run the steal-half sweep + adaptive comparison and fail "
        "on any digest drift (byte-identical schedules)",
    )
    args = parser.parse_args(argv)
    batches = args.batches or (24 if args.smoke else 60)
    policies = (
        list(STEAL_POLICIES) if args.policy == "both" else [args.policy]
    )

    by_policy: Dict[str, List[ScalingPoint]] = {}
    for policy in policies:
        points = run_scaling(args.threads, batches=batches,
                             steal_policy=policy)
        by_policy[policy] = points
        print(f"== steal policy: {policy} ==")
        print(format_scaling(points))
        print()
    if len(by_policy) > 1:
        print("== policy divergence (same work, different schedules) ==")
        print(format_policy_divergence(by_policy))
        print()

    th_phases = max(4, TH_PHASES // 2) if args.smoke else TH_PHASES
    print("== TeraHeap: stripe ownership bounds scan parallelism ==")
    print(format_teraheap_points(
        teraheap_scan_points(args.threads, phases=th_phases)
    ))
    print()

    adaptive_threads = [t for t in args.threads if t >= 8]
    if adaptive_threads:
        print("== adaptive batch sizing (static vs controller) ==")
        print(format_adaptive_points(
            run_adaptive_comparison(adaptive_threads, batches=batches)
        ))
        print()

    g1_rounds = 3 if args.smoke else G1_ROUNDS
    g1_points = g1_marking_points(rounds=g1_rounds)
    print("== G1 concurrent marking (hidden share vs mutator work) ==")
    print(format_g1_marking_points(g1_points))
    print()

    failures: List[str] = []
    if args.write_baseline:
        with open(args.write_baseline, "w") as f:
            json.dump(
                baseline_payload(by_policy, batches, g1_marking=g1_points),
                f,
                indent=2,
            )
            f.write("\n")
        print(f"baseline written to {args.write_baseline}")
    if args.check_baseline:
        with open(args.check_baseline) as f:
            baseline = json.load(f)
        if baseline.get("batches") != batches:
            print(
                "warning: baseline batches="
                f"{baseline.get('batches')} != sweep batches={batches}"
            )
        failures.extend(check_baseline(by_policy, baseline))
    if args.check_determinism:
        failures.extend(check_determinism(args.threads, batches))
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    if args.check_baseline:
        print("baseline check passed")
    if args.check_determinism:
        print("determinism check passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
