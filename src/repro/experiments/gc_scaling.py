"""GC-thread scaling: pause time and parallel efficiency, 1 to 16 threads.

Sweeps ``gc_threads`` over a deterministic allocation-churn workload and
reports, per point: GC pause totals, the emergent speedup over the
single-threaded engine schedule, parallel efficiency, and the engine's
scheduling counters (tasks, steals, per-worker idle time, imbalance).
With the task-based engine the speedup is an *output* — it comes from
critical paths over simulated worker lanes, not from a scalar divisor —
so this sweep is the direct check that parallel GC behaves: speedup must
grow with threads but stay sub-linear (termination protocol, steal
overhead, and chunky tasks all tax wide pools).

The workload contains no randomness (the only RNG in the stack is the
engine's seeded victim selection), so a point's report is byte-identical
across runs; ``--check-baseline`` exploits that to fail CI when the
1-thread pause regresses more than 10% against the checked-in baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import GCEngineConfig, VMConfig
from ..runtime import JavaVM
from ..units import KiB, gb

#: gc_threads values of the sweep (the paper's testbed has 16 h/w threads)
SWEEP_THREADS = (1, 2, 4, 8, 16)

#: churn-workload shape (objects are 8 KiB simulated chunks)
OBJECT_SIZE = 8 * KiB
OBJECTS_PER_BATCH = 64
#: every Nth batch contributes survivors to the resident store
RETAIN_EVERY = 3
#: every Nth object of a retained batch survives (with its sub-chain)
RETAIN_STRIDE = 7
#: resident-store size cap; eviction keeps old-gen churn (and major GCs)
RESIDENT_CAP = 60

#: allowed relative regression of the 1-thread pause vs the baseline
BASELINE_TOLERANCE = 0.10


@dataclass
class ScalingPoint:
    """One sweep point: a full churn run at a fixed ``gc_threads``."""

    gc_threads: int
    minor_count: int
    major_count: int
    total_pause_s: float
    mean_minor_pause_s: float
    #: engine-scheduled work: sum of raw task costs vs charged critical paths
    serial_s: float
    parallel_s: float
    tasks: int
    steals: int
    idle_s: float
    imbalance: float
    worker_steals: List[int] = field(default_factory=list)
    worker_idle_s: List[float] = field(default_factory=list)
    #: total-pause speedup vs the 1-thread point (filled by run_scaling)
    pause_speedup: float = 1.0

    @property
    def engine_speedup(self) -> float:
        """Speedup of the engine-scheduled portion of the pauses."""
        if self.parallel_s <= 0.0:
            return 1.0
        return self.serial_s / self.parallel_s

    @property
    def efficiency(self) -> float:
        """Engine speedup per worker thread (1.0 = perfectly linear)."""
        return self.engine_speedup / self.gc_threads

    def to_dict(self) -> Dict[str, object]:
        return {
            "gc_threads": self.gc_threads,
            "minor_count": self.minor_count,
            "major_count": self.major_count,
            "total_pause_s": round(self.total_pause_s, 9),
            "mean_minor_pause_s": round(self.mean_minor_pause_s, 9),
            "serial_s": round(self.serial_s, 9),
            "parallel_s": round(self.parallel_s, 9),
            "tasks": self.tasks,
            "steals": self.steals,
            "idle_s": round(self.idle_s, 9),
            "imbalance": round(self.imbalance, 6),
            "worker_steals": self.worker_steals,
            "worker_idle_s": [round(v, 9) for v in self.worker_idle_s],
            "pause_speedup": round(self.pause_speedup, 6),
            "efficiency": round(self.efficiency, 6),
        }


def run_churn(
    gc_threads: int, batches: int = 60, trace: bool = False
) -> JavaVM:
    """Run the deterministic churn workload on a fresh VM.

    Allocates linked record batches; a fixed stride of every
    ``RETAIN_EVERY``-th batch is attached to a rooted table (promoting
    through the survivor spaces), and the resident store is evicted FIFO
    beyond ``RESIDENT_CAP`` so the old generation churns and major GCs
    occur.  No RNG anywhere: identical input at every thread count.
    """
    config = VMConfig(
        heap_size=gb(8),
        # The jdk11 PS flavour: old-gen collection is also parallel, so
        # the sweep exercises the engine in every phase.
        collector="ps11",
        gc_threads=gc_threads,
        # Finer-grained tasks than the defaults: the sweep's point is
        # scheduling behaviour, so give 16 lanes enough tasks to fill.
        engine=GCEngineConfig(
            trace=trace,
            scan_batch_objects=8,
            copy_batch_objects=6,
            precompact_batch_objects=24,
            card_chunk_cards=512,
        ),
    )
    vm = JavaVM(config)
    table = vm.roots.add(vm.allocate(64 * KiB, name="table"))
    resident: List = []
    for i in range(batches):
        batch = []
        prev = None
        for j in range(OBJECTS_PER_BATCH):
            # Chains restart every RETAIN_STRIDE objects, so a retained
            # object anchors a short record chain, not the whole batch.
            if j % RETAIN_STRIDE == 0:
                prev = None
            obj = vm.allocate(
                OBJECT_SIZE,
                refs=[prev] if prev is not None else [],
                name=f"rec-{i}-{j}",
            )
            prev = obj
            batch.append(obj)
        if i % RETAIN_EVERY == 0:
            # Chain tails: each anchors its whole sub-chain.
            for obj in batch[RETAIN_STRIDE - 1 :: RETAIN_STRIDE]:
                vm.write_ref(table, obj)
                resident.append(obj)
        if len(resident) > RESIDENT_CAP:
            evicted = resident[: len(resident) - RESIDENT_CAP]
            resident = resident[len(evicted):]
            for obj in evicted:
                vm.write_ref(table, None, remove=obj)
    return vm


def measure(vm: JavaVM) -> ScalingPoint:
    """Fold a finished run's GC stats into one ScalingPoint."""
    stats = vm.collector.stats
    workers = vm.config.gc_threads
    worker_steals = [0] * workers
    worker_idle = [0.0] * workers
    for cycle in stats.cycles:
        for idx, count in enumerate(cycle.worker_steals[:workers]):
            worker_steals[idx] += count
        for idx, sec in enumerate(cycle.worker_idle[:workers]):
            worker_idle[idx] += sec
    return ScalingPoint(
        gc_threads=workers,
        minor_count=stats.minor_count,
        major_count=stats.major_count,
        total_pause_s=stats.total_time("minor") + stats.total_time("major"),
        mean_minor_pause_s=stats.mean_time("minor"),
        serial_s=sum(c.parallel_serial_seconds for c in stats.cycles),
        parallel_s=sum(c.parallel_seconds for c in stats.cycles),
        tasks=stats.total_tasks(),
        steals=stats.total_steals(),
        idle_s=stats.total_idle(),
        imbalance=stats.mean_imbalance(),
        worker_steals=worker_steals,
        worker_idle_s=worker_idle,
    )


def run_scaling(
    threads: Sequence[int] = SWEEP_THREADS, batches: int = 60
) -> List[ScalingPoint]:
    """The sweep: one churn run per gc_threads value."""
    points = [run_churn(t, batches=batches) for t in threads]
    measured = [measure(vm) for vm in points]
    base = next((p for p in measured if p.gc_threads == 1), measured[0])
    for p in measured:
        if p.total_pause_s > 0.0:
            p.pause_speedup = base.total_pause_s / p.total_pause_s
    return measured


def format_scaling(points: List[ScalingPoint]) -> str:
    lines = [
        "thr  minor major  pause_s   speedup  eff    tasks  steals"
        "  idle_s    imbal"
    ]
    for p in points:
        lines.append(
            f"{p.gc_threads:3d}  {p.minor_count:5d} {p.major_count:5d}"
            f"  {p.total_pause_s:8.4f}  {p.pause_speedup:6.2f}"
            f"  {p.efficiency:5.2f}  {p.tasks:6d}  {p.steals:6d}"
            f"  {p.idle_s:8.4f}  {p.imbalance:5.2f}"
        )
        steals = ",".join(str(s) for s in p.worker_steals)
        idles = ",".join(f"{v:.4f}" for v in p.worker_idle_s)
        lines.append(f"     worker_steals=[{steals}]")
        lines.append(f"     worker_idle_s=[{idles}]")
    return "\n".join(lines)


# ======================================================================
# Baseline regression gate (CI)
# ======================================================================
def baseline_payload(points: List[ScalingPoint], batches: int) -> Dict:
    return {
        "schema": 1,
        "batches": batches,
        "points": [p.to_dict() for p in points],
    }


def check_baseline(
    points: List[ScalingPoint], baseline: Dict
) -> List[str]:
    """Compare against a checked-in baseline; returns failure messages.

    The gate is the 1-thread total pause: the engine at one worker must
    reproduce the serial cost model, so a >10% drift there means the
    task decomposition or the engine's overhead accounting changed.
    """
    failures: List[str] = []
    base_points = {
        p["gc_threads"]: p for p in baseline.get("points", [])
    }
    one = next((p for p in points if p.gc_threads == 1), None)
    ref = base_points.get(1)
    if one is None or ref is None:
        return ["baseline or sweep lacks a gc_threads=1 point"]
    ceiling = ref["total_pause_s"] * (1.0 + BASELINE_TOLERANCE)
    if one.total_pause_s > ceiling:
        failures.append(
            "1-thread GC pause regressed: "
            f"{one.total_pause_s:.6f}s vs baseline "
            f"{ref['total_pause_s']:.6f}s (+{BASELINE_TOLERANCE:.0%} "
            f"ceiling {ceiling:.6f}s)"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.gc_scaling",
        description="GC-thread scaling sweep on the task-based GC engine",
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="*",
        default=list(SWEEP_THREADS),
        help="gc_threads values to sweep",
    )
    parser.add_argument(
        "--batches",
        type=int,
        default=None,
        help="churn batches per point (default: 60, or 24 with --smoke)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast sweep (CI)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write the sweep results as the new baseline JSON",
    )
    parser.add_argument(
        "--check-baseline",
        metavar="PATH",
        default=None,
        help="fail if the 1-thread pause regresses >10%% vs this JSON",
    )
    args = parser.parse_args(argv)
    batches = args.batches or (24 if args.smoke else 60)

    points = run_scaling(args.threads, batches=batches)
    print(format_scaling(points))

    if args.write_baseline:
        with open(args.write_baseline, "w") as f:
            json.dump(baseline_payload(points, batches), f, indent=2)
            f.write("\n")
        print(f"baseline written to {args.write_baseline}")
    if args.check_baseline:
        with open(args.check_baseline) as f:
            baseline = json.load(f)
        if baseline.get("batches") != batches:
            print(
                "warning: baseline batches="
                f"{baseline.get('batches')} != sweep batches={batches}"
            )
        failures = check_baseline(points, baseline)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print("baseline check passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
