"""Builds configured VMs and runs workloads under each evaluated system.

Systems (Table 2 plus the Figure 8/12 baselines):

- ``spark-sd``   — PS (jdk8), on-heap cache + serialized off-heap store
- ``spark-sd11`` — same but the optimised jdk11 PS (Figure 8)
- ``spark-g1``   — G1 on jdk17 (Figure 8)
- ``spark-mo``   — heap over NVM in Memory mode, all cached data on-heap
- ``panthera``   — hybrid DRAM/NVM heap (Figure 12c)
- ``teraheap``   — H1 in DRAM + H2 over the device
- ``giraph-ooc`` — Giraph out-of-core
- ``giraph-th``  — Giraph over TeraHeap
"""

from __future__ import annotations

from typing import Optional

from .. import faults as faults_mod
from ..config import PantheraConfig, TeraHeapConfig, VMConfig
from ..devices.base import Device
from ..devices.nvm import NVM
from ..devices.nvme import NVMeSSD
from ..errors import OutOfMemoryError
from ..frameworks.giraph import GiraphConf, GiraphMode
from ..frameworks.giraph.workloads import make_giraph_graph, run_giraph
from ..frameworks.spark import CachePolicy, SparkConf, SparkContext
from ..frameworks.spark.workloads import SPARK_WORKLOADS
from ..metrics.report import ExperimentResult, collect_result
from ..runtime import JavaVM
from ..units import KiB, gb
from .configs import (
    GiraphWorkloadConfig,
    SPARK_DR2_GB,
    SparkWorkloadConfig,
)

#: H2 region sizes used in the experiments (paper-scale 64 MB / 16 MB)
SPARK_H2_REGION = 64 * KiB
GIRAPH_H2_REGION = 16 * KiB


def _make_device(kind: str, vm_clock) -> Device:
    if kind == "nvme":
        return NVMeSSD(vm_clock)
    if kind == "nvm":
        return NVM(vm_clock)
    raise ValueError(f"unknown device kind {kind!r}")


# ======================================================================
# Spark
# ======================================================================
def build_spark_vm(
    system: str,
    dram_gb: float,
    cfg: SparkWorkloadConfig,
    device_kind: str = "nvme",
    threads: int = 8,
    teraheap_overrides: Optional[dict] = None,
):
    """Construct (vm, ctx) for one Spark experiment cell."""
    heap_gb = max(dram_gb - SPARK_DR2_GB, dram_gb / 2)
    th_enabled = system == "teraheap"
    th_kwargs = dict(
        enabled=th_enabled,
        h2_size=gb(2048),
        region_size=SPARK_H2_REGION,
        huge_pages=cfg.huge_pages,
    )
    if teraheap_overrides:
        th_kwargs.update(teraheap_overrides)
    collector = {
        "spark-sd": "ps",
        "teraheap": "ps",
        "spark-sd11": "ps11",
        "spark-g1": "g1",
        "spark-mo": "memmode",
        "panthera": "panthera",
    }[system]
    if th_enabled:
        heap_gb = (dram_gb - SPARK_DR2_GB) * cfg.th_h1_fraction
    if system == "spark-mo":
        # Spark-MO: the minimum heap that fits all cached data on-heap
        # (Section 6) — large enough that the memory store never evicts;
        # the heap itself lives on NVM in Memory mode.
        heap_gb = max(cfg.dataset_gb * 1.8, dram_gb)
    panthera = None
    if system == "panthera":
        from .configs import (
            PANTHERA_DRAM_OLD_GB,
            PANTHERA_HEAP_GB,
            PANTHERA_NVM_OLD_GB,
        )

        heap_gb = PANTHERA_HEAP_GB
        panthera = PantheraConfig(
            dram_old_size=gb(PANTHERA_DRAM_OLD_GB),
            nvm_old_size=gb(PANTHERA_NVM_OLD_GB),
        )
    vm_config = VMConfig(
        heap_size=gb(heap_gb),
        collector=collector,
        teraheap=TeraHeapConfig(**th_kwargs),
        panthera=panthera,
        mutator_threads=threads,
        page_cache_size=gb(SPARK_DR2_GB),
        young_fraction=1.0 / 6.0 if system == "panthera" else 1.0 / 3.0,
    )
    from ..clock import Clock

    h2_device = _make_device(device_kind, Clock()) if th_enabled else None
    vm = JavaVM(vm_config, h2_device=h2_device)
    if system == "panthera":
        nvm = NVM(vm.clock)
        vm.old_gen_device = nvm
        vm.collector.nvm = nvm
    offheap = _make_device(device_kind, vm.clock)
    policy = {
        "spark-sd": CachePolicy.SD,
        "spark-sd11": CachePolicy.SD,
        "spark-g1": CachePolicy.SD,
        "teraheap": CachePolicy.TERAHEAP,
        "spark-mo": CachePolicy.MO,
        "panthera": CachePolicy.MO,
    }[system]
    ctx = SparkContext(
        vm, SparkConf(cache_policy=policy, offheap_device=offheap)
    )
    return vm, ctx


def run_spark_workload(
    workload: str,
    system: str,
    dram_gb: float,
    cfg: SparkWorkloadConfig,
    device_kind: str = "nvme",
    scale: float = 1.0,
    threads: int = 8,
    dataset_gb: Optional[float] = None,
    teraheap_overrides: Optional[dict] = None,
) -> ExperimentResult:
    """Run one Spark experiment cell, capturing OOM as a missing bar."""
    vm, ctx = build_spark_vm(
        system, dram_gb, cfg, device_kind, threads, teraheap_overrides
    )
    dataset = gb(dataset_gb if dataset_gb is not None else cfg.dataset_gb)
    oom = False
    try:
        SPARK_WORKLOADS[workload](ctx, dataset, scale=scale)
    except OutOfMemoryError:
        oom = True
    result = collect_result(
        vm,
        workload,
        system,
        dram_gb,
        heap_gb=vm.config.heap_size / gb(1),
        oom=oom,
    )
    # Fold this cell's resilience counters into the process-wide totals
    # and drop its policy/auditor registrations: the next cell starts
    # with fresh registries but the CLI aggregate stays complete.
    faults_mod.reset_registries()
    return result


# ======================================================================
# Giraph
# ======================================================================
def build_giraph_vm(
    system: str,
    dram_gb: float,
    cfg: GiraphWorkloadConfig,
    device_kind: str = "nvme",
    threads: int = 8,
    teraheap_overrides: Optional[dict] = None,
):
    th_enabled = system == "giraph-th"
    # Scale Table 4's heap/DR2 split to the requested DRAM.
    if th_enabled:
        frac = cfg.th_h1_gb / (cfg.th_h1_gb + cfg.th_dr2_gb)
    else:
        frac = cfg.ooc_heap_gb / (cfg.ooc_heap_gb + cfg.ooc_dr2_gb)
    heap_gb = dram_gb * frac
    dr2_gb = dram_gb - heap_gb
    th_kwargs = dict(
        enabled=th_enabled,
        h2_size=gb(2048),
        region_size=GIRAPH_H2_REGION,
    )
    if teraheap_overrides:
        th_kwargs.update(teraheap_overrides)
    vm_config = VMConfig(
        heap_size=gb(heap_gb),
        collector="ps",
        teraheap=TeraHeapConfig(**th_kwargs),
        mutator_threads=threads,
        page_cache_size=gb(dr2_gb),
    )
    from ..clock import Clock

    h2_device = _make_device(device_kind, Clock()) if th_enabled else None
    vm = JavaVM(vm_config, h2_device=h2_device)
    device = _make_device(device_kind, vm.clock)
    use_hint = True
    if teraheap_overrides and "use_move_hint" in teraheap_overrides:
        use_hint = teraheap_overrides["use_move_hint"]
    conf = GiraphConf(
        mode=GiraphMode.TERAHEAP if th_enabled else GiraphMode.OOC,
        device=device,
        use_move_hint=use_hint,
    )
    return vm, conf


def run_giraph_workload(
    workload: str,
    system: str,
    dram_gb: float,
    cfg: GiraphWorkloadConfig,
    device_kind: str = "nvme",
    threads: int = 8,
    dataset_gb: Optional[float] = None,
    teraheap_overrides: Optional[dict] = None,
    seed: int = 42,
):
    """Run one Giraph experiment cell; returns (result, vm, job)."""
    vm, conf = build_giraph_vm(
        system, dram_gb, cfg, device_kind, threads, teraheap_overrides
    )
    graph = make_giraph_graph(
        gb(dataset_gb if dataset_gb is not None else cfg.dataset_gb),
        seed=seed,
    )
    oom = False
    job = None
    try:
        job = run_giraph(vm, conf, graph, workload)
    except OutOfMemoryError:
        oom = True
    result = collect_result(
        vm,
        workload,
        system,
        dram_gb,
        heap_gb=vm.config.heap_size / gb(1),
        oom=oom,
    )
    faults_mod.reset_registries()
    return result, vm, job
