"""Artifact-style report generation (the paper's Appendix A.6 workflow).

The original artifact runs every experiment, collects CSVs, and renders a
side-by-side report.  This module regenerates every figure/table at a
chosen scale and emits one markdown report plus per-experiment CSVs.

Run:  python -m repro.experiments.report [outdir] [scale]
"""

from __future__ import annotations

import os
import sys
from typing import List

from ..metrics import trace
from . import (
    barrier,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    table5,
)


def _section(lines: List[str], title: str, body: str) -> None:
    lines.append(f"\n## {title}\n")
    lines.append("```")
    lines.append(body.rstrip())
    lines.append("```")


def generate(outdir: str, scale: float = 0.4) -> str:
    """Run everything; write `report.md` + CSVs under ``outdir``."""
    os.makedirs(outdir, exist_ok=True)
    lines: List[str] = [
        "# TeraHeap reproduction report",
        "",
        f"Generated at iteration scale {scale}. Absolute simulated seconds",
        "are synthetic; compare shapes and ratios against the paper.",
    ]

    _section(lines, "Table 5 — H2 metadata per TB",
             table5.format_results(table5.run()))

    _section(lines, "Section 4 — barrier overhead (DaCapo stand-in)",
             barrier.format_result(barrier.run(operations=5000)))

    spark6 = fig06.run_spark(scale=scale)
    _section(lines, "Figure 6 — Spark under fixed DRAM",
             fig06.format_results(spark6))
    giraph6 = fig06.run_giraph()
    _section(lines, "Figure 6 — Giraph under fixed DRAM",
             fig06.format_results(giraph6))

    timelines = fig07.run(scale=scale)
    _section(lines, "Figure 7 — GC timeline (Spark PR)",
             fig07.format_results(timelines))
    for t in timelines:
        trace.write_csv(
            os.path.join(outdir, f"fig07_{t.system}.csv"),
            trace.gc_timeline_csv(t.cycles),
        )

    _section(lines, "Figure 8 — PS vs G1 vs TeraHeap",
             fig08.format_results(fig08.run(scale=scale)))

    _section(lines, "Figure 9a — transfer hint",
             fig09.format_pairs(fig09.run_hint_ablation()))
    _section(lines, "Figure 9b — low threshold",
             fig09.format_pairs(fig09.run_low_threshold_ablation()))

    cdfs = fig10.run()
    _section(lines, "Figure 10 — H2 region liveness",
             fig10.format_results(cdfs))
    for name, series in cdfs.items():
        for cdf in series:
            trace.write_csv(
                os.path.join(
                    outdir, f"fig10_{name}_{cdf.region_size_mb}MB.csv"
                ),
                trace.region_liveness_csv(cdf.liveness),
            )

    _section(
        lines,
        "Figure 11a — H2 minor GC vs card segment size",
        fig11.format_card_sweep(fig11.run_card_segment_sweep()),
    )
    _section(
        lines,
        "Figure 11b — major GC phases (OOC vs TH)",
        fig11.format_phases(fig11.run_major_phase_breakdown()),
    )

    for panel in ("spark-sd", "spark-mo", "panthera"):
        _section(
            lines,
            f"Figure 12 — {panel} vs TeraHeap (NVM)",
            fig12.format_pairs(fig12.run_panel(panel, scale=scale)),
        )

    _section(
        lines,
        "Figure 13a — thread scaling",
        fig13.format_thread_scaling(fig13.run_thread_scaling(scale=scale)),
    )

    report = "\n".join(lines) + "\n"
    path = os.path.join(outdir, "report.md")
    with open(path, "w") as f:
        f.write(report)
    return path


def main(argv=None) -> int:  # pragma: no cover - CLI
    argv = argv if argv is not None else sys.argv[1:]
    outdir = argv[0] if argv else "report"
    scale = float(argv[1]) if len(argv) > 1 else 0.4
    path = generate(outdir, scale)
    print(f"report written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
