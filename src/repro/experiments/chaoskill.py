"""Chaos-kill matrix: crash at every safepoint, recover, prove it.

The crash-consistency claim is only as good as its worst safepoint, so
this experiment kills the simulated process at *each* named crash point
(mid promotion-buffer flush, mid coalesced h2 flush, mid region-header
batch, between major-GC copy batches, mid epoch commit, mid msync) under
each writeback policy, then:

1. lifts the durable image out of the dead VM,
2. recovers it into a fresh VM (``JavaVM.recover_h2``),
3. asserts a full :class:`~repro.heap.audit.HeapAuditor` pass is clean,
4. resumes the workload from the committed checkpoint note, and
5. reconciles the final H2 population against a crash-free baseline:
   every label matches exactly unless recovery quarantined (part of) it,
   and nothing appears that the baseline does not have.

Every cell additionally runs twice: the durable-image digest at crash
time, the recovery-report digest, and the final population must be
byte-identical across the two runs — the determinism acceptance check.

The workload is a phased group lifecycle: each phase creates a labelled
object group, moves it to H2, drops the group created ``LIVE_WINDOW``
phases ago, dirties one committed page (so msync has work), and runs a
minor plus a major GC.  The checkpoint note names the phase, so recovery
knows exactly where to resume.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import TeraHeapConfig, VMConfig
from ..devices.durability import image_of
from ..errors import InvariantViolation, SimulatedCrash, UnrecoverableCrash
from ..faults.plan import FaultConfig
from ..runtime import JavaVM
from ..units import KiB, gb

#: safepoints swept, each with the visit count that fires the kill —
#: chosen so at least one durable epoch usually precedes the crash
CRASH_POINTS: Tuple[Tuple[str, int], ...] = (
    ("promotion_flush", 4),
    ("h2_flush", 2),
    ("region_metadata_update", 2),
    ("major_compact", 5),
    ("epoch_commit", 2),
    ("msync", 2),
)
POLICIES: Tuple[str, ...] = ("commit", "flush")

#: workload shape (sizes are simulated bytes — the repo's scaled units)
PHASES = 6
LIVE_WINDOW = 3
MEMBERS = 12
REGION_SIZE = 64 * KiB
PROMOTION_BUFFER = 32 * KiB
WORKLOAD_SEED = 11
FAULT_SEED = 1302


def make_vm(policy: str, fault: Optional[FaultConfig] = None) -> JavaVM:
    return JavaVM(
        VMConfig(
            heap_size=gb(8),
            teraheap=TeraHeapConfig(
                enabled=True,
                h2_size=gb(64),
                region_size=REGION_SIZE,
                promotion_buffer_size=PROMOTION_BUFFER,
                writeback_policy=policy,
            ),
            page_cache_size=gb(8),
            faults=fault,
            audit="full",
        )
    )


class Workload:
    """The phased group lifecycle, resumable at any phase boundary.

    Phase content is a pure function of ``(seed, phase)``, so a run
    resumed on a fresh VM after recovery replays the exact phases the
    crashed process never completed.  Group handles recovered from the
    durable image surface as ``vm.h2_recovery_anchors`` rather than
    live allocation handles; drops and touches look in both places.
    """

    def __init__(self, vm: JavaVM, seed: int):
        self.vm = vm
        self.seed = seed
        self.table = vm.roots.add(vm.allocate(16 * KiB, name="chaos-table"))
        self.handles: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def has(self, label: str) -> bool:
        return label in self.handles or label in self.vm.h2_recovery_anchors

    def drop(self, label: str) -> None:
        """Unroot a group so the next major GC reclaims its regions."""
        key = self.handles.pop(label, None)
        if key is not None:
            self.vm.write_ref(self.table, None, remove=key)
        anchor = self.vm.h2_recovery_anchors.pop(label, None)
        if anchor is not None:
            self.vm.roots.remove(anchor)

    def touch(self, label: str) -> None:
        """Mutator store into a committed H2 page (dirties it)."""
        obj = self.handles.get(label)
        if obj is None:
            anchor = self.vm.h2_recovery_anchors.get(label)
            if anchor is None or not anchor.refs:
                return
            obj = anchor.refs[0]
        if obj.in_h2:
            self.vm.write_ref(obj, None)

    # ------------------------------------------------------------------
    def run_phase(self, i: int) -> None:
        vm = self.vm
        rng = Random(self.seed * 1_000_003 + i)
        label = f"g{i}"
        if i >= LIVE_WINDOW:
            self.drop(f"g{i - LIVE_WINDOW}")
        if not self.has(label):
            key = vm.allocate(4 * KiB, name=f"key-{label}")
            vm.write_ref(self.table, key)
            for j in range(MEMBERS):
                size = (8 + rng.randrange(8)) * KiB
                member = vm.allocate(size, name=f"{label}-m{j}")
                vm.write_ref(key, member)
            vm.h2_tag_root(key, label)
            vm.h2_move(label)
            self.handles[label] = key
        for _ in range(8):
            vm.allocate(16 * KiB, name="chaff")
        if i >= 1:
            self.touch(f"g{i - 1}")
        vm.minor_gc()
        vm.h2.checkpoint_note = f"phase:{i}"
        vm.major_gc()


def final_report(vm: JavaVM) -> List[Tuple[str, int, int]]:
    """The H2 population as ``(label, objects, bytes)``, sorted.

    Deliberately address- and oid-free: a recovered-and-resumed run
    must reproduce the crash-free population, not its object identities.
    """
    by_label: Dict[str, List[int]] = {}
    for region in vm.h2.regions.values():
        if region.is_empty:
            continue
        stats = by_label.setdefault(region.label or "", [0, 0])
        stats[0] += len(region.objects)
        stats[1] += region.used
    return sorted((lbl, c, b) for lbl, (c, b) in by_label.items())


def resume_phase(note: str) -> int:
    """First phase the resumed run must execute, from the commit note."""
    if note.startswith("phase:"):
        return int(note.split(":", 1)[1]) + 1
    return 0


# ======================================================================
# One matrix cell: crash, recover, resume
# ======================================================================
@dataclass
class CellResult:
    point: str
    policy: str
    crashed: bool = False
    safepoint: str = ""
    committed_note: str = ""
    resumed_from: int = -1
    regions_recovered: int = 0
    regions_quarantined: int = 0
    quarantined_labels: List[str] = field(default_factory=list)
    image_digest: str = ""
    report_digest: str = ""
    final: List[Tuple[str, int, int]] = field(default_factory=list)
    error: str = ""

    def row(self) -> str:
        outcome = self.error.splitlines()[0] if self.error else "ok"
        return (
            f"{self.point:24s} {self.policy:7s} "
            f"{'crash' if self.crashed else 'ran':6s} "
            f"note={self.committed_note or '-':10s} "
            f"resume={self.resumed_from:2d} "
            f"rec={self.regions_recovered:2d} "
            f"quar={self.regions_quarantined:2d} "
            f"{outcome}"
        )


def run_cell(
    point: str,
    crash_after: int,
    policy: str,
    phases: int = PHASES,
    workload_seed: int = WORKLOAD_SEED,
    fault_seed: int = FAULT_SEED,
) -> CellResult:
    result = CellResult(point=point, policy=policy)
    fault = FaultConfig(
        seed=workload_seed,
        fault_seed=fault_seed,
        crash_point=point,
        crash_after=crash_after,
    )
    vm = make_vm(policy, fault)
    workload = Workload(vm, workload_seed)
    try:
        for i in range(phases):
            workload.run_phase(i)
    except SimulatedCrash as crash:
        result.crashed = True
        result.safepoint = crash.safepoint
        image = image_of(vm.h2.mapping)
        result.image_digest = image.digest()
        fresh = make_vm(policy)
        try:
            report = fresh.recover_h2(image)
        except UnrecoverableCrash as exc:
            result.error = f"unrecoverable: {exc}"
            return result
        result.report_digest = report.digest()
        result.committed_note = report.checkpoint_note
        result.regions_recovered = report.regions_recovered
        result.regions_quarantined = report.regions_quarantined
        labels = set()
        for index in report.quarantined:
            for entry in image.journal_entries(index):
                labels.add(getattr(entry, "label", ""))
        result.quarantined_labels = sorted(labels)
        try:
            fresh.auditor.audit("recovery", fresh.collector.mark_epoch)
        except InvariantViolation as exc:
            result.error = f"post-recovery audit failed: {exc}"
            return result
        start = resume_phase(report.checkpoint_note)
        result.resumed_from = start
        resumed = Workload(fresh, workload_seed)
        for i in range(start, phases):
            resumed.run_phase(i)
        vm = fresh
    result.final = final_report(vm)
    return result


def run_baseline(
    policy: str, phases: int = PHASES, workload_seed: int = WORKLOAD_SEED
) -> List[Tuple[str, int, int]]:
    vm = make_vm(policy)
    workload = Workload(vm, workload_seed)
    for i in range(phases):
        workload.run_phase(i)
    return final_report(vm)


def reconcile(
    result: CellResult, baseline: List[Tuple[str, int, int]]
) -> List[str]:
    """No lost non-quarantined H2 objects, nothing invented.

    Every baseline label must match exactly unless recovery quarantined
    regions of that label (a quarantined label may come back smaller or
    not at all — those objects are *reported* lost, not silently lost).
    """
    failures: List[str] = []
    base = {lbl: (c, b) for lbl, c, b in baseline}
    got = {lbl: (c, b) for lbl, c, b in result.final}
    lost = set(result.quarantined_labels)
    for lbl, expected in base.items():
        actual = got.get(lbl)
        if actual == expected or lbl in lost:
            continue
        failures.append(
            f"{result.point}/{result.policy}: label {lbl} expected "
            f"{expected}, got {actual}"
        )
    for lbl in got:
        if lbl not in base:
            failures.append(
                f"{result.point}/{result.policy}: label {lbl} absent "
                "from the crash-free baseline"
            )
    return failures


# ======================================================================
# The matrix
# ======================================================================
def run_matrix(
    phases: int = PHASES,
    policies: Sequence[str] = POLICIES,
    points: Sequence[Tuple[str, int]] = CRASH_POINTS,
    workload_seed: int = WORKLOAD_SEED,
    fault_seed: int = FAULT_SEED,
    determinism: bool = True,
) -> Tuple[List[CellResult], List[str]]:
    """Sweep crash points x policies; returns (cells, failure messages)."""
    results: List[CellResult] = []
    failures: List[str] = []
    for policy in policies:
        baseline = run_baseline(policy, phases, workload_seed)
        for point, crash_after in points:
            cell = run_cell(
                point, crash_after, policy, phases, workload_seed, fault_seed
            )
            results.append(cell)
            if not cell.crashed:
                failures.append(
                    f"{point}/{policy}: crash never fired "
                    f"(crash_after={crash_after})"
                )
                continue
            if cell.error:
                failures.append(f"{point}/{policy}: {cell.error}")
                continue
            failures.extend(reconcile(cell, baseline))
            if determinism:
                rerun = run_cell(
                    point,
                    crash_after,
                    policy,
                    phases,
                    workload_seed,
                    fault_seed,
                )
                if rerun.image_digest != cell.image_digest:
                    failures.append(
                        f"{point}/{policy}: durable-image digest differs "
                        "across reruns"
                    )
                if rerun.report_digest != cell.report_digest:
                    failures.append(
                        f"{point}/{policy}: recovery-report digest differs "
                        "across reruns"
                    )
                if rerun.final != cell.final:
                    failures.append(
                        f"{point}/{policy}: final population differs "
                        "across reruns"
                    )
    return results, failures


def format_matrix(
    results: List[CellResult], failures: List[str]
) -> str:
    lines = [
        "crash_point              policy  fate   committed       "
        "resume rec quar outcome"
    ]
    lines.extend(cell.row() for cell in results)
    if failures:
        lines.append("")
        lines.append(f"{len(failures)} failure(s):")
        lines.extend(f"  {msg}" for msg in failures)
    else:
        lines.append("")
        lines.append(
            "all cells recovered auditor-clean and reconciled with the "
            "crash-free baseline"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.chaoskill",
        description="crash/recover/verify matrix over H2 safepoints",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller matrix (fewer phases, 'commit' policy only)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any reconciliation or determinism failure",
    )
    parser.add_argument("--phases", type=int, default=None)
    parser.add_argument("--workload-seed", type=int, default=WORKLOAD_SEED)
    parser.add_argument("--fault-seed", type=int, default=FAULT_SEED)
    args = parser.parse_args(argv)

    policies: Sequence[str] = ("commit",) if args.smoke else POLICIES
    phases = args.phases or (4 if args.smoke else PHASES)
    results, failures = run_matrix(
        phases=phases,
        policies=policies,
        workload_seed=args.workload_seed,
        fault_seed=args.fault_seed,
    )
    print(format_matrix(results, failures))
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
