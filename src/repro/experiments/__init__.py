"""Experiment drivers: one module per paper figure/table.

Every driver exposes ``run(scale=1.0)`` returning a structured result the
benchmarks print, with ``scale`` shrinking iteration counts for quick
runs.  ``configs`` encodes Tables 1-4; ``runner`` builds configured VMs
and executes workloads under each system.
"""

from . import configs, runner

__all__ = ["configs", "runner"]
