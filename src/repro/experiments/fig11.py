"""Figure 11: GC overheads of the TeraHeap mechanisms (Giraph).

(a) Minor-GC time for H2 card segment sizes 1/4/8/16 KB normalised to
512 B segments: bigger segments shrink the card table (less checking) but
make each dirty-segment scan costlier; the paper measures a 64% average
reduction at 16 KB.

(b) The four major-GC phases (marking / precompact / adjust / compact)
under Giraph-OOC vs TeraHeap: TeraHeap improves every phase (up to 75%)
by never scanning H2, but its compaction phase carries the device I/O of
object transfer (37-44% of major GC).
"""

from __future__ import annotations

from typing import Dict, List

from ..units import KiB
from .configs import GIRAPH_WORKLOADS_TABLE4
from .runner import run_giraph_workload

CARD_SEGMENT_SIZES = [512, 1 * KiB, 4 * KiB, 8 * KiB, 16 * KiB]


def run_card_segment_sweep(
    workloads: List[str] = None,
    segment_sizes: List[int] = None,
) -> Dict[str, Dict[int, float]]:
    """Panel (a): minor-GC seconds per workload per card segment size."""
    out: Dict[str, Dict[int, float]] = {}
    for name in workloads or list(GIRAPH_WORKLOADS_TABLE4):
        cfg = GIRAPH_WORKLOADS_TABLE4[name]
        per_size = {}
        for seg in segment_sizes or CARD_SEGMENT_SIZES:
            result, vm, _ = run_giraph_workload(
                name,
                "giraph-th",
                cfg.drams[-1],
                cfg,
                teraheap_overrides={"card_segment_size": seg},
            )
            # The paper plots the *H2 component* of minor GC: the card
            # scan + backward-reference maintenance.
            per_size[seg] = vm.clock.sub_total("h2_minor_scan")
        out[name] = per_size
    return out


def run_major_phase_breakdown(
    workloads: List[str] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Panel (b): per-phase major GC seconds, OOC vs TeraHeap."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workloads or list(GIRAPH_WORKLOADS_TABLE4):
        cfg = GIRAPH_WORKLOADS_TABLE4[name]
        per_system = {}
        for system in ("giraph-ooc", "giraph-th"):
            _, vm, _ = run_giraph_workload(
                name, system, cfg.drams[-1], cfg
            )
            per_system[system] = vm.collector.stats.phase_totals()
        out[name] = per_system
    return out


def format_card_sweep(results: Dict[str, Dict[int, float]]) -> str:
    lines = []
    for name, per_size in results.items():
        base = per_size.get(512) or next(iter(per_size.values()))
        row = "  ".join(
            f"{seg//1024 or 0.5}KB={v / base:5.2f}" if base else "n/a"
            for seg, v in sorted(per_size.items())
        )
        lines.append(f"{name}: {row}")
    return "\n".join(lines)


def format_phases(results) -> str:
    lines = []
    for name, per_system in results.items():
        for system, phases in per_system.items():
            parts = "  ".join(f"{p}={v:8.1f}s" for p, v in phases.items())
            lines.append(f"{name} {system}: {parts}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_card_sweep(run_card_segment_sweep(workloads=["PR"])))
    print(format_phases(run_major_phase_breakdown(workloads=["PR"])))
