"""Figure 10 + Table 5: H2 storage-capacity consumption.

Figure 10 plots, over all allocated H2 regions (reclaimed during the run
plus active at shutdown), the CDFs of (top) the fraction of live objects
per region and (bottom) the fraction of region space occupied by live
objects, for 16 MB and 256 MB regions.  The paper's findings: PR/CDLP/WCC
reclaim ~90% of their regions (message stores die wholesale); BFS/SSSP
reclaim far fewer (long-lived edges pin regions) and show regions that are
mostly-live by object count but sparse by bytes (large dead arrays).

The liveness measurement itself is offline analysis — TeraHeap never scans
H2 — so the traversal here charges no simulated time, exactly like the
authors' external measurement harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..runtime import JavaVM
from ..teraheap.regions import RegionLiveness
from ..units import mb
from .configs import GIRAPH_WORKLOADS_TABLE4
from .runner import run_giraph_workload


def compute_h2_liveness(vm: JavaVM) -> List[RegionLiveness]:
    """Offline reachability over H1+H2, then per-region statistics."""
    if vm.h2 is None:
        return []
    epoch = vm.collector.next_epoch()
    stack = [o for o in vm.roots]
    while stack:
        obj = stack.pop()
        if obj.mark_epoch >= epoch or obj.space.value == "freed":
            continue
        obj.mark_epoch = epoch
        stack.extend(
            r for r in obj.refs if r.mark_epoch < epoch
        )
    return vm.h2.finalize_liveness_stats(epoch)


@dataclass
class RegionCDF:
    """One (workload, region size) Figure 10 series."""

    workload: str
    region_size_mb: int
    liveness: List[RegionLiveness] = field(default_factory=list)

    @property
    def allocated_regions(self) -> int:
        return len(self.liveness)

    @property
    def reclaimed_fraction(self) -> float:
        if not self.liveness:
            return 0.0
        dead = sum(1 for lv in self.liveness if lv.live_objects == 0)
        return dead / len(self.liveness)

    def live_object_fractions(self) -> List[float]:
        return sorted(lv.live_object_fraction for lv in self.liveness)

    def live_space_fractions(self) -> List[float]:
        return sorted(lv.live_space_fraction for lv in self.liveness)

    def mean_unused_fraction(self) -> float:
        if not self.liveness:
            return 0.0
        return sum(lv.unused_fraction for lv in self.liveness) / len(
            self.liveness
        )


def run(
    workloads: List[str] = None,
    region_sizes_mb: List[int] = (16, 256),
) -> Dict[str, List[RegionCDF]]:
    out: Dict[str, List[RegionCDF]] = {}
    for name in workloads or list(GIRAPH_WORKLOADS_TABLE4):
        cfg = GIRAPH_WORKLOADS_TABLE4[name]
        series = []
        for size_mb in region_sizes_mb:
            _, vm, _ = run_giraph_workload(
                name,
                "giraph-th",
                cfg.drams[-1],
                cfg,
                teraheap_overrides={"region_size": mb(size_mb)},
            )
            series.append(
                RegionCDF(
                    workload=name,
                    region_size_mb=size_mb,
                    liveness=compute_h2_liveness(vm),
                )
            )
        out[name] = series
    return out


def format_results(results: Dict[str, List[RegionCDF]]) -> str:
    lines = []
    for name, series in results.items():
        for cdf in series:
            lines.append(
                f"{name} @{cdf.region_size_mb}MB regions: "
                f"allocated={cdf.allocated_regions} "
                f"reclaimed={cdf.reclaimed_fraction:.0%} "
                f"unused={cdf.mean_unused_fraction():.1%}"
            )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_results(run(workloads=["PR", "BFS"])))
