"""Command-line entry point: run paper experiments from the shell.

Usage::

    python -m repro list
    python -m repro table5
    python -m repro barrier
    python -m repro fig06 --workloads PR LR --scale 0.5
    python -m repro fig07 --scale 0.5
    python -m repro fig08 --workloads SVM
    python -m repro fig09a
    python -m repro fig09b
    python -m repro fig10 --workloads PR BFS
    python -m repro fig11a
    python -m repro fig11b
    python -m repro fig12 --panel spark-mo
    python -m repro fig13a
    python -m repro gcscale --scale 0.4
    python -m repro chaoskill --scale 0.5
    python -m repro phoenix --scale 0.5
"""

from __future__ import annotations

import argparse
import sys

from . import faults as faults_mod
from .faults.plan import FaultConfig
from .experiments import (
    barrier,
    bench,
    brownout,
    chaoskill,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    gc_scaling,
    phoenix,
    serverscale,
    streamscale,
    table5,
)

EXPERIMENTS = [
    "table5",
    "barrier",
    "fig06",
    "fig07",
    "fig08",
    "fig09a",
    "fig09b",
    "fig10",
    "fig11a",
    "fig11b",
    "fig12",
    "fig13a",
    "fig13b",
    "gcscale",
    "chaoskill",
    "brownout",
    "phoenix",
    "streamscale",
    "serverscale",
    "bench",
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="TeraHeap reproduction experiment runner"
    )
    parser.add_argument("experiment", choices=EXPERIMENTS + ["list"])
    parser.add_argument(
        "--workloads", nargs="*", default=None, help="subset of workloads"
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="iteration-count scale"
    )
    parser.add_argument(
        "--panel",
        default="spark-sd",
        choices=["spark-sd", "spark-mo", "panthera"],
        help="figure 12 panel",
    )
    parser.add_argument(
        "--faults",
        type=int,
        default=None,
        metavar="SEED",
        help="inject deterministic H2 faults with this seed",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.01,
        help="per-operation fault probability (with --faults)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="decouple the fault/crash schedule from the workload seed "
        "(default: derived from --faults)",
    )
    parser.add_argument(
        "--audit",
        choices=["cheap", "full"],
        default=None,
        help="verify heap invariants after every GC cycle",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("\n".join(EXPERIMENTS))
        return 0

    if args.faults is not None:
        rate = args.fault_rate
        faults_mod.set_default_fault_config(
            FaultConfig(
                seed=args.faults,
                fault_seed=args.fault_seed,
                read_error_rate=rate,
                write_error_rate=rate,
                latency_spike_rate=rate,
                sigbus_rate=rate / 4,
                device_full_rate=rate / 10,
            )
        )
    if args.audit is not None:
        faults_mod.set_default_audit_level(args.audit)
    status = 0
    if args.experiment == "table5":
        print(table5.format_results(table5.run()))
    elif args.experiment == "barrier":
        print(barrier.format_result(barrier.run()))
    elif args.experiment == "fig06":
        print(
            fig06.format_results(
                fig06.run_spark(workloads=args.workloads, scale=args.scale)
            )
        )
        if not args.workloads:
            print(fig06.format_results(fig06.run_giraph()))
    elif args.experiment == "fig07":
        print(fig07.format_results(fig07.run(scale=args.scale)))
    elif args.experiment == "fig08":
        print(
            fig08.format_results(
                fig08.run(workloads=args.workloads, scale=args.scale)
            )
        )
    elif args.experiment == "fig09a":
        print(fig09.format_pairs(fig09.run_hint_ablation(args.workloads)))
    elif args.experiment == "fig09b":
        print(fig09.format_pairs(fig09.run_low_threshold_ablation()))
    elif args.experiment == "fig10":
        print(fig10.format_results(fig10.run(workloads=args.workloads)))
    elif args.experiment == "fig11a":
        print(
            fig11.format_card_sweep(
                fig11.run_card_segment_sweep(workloads=args.workloads)
            )
        )
    elif args.experiment == "fig11b":
        print(
            fig11.format_phases(
                fig11.run_major_phase_breakdown(workloads=args.workloads)
            )
        )
    elif args.experiment == "fig12":
        print(
            fig12.format_pairs(
                fig12.run_panel(
                    args.panel, workloads=args.workloads, scale=args.scale
                )
            )
        )
    elif args.experiment == "fig13a":
        print(
            fig13.format_thread_scaling(
                fig13.run_thread_scaling(scale=args.scale)
            )
        )
    elif args.experiment == "gcscale":
        # The module's own CLI prints the full report: both steal
        # policies, the TeraHeap scan-cap series, and the adaptive
        # batch-sizing comparison.
        status = gc_scaling.main(
            ["--batches", str(max(1, int(60 * args.scale)))]
        )
    elif args.experiment == "chaoskill":
        chaos_args = ["--check"]
        if args.scale < 1.0:
            chaos_args.append("--smoke")
        if args.fault_seed is not None:
            chaos_args.extend(["--fault-seed", str(args.fault_seed)])
        status = chaoskill.main(chaos_args)
    elif args.experiment == "brownout":
        brownout_args = ["--check", "--check-determinism"]
        if args.scale < 1.0:
            brownout_args.append("--smoke")
        status = brownout.main(brownout_args)
    elif args.experiment == "phoenix":
        phoenix_args = ["--check", "--check-determinism"]
        if args.scale < 1.0:
            phoenix_args.append("--smoke")
        if args.fault_seed is not None:
            phoenix_args.extend(["--fault-seed", str(args.fault_seed)])
        status = phoenix.main(phoenix_args)
    elif args.experiment == "streamscale":
        stream_args = ["--check", "--check-determinism"]
        if args.scale < 1.0:
            stream_args.append("--smoke")
        status = streamscale.main(stream_args)
    elif args.experiment == "serverscale":
        server_args = ["--check", "--check-determinism"]
        if args.scale < 1.0:
            server_args.append("--smoke")
        status = serverscale.main(server_args)
    elif args.experiment == "bench":
        # The pinned perf-trajectory matrix; writes BENCH_0007.json.
        status = bench.main([])
    elif args.experiment == "fig13b":
        results = fig13.run_dataset_scaling(scale=args.scale)
        for workload, per_system in results.items():
            for system, per_ds in per_system.items():
                row = "  ".join(
                    f"{ds}GB={'OOM' if r.oom else f'{r.total:.0f}s'}"
                    for ds, r in sorted(per_ds.items())
                )
                print(f"{workload} {system}: {row}")

    if args.faults is not None or args.audit is not None:
        summary = faults_mod.resilience_summary()
        print(
            "resilience: "
            f"faults_injected={summary['faults_injected']:.0f} "
            f"ops_retried={summary['ops_retried']:.0f} "
            f"retry_exhaustions={summary['retry_exhaustions']:.0f} "
            f"degradations={summary['degradations']:.0f} "
            f"crashes={summary['crashes']:.0f} "
            f"recoveries={summary['recoveries']:.0f} "
            f"audits_run={summary['audits_run']:.0f} "
            f"invariant_violations={summary['invariant_violations']:.0f}"
        )
        faults_mod.reset_defaults()
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
