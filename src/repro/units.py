"""Size and scale units used throughout the simulator.

The simulator accounts for space in *simulated bytes*.  Workload and heap
sizes in the paper are quoted in GB; to keep simulated object populations
tractable (tens of thousands of objects rather than billions) the experiment
drivers scale a "paper GB" down to :data:`GB` = 1 MiB of simulated bytes.
All ratios (dataset/heap, live/heap, region/segment) are preserved, which is
what the GC and I/O dynamics depend on.
"""

from __future__ import annotations

# Real byte units (used for device pages, card segments, object sizes).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# One "paper gigabyte" at simulation scale.  Heap sizes, DRAM sizes and
# dataset sizes quoted from the paper's tables are multiplied by this.
SCALE = 1.0 / 1024.0
GB = int(GiB * SCALE)  # = 1 MiB of simulated bytes
MB = int(MiB * SCALE)  # = 1 KiB of simulated bytes
TB = 1024 * GB


def gb(n: float) -> int:
    """Convert a paper-scale GB figure to simulated bytes."""
    return int(n * GB)


def mb(n: float) -> int:
    """Convert a paper-scale MB figure to simulated bytes."""
    return int(n * MB)


def fmt_bytes(n: float) -> str:
    """Render a simulated byte count using paper-scale units."""
    if n >= TB:
        return f"{n / TB:.1f} TB"
    if n >= GB:
        return f"{n / GB:.1f} GB"
    if n >= MB:
        return f"{n / MB:.1f} MB"
    return f"{int(n)} B"


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to the previous multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value // alignment * alignment
