"""Storage and memory device models.

The paper evaluates TeraHeap with H2 backed by an NVMe SSD (block
addressable, page-granularity transfers) and by Intel Optane NVM (byte
addressable, higher latency than DRAM).  This package models both, plus
DRAM, a kernel page cache, and memory-mapped file regions with page faults
and optional huge pages (HugeMap, Section 6).
"""

from .base import AccessPattern, Device, DeviceTraffic
from .dram import DRAM
from .durability import DurableImage, image_of
from .mmap import MappedFile
from .nvm import NVM, NVMMode
from .nvme import NVMeSSD
from .page_cache import PageCache

__all__ = [
    "AccessPattern",
    "Device",
    "DeviceTraffic",
    "DRAM",
    "DurableImage",
    "image_of",
    "MappedFile",
    "NVM",
    "NVMMode",
    "NVMeSSD",
    "PageCache",
]
