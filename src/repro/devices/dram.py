"""DRAM device model: byte-addressable, low latency, pattern-insensitive."""

from __future__ import annotations

from ..clock import Clock
from ..units import GB, MiB
from .base import Device


class DRAM(Device):
    """DDR4 DRAM as in the paper's servers (Table 1).

    Bandwidths are expressed at simulation scale (see ``units.SCALE``):
    the absolute numbers are synthetic but the DRAM : NVM : NVMe ratios
    match published measurements (Izraelevitz et al., Yang et al.).
    """

    def __init__(self, clock: Clock, capacity: int = 256 * GB, name: str = "dram"):
        super().__init__(
            name=name,
            capacity=capacity,
            read_latency=100e-9,
            write_latency=100e-9,
            read_bw=10.0 * MiB,
            write_bw=8.0 * MiB,
            page_size=1,
            random_penalty=1.0,
            clock=clock,
        )
