"""Kernel page cache model: LRU cache of device pages in DR2 DRAM.

The paper's TeraHeap configurations reserve part of DRAM (DR2) for the
kernel page cache that backs H2's memory mapping (Section 6).  Workloads
with locality hit the cache; streaming workloads (Spark ML, Section 7.1)
miss continuously and run into the device-bandwidth ceiling.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Tuple

from .base import AccessPattern, Device


class PageCache:
    """LRU page cache in front of a block device.

    Pages are identified by integer page numbers.  Dirty pages are written
    back to the device on eviction (or via :meth:`flush`), modelling the
    kernel writeback path that turns scattered stores into device write
    traffic.
    """

    def __init__(self, device: Device, capacity: int, page_size: int = 4096):
        if capacity < page_size:
            raise ValueError("page cache smaller than one page")
        self.device = device
        self.page_size = page_size
        self.max_pages = capacity // page_size
        #: page number -> dirty flag, in LRU order (oldest first)
        self._pages: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def _insert(self, page: int, dirty: bool) -> None:
        self._pages[page] = dirty
        self._pages.move_to_end(page)
        while len(self._pages) > self.max_pages:
            evicted, was_dirty = self._pages.popitem(last=False)
            self.evictions += 1
            if was_dirty:
                self.writebacks += 1
                self.device.write(self.page_size, AccessPattern.RANDOM)

    def access(
        self,
        pages: Iterable[int],
        write: bool = False,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> Tuple[int, int]:
        """Touch ``pages``; fetch misses from the device.

        Returns ``(hits, misses)``.  A write marks pages dirty; the write
        reaches the device later via writeback, not synchronously — which
        is why batched sequential writes (promotion buffers) are so much
        cheaper than random read-modify-writes.
        """
        hits = misses = 0
        miss_pages = []
        for page in pages:
            if page in self._pages:
                hits += 1
                self._pages.move_to_end(page)
                if write:
                    self._pages[page] = True
            else:
                misses += 1
                miss_pages.append(page)
        if miss_pages:
            # One request per contiguous run of missing pages.
            runs = _count_runs(miss_pages)
            self.device.read(
                len(miss_pages) * self.page_size, pattern, requests=runs
            )
            for page in miss_pages:
                self._insert(page, dirty=write)
        self.hits += hits
        self.misses += misses
        return hits, misses

    def write_through(self, pages: Iterable[int]) -> int:
        """Write pages straight to the device (explicit async I/O path).

        TeraHeap's promotion buffers bypass the fault path with explicit
        batched writes (Section 3.2); the pages also land in the cache
        clean, so an immediate read back hits DRAM.
        """
        pages = list(pages)
        if not pages:
            return 0
        runs = _count_runs(pages)
        self.device.write(len(pages) * self.page_size, requests=runs)
        for page in pages:
            self._insert(page, dirty=False)
        return len(pages)

    def invalidate(self, pages: Iterable[int]) -> None:
        """Drop pages without writeback (freed H2 regions)."""
        for page in pages:
            self._pages.pop(page, None)

    def flush(self) -> int:
        """Write back all dirty pages; returns the number written."""
        dirty = [p for p, d in self._pages.items() if d]
        if dirty:
            runs = _count_runs(sorted(dirty))
            self.device.write(len(dirty) * self.page_size, requests=runs)
            for page in dirty:
                self._pages[page] = False
            self.writebacks += len(dirty)
        return len(dirty)


def _count_runs(pages) -> int:
    """Number of maximal contiguous runs in a sorted page list."""
    runs = 0
    prev = None
    for page in pages:
        if prev is None or page != prev + 1:
            runs += 1
        prev = page
    return max(runs, 1)
