"""Kernel page cache model: LRU cache of device pages in DR2 DRAM.

The paper's TeraHeap configurations reserve part of DRAM (DR2) for the
kernel page cache that backs H2's memory mapping (Section 6).  Workloads
with locality hit the cache; streaming workloads (Spark ML, Section 7.1)
miss continuously and run into the device-bandwidth ceiling.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Tuple

from ..errors import SimulatedCrash
from .base import AccessPattern, Device
from .durability import DurableImage


class PageCache:
    """LRU page cache in front of a block device.

    Pages are identified by integer page numbers.  Dirty pages are written
    back to the device on eviction (or via :meth:`flush`), modelling the
    kernel writeback path that turns scattered stores into device write
    traffic.

    Every write that reaches the device also lands in the
    :class:`~repro.devices.durability.DurableImage` — the device-side
    truth that survives a simulated kill.  Dirty pages in the cache are
    *not* durable until writeback.  When a :class:`FaultPlan` with crash
    scheduling is attached, batch writes consult it at named safepoints:
    a crash lands a seeded prefix of the batch, tears the page at the
    cut, and raises :class:`SimulatedCrash`.
    """

    def __init__(
        self,
        device: Device,
        capacity: int,
        page_size: int = 4096,
        fault_plan=None,
    ):
        if capacity < page_size:
            raise ValueError("page cache smaller than one page")
        self.device = device
        self.page_size = page_size
        self.max_pages = capacity // page_size
        #: page number -> dirty flag, in LRU order (oldest first)
        self._pages: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        #: device-side state that survives a simulated process kill
        self.durable_image = DurableImage(page_size)
        #: optional FaultPlan consulted at crash safepoints
        self.fault_plan = fault_plan
        #: optional ResilienceLog that crash events are recorded into
        self.resilience_log = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def _evict_over_limit(self) -> None:
        while len(self._pages) > self.max_pages:
            evicted, was_dirty = self._pages.popitem(last=False)
            self.evictions += 1
            if was_dirty:
                self.writebacks += 1
                self.device.write(self.page_size, AccessPattern.RANDOM)
                # A single-page eviction writeback is atomic at device
                # page granularity: it lands whole or not at all, so it
                # commits without a crash check.
                self.durable_image.commit((evicted,))

    def _insert(self, page: int, dirty: bool) -> None:
        self._pages[page] = dirty
        self._pages.move_to_end(page)
        self._evict_over_limit()

    def resize(self, capacity: int) -> int:
        """Re-carve this cache to ``capacity`` bytes; returns new max pages.

        The server layer's arbiter repartitions one box-wide DR2 budget
        across co-located tenants each epoch; shrinking evicts down to
        the new limit immediately (LRU order, dirty pages written back),
        growing just raises the ceiling.  The durable image is untouched
        — quota moves never cost a tenant its crash-recoverable state.
        """
        if capacity < self.page_size:
            raise ValueError("page cache smaller than one page")
        self.max_pages = capacity // self.page_size
        self._evict_over_limit()
        return self.max_pages

    # ------------------------------------------------------------------
    def _crash_cut(self, safepoint: str, npages: int):
        """Consult the fault plan for a kill at this batch-write safepoint."""
        if self.fault_plan is None:
            return None
        return self.fault_plan.crash_batch_cut(safepoint, npages)

    def _crash(self, safepoint: str, pages: List[int], cut: int) -> None:
        """Die mid-batch: the first ``cut`` pages landed, the page at the
        cut is torn, the rest never reached the device.  The device is
        charged for what it actually absorbed before the kill."""
        image = self.durable_image
        if cut > 0:
            runs = _count_runs(pages[:cut])
            self.device.write(cut * self.page_size, requests=runs)
            image.commit(pages[:cut])
        if cut < len(pages):
            # The torn page costs a device write too — it was in flight.
            self.device.write(self.page_size, AccessPattern.RANDOM)
            image.tear(pages[cut])
        image.drop_staged()
        op_index = self.fault_plan.op_index if self.fault_plan else -1
        if self.resilience_log is not None:
            self.resilience_log.record_crash(
                self.device.clock.now, safepoint, f"cut={cut}/{len(pages)}"
            )
        raise SimulatedCrash(
            f"simulated kill at safepoint {safepoint!r} "
            f"(cut={cut}/{len(pages)} pages landed)",
            safepoint=safepoint,
            op_index=op_index,
        )

    def access(
        self,
        pages: Iterable[int],
        write: bool = False,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> Tuple[int, int]:
        """Touch ``pages``; fetch misses from the device.

        Returns ``(hits, misses)``.  A write marks pages dirty; the write
        reaches the device later via writeback, not synchronously — which
        is why batched sequential writes (promotion buffers) are so much
        cheaper than random read-modify-writes.
        """
        hits = misses = 0
        miss_pages = []
        for page in pages:
            if page in self._pages:
                hits += 1
                self._pages.move_to_end(page)
                if write:
                    self._pages[page] = True
            else:
                misses += 1
                miss_pages.append(page)
        if miss_pages:
            # One request per contiguous run of missing pages.
            runs = _count_runs(miss_pages)
            self.device.read(
                len(miss_pages) * self.page_size, pattern, requests=runs
            )
            for page in miss_pages:
                self._insert(page, dirty=write)
        self.hits += hits
        self.misses += misses
        return hits, misses

    def write_through(self, pages: Iterable[int], safepoint: str = "h2_write") -> int:
        """Write pages straight to the device (explicit async I/O path).

        TeraHeap's promotion buffers bypass the fault path with explicit
        batched writes (Section 3.2); the pages also land in the cache
        clean, so an immediate read back hits DRAM.  ``safepoint`` names
        this batch for the crash scheduler: a kill here lands a prefix of
        the batch and raises :class:`SimulatedCrash`.
        """
        pages = list(pages)
        if not pages:
            return 0
        cut = self._crash_cut(safepoint, len(pages))
        if cut is not None:
            self._crash(safepoint, pages, cut)
        runs = _count_runs(pages)
        self.device.write(len(pages) * self.page_size, requests=runs)
        self.durable_image.commit(pages)
        for page in pages:
            self._insert(page, dirty=False)
        return len(pages)

    def write_metadata(self, pages: Iterable[int], safepoint: str) -> int:
        """Persist metadata pages (region headers, superblock) directly.

        Metadata pages use negative page numbers, disjoint from the data
        page space, and bypass the LRU — headers are tiny and their cost
        is the device write, not cache pressure.  Journal entries staged
        against these pages install when the write commits.
        """
        pages = sorted(pages)
        if not pages:
            return 0
        cut = self._crash_cut(safepoint, len(pages))
        if cut is not None:
            self._crash(safepoint, pages, cut)
        runs = _count_runs(pages)
        self.device.write(len(pages) * self.page_size, requests=runs)
        self.durable_image.commit(pages)
        return len(pages)

    def invalidate(self, pages: Iterable[int]) -> None:
        """Drop pages without writeback (freed H2 regions)."""
        for page in pages:
            self._pages.pop(page, None)

    def flush(self, safepoint: str = "writeback") -> int:
        """Write back all dirty pages; returns the number written.

        The writeback batch is a crash safepoint: a kill mid-flush lands
        a prefix of the dirty set (LRU-order, as the kernel flusher would
        issue it) and tears the page at the cut.
        """
        dirty = [p for p, d in self._pages.items() if d]
        if dirty:
            cut = self._crash_cut(safepoint, len(dirty))
            if cut is not None:
                self._crash(safepoint, dirty, cut)
            runs = _count_runs(sorted(dirty))
            self.device.write(len(dirty) * self.page_size, requests=runs)
            self.durable_image.commit(dirty)
            for page in dirty:
                self._pages[page] = False
            self.writebacks += len(dirty)
        return len(dirty)

    def msync(self) -> int:
        """Synchronous flush of the mapping's dirty pages (``msync(2)``).

        Returns the number of pages written.  Completing the sync bumps
        the image's sync-epoch counter; the fsync-style barrier cost is
        charged by the caller, which owns the clock.
        """
        written = self.flush(safepoint="msync")
        self.durable_image.note_sync()
        return written


def _count_runs(pages) -> int:
    """Number of maximal contiguous runs in a sorted page list."""
    runs = 0
    prev = None
    for page in pages:
        if prev is None or page != prev + 1:
            runs += 1
        prev = page
    return max(runs, 1)
