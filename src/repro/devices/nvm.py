"""Intel Optane DC persistent memory model (App Direct and Memory modes)."""

from __future__ import annotations

import enum

from ..clock import Clock
from ..units import GB, MiB
from .base import Device


class NVMMode(enum.Enum):
    """Optane operating modes used in the paper (Section 6, Table 2)."""

    #: mounted on ext4-DAX; direct load/store mappings (H2 backing, Spark-SD
    #: off-heap backing)
    APP_DIRECT = "app_direct"
    #: NVM as main memory with DRAM as a hardware-managed cache (Spark-MO)
    MEMORY = "memory"


class NVM(Device):
    """Byte-addressable NVM: ~3x DRAM read latency, lower write bandwidth.

    Ratios follow the Optane characterisation literature cited by the paper
    (Izraelevitz et al. 2019, Yang et al. 2020): reads ~2-3x slower than
    DRAM, writes ~5x slower, no page-granularity amplification.
    """

    def __init__(
        self,
        clock: Clock,
        capacity: int = 3072 * GB,
        mode: NVMMode = NVMMode.APP_DIRECT,
        name: str = "nvm",
    ):
        super().__init__(
            name=name,
            capacity=capacity,
            read_latency=300e-9,
            write_latency=500e-9,
            read_bw=4.0 * MiB,
            write_bw=1.6 * MiB,
            page_size=1,
            random_penalty=1.3,
            clock=clock,
        )
        self.mode = mode


class NVMMemoryMode(Device):
    """NVM in Memory mode with DRAM acting as a direct-mapped cache.

    The CPU memory controller moves data between DRAM and NVM with no
    software control over placement; the paper shows this produces 5.3x /
    11.8x more NVM reads/writes than TeraHeap (Section 7.5).  We model it
    as a device whose effective cost blends DRAM and NVM according to a
    hit ratio that degrades as the working set exceeds the DRAM cache.
    """

    def __init__(
        self,
        clock: Clock,
        dram_cache_size: int = 192 * GB,
        capacity: int = 1024 * GB,
        name: str = "nvm-memmode",
    ):
        super().__init__(
            name=name,
            capacity=capacity,
            read_latency=300e-9,
            write_latency=500e-9,
            read_bw=4.0 * MiB,
            write_bw=1.6 * MiB,
            page_size=1,
            random_penalty=1.3,
            clock=clock,
        )
        self.dram_cache_size = dram_cache_size
        self.working_set = 0
        self._dram = DRAMCosts()
        #: hit ratio for GC accesses: collectors stream through the whole
        #: heap with no temporal locality, defeating the direct-mapped
        #: hardware cache (the paper measures 5.3x/11.8x more NVM
        #: reads/writes than TeraHeap, Section 7.5)
        self.gc_hit_ratio = 0.15
        #: upper bound on the mutator hit ratio — Memory mode's
        #: direct-mapped cache suffers conflict misses even when the
        #: working set nominally fits
        self.mutator_hit_cap = 0.80

    def hit_ratio(self) -> float:
        """Fraction of mutator accesses served from the DRAM cache."""
        if self.working_set <= 0:
            return self.mutator_hit_cap
        ratio = self.dram_cache_size / self.working_set
        return max(0.10, min(self.mutator_hit_cap, self.mutator_hit_cap * ratio))

    def read(self, nbytes, pattern=None, requests=1):  # noqa: D102
        from .base import AccessPattern

        pattern = pattern or AccessPattern.SEQUENTIAL
        hit = self.hit_ratio()
        dram_part = int(nbytes * hit)
        nvm_part = nbytes - dram_part
        cost = 0.0
        if dram_part:
            cost += self._dram.latency + dram_part / self._dram.read_bw
            self.clock.charge(self._dram.latency + dram_part / self._dram.read_bw)
        if nvm_part:
            cost += super().read(nvm_part, pattern, requests)
        else:
            self.traffic.read_ops += requests
        return cost

    def write(self, nbytes, pattern=None, requests=1):  # noqa: D102
        from .base import AccessPattern

        pattern = pattern or AccessPattern.SEQUENTIAL
        hit = self.hit_ratio()
        dram_part = int(nbytes * hit)
        nvm_part = nbytes - dram_part
        cost = 0.0
        if dram_part:
            cost += self._dram.latency + dram_part / self._dram.write_bw
            self.clock.charge(self._dram.latency + dram_part / self._dram.write_bw)
        if nvm_part:
            cost += super().write(nvm_part, pattern, requests)
        else:
            self.traffic.write_ops += requests
        return cost

    # -- GC access path (streaming, low cache hit ratio) ----------------
    def _gc_blend(self, nbytes: int, write: bool, pattern, requests: int) -> float:
        dram_part = int(nbytes * self.gc_hit_ratio)
        nvm_part = nbytes - dram_part
        bw = self._dram.write_bw if write else self._dram.read_bw
        cost = 0.0
        if dram_part:
            piece = self._dram.latency + dram_part / bw
            self.clock.charge(piece)
            cost += piece
        if nvm_part:
            op = Device.write if write else Device.read
            cost += op(self, nvm_part, pattern, requests=requests)
        return cost

    def gc_read(self, nbytes: int, pattern=None, requests: int = 1) -> float:
        from .base import AccessPattern

        return self._gc_blend(
            nbytes,
            write=False,
            pattern=pattern or AccessPattern.RANDOM,
            requests=requests,
        )

    def gc_write(self, nbytes: int, pattern=None, requests: int = 1) -> float:
        from .base import AccessPattern

        return self._gc_blend(
            nbytes,
            write=True,
            pattern=pattern or AccessPattern.RANDOM,
            requests=requests,
        )


class DRAMCosts:
    """DRAM cost constants used inside the memory-mode blend."""

    latency = 100e-9
    read_bw = 10.0 * MiB
    write_bw = 8.0 * MiB
