"""Device abstraction: latency/bandwidth cost accounting plus traffic metrics."""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field

from ..clock import Clock


class AccessPattern(enum.Enum):
    """Access pattern hint; some devices penalise random access."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass
class DeviceTraffic:
    """Cumulative traffic counters for one device."""

    bytes_read: int = 0
    bytes_written: int = 0
    read_ops: int = 0
    write_ops: int = 0

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0

    def snapshot(self) -> "DeviceTraffic":
        return DeviceTraffic(
            self.bytes_read, self.bytes_written, self.read_ops, self.write_ops
        )

    def delta(self, earlier: "DeviceTraffic") -> "DeviceTraffic":
        return DeviceTraffic(
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
            self.read_ops - earlier.read_ops,
            self.write_ops - earlier.write_ops,
        )


@dataclass
class Device:
    """A memory or storage device with a simple latency + bandwidth model.

    A request of ``n`` bytes costs ``latency + n / bandwidth`` seconds,
    charged to the clock's current context bucket.  Block devices round
    requests up to page granularity — the I/O-amplification effect the
    paper highlights in Section 2.
    """

    name: str = "device"
    capacity: int = 0
    read_latency: float = 0.0
    write_latency: float = 0.0
    read_bw: float = 1.0  # bytes/s
    write_bw: float = 1.0
    #: request granularity; 1 for byte-addressable devices
    page_size: int = 1
    #: multiplier applied to latency for random access
    random_penalty: float = 1.0
    clock: Clock = field(default_factory=Clock)
    traffic: DeviceTraffic = field(default_factory=DeviceTraffic)

    # ------------------------------------------------------------------
    def rebind(self, clock: Clock) -> "Device":
        """A copy of this device charging ``clock``, with fresh counters.

        VMs rebind devices passed in from outside instead of mutating
        them, so a device instance shared across VM constructions never
        has its clock or traffic statistics hijacked by the newest VM.
        """
        clone = copy.copy(self)
        clone.clock = clock
        clone.traffic = DeviceTraffic()
        return clone

    # ------------------------------------------------------------------
    def _granular(self, nbytes: int) -> int:
        """Round a transfer up to device page granularity."""
        if self.page_size <= 1:
            return nbytes
        pages = (nbytes + self.page_size - 1) // self.page_size
        return max(pages, 1) * self.page_size

    def read(
        self,
        nbytes: int,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        requests: int = 1,
    ) -> float:
        """Charge the cost of reading ``nbytes`` in ``requests`` requests."""
        moved = self._granular(nbytes)
        latency = self.read_latency * requests
        if pattern is AccessPattern.RANDOM:
            latency *= self.random_penalty
        cost = latency + moved / self.read_bw
        self.clock.charge(cost)
        self.traffic.bytes_read += moved
        self.traffic.read_ops += requests
        return cost

    def write(
        self,
        nbytes: int,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        requests: int = 1,
    ) -> float:
        """Charge the cost of writing ``nbytes`` in ``requests`` requests."""
        moved = self._granular(nbytes)
        latency = self.write_latency * requests
        if pattern is AccessPattern.RANDOM:
            latency *= self.random_penalty
        cost = latency + moved / self.write_bw
        self.clock.charge(cost)
        self.traffic.bytes_written += moved
        self.traffic.write_ops += requests
        return cost

    def read_modify_write(self, nbytes: int) -> float:
        """An in-place update on a block device: read page(s), then write.

        This is the expensive pattern TeraHeap's transfer hint exists to
        avoid (Section 7.2): updating device-resident objects costs a full
        page read plus a full page write.
        """
        return self.read(nbytes, AccessPattern.RANDOM) + self.write(
            nbytes, AccessPattern.RANDOM
        )
