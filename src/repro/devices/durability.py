"""The durable image: what survives a kill of the simulated process.

H2's *data* lives on the device behind a file-backed mapping, but its
*metadata* (region array, dependency lists, live bits, card table) is
DRAM-only (Figure 2) — so process death erases everything except the
bytes that writeback actually pushed to the device.  This module models
that boundary explicitly.  A :class:`DurableImage` is the device-side
truth at any instant:

- **pages** — device pages that hold committed data, mapped to the
  monotonically increasing write sequence that last wrote them.  A page
  enters the image when the page cache writes it (write-through,
  msync/flush writeback, or dirty eviction); a *dirty page sitting in
  the cache is not durable*.
- **torn** — pages caught mid-write by a crash.  The torn-write model is
  page-granular: a crashed batch write lands a seeded prefix of its
  pages and tears the page at the cut; everything after the cut never
  reaches the device.
- **journal** — the per-region header journal TeraHeap persists into
  each H2 region (epoch, object summary, dependency info).  Header
  updates are shadow-written: the new entry is *staged* against its
  header page and installs only when that page's write commits; a tear
  loses the in-flight update but keeps the previous entry readable, the
  way a two-slot header with a flip word would.
- **superblock** — the commit record ``(committed_epoch, manifest,
  note)``: the region indices live at the last completed commit plus an
  opaque application checkpoint note.  The superblock is also two-slot:
  a crash mid-commit tears the in-flight slot and recovery falls back
  to the previous record.  Journal entries whose epoch differs from the
  committed epoch belong to a commit that never finished.

The image carries no simulated-clock state — it is pure bytes — so it
can be lifted out of a crashed VM and handed to a fresh one for
recovery.  :meth:`digest` renders the whole image canonically; byte
identity of digests across reruns is the determinism acceptance check.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

#: the superblock record: (committed_epoch, manifest, checkpoint note)
Superblock = Tuple[int, Tuple[int, ...], str]


class DurableImage:
    """Device-side durable state: committed pages, torn pages, journal."""

    def __init__(self, page_size: int = 4096):
        self.page_size = page_size
        #: page number -> write sequence of the last committed write
        self.pages: Dict[int, int] = {}
        #: pages caught mid-write by a crash
        self.torn: Set[int] = set()
        #: region index -> retained committed journal entries, oldest
        #: first.  Headers are two-slot: a commit installs into the
        #: free slot, so the previous epoch's entry stays readable until
        #: the *next* commit overwrites it.  Recovery picks the entry
        #: matching the superblock's committed epoch.
        self.journal: Dict[int, Tuple[object, ...]] = {}
        #: journal entries staged against a header page, installed when
        #: that page's write commits (shadow-write header model)
        self._staged: Dict[int, List[Tuple[int, object]]] = {}
        #: last completed commit record; ``None`` models an image whose
        #: every superblock slot is unreadable (only constructible by
        #: hand — one crash per run cannot tear both slots)
        self.superblock: Optional[Superblock] = (0, (), "")
        #: commit attempts torn mid-write (the fallback slot survived)
        self.superblock_tears = 0
        self._write_seq = 0
        #: completed msync/flush epochs (observability)
        self.sync_epochs = 0

    # ------------------------------------------------------------------
    # Write path (called by the page cache / mapping)
    # ------------------------------------------------------------------
    def stage_journal(self, page: int, slot: int, entry: object) -> None:
        """Stage ``entry`` to commit with the next write of ``page``."""
        self._staged.setdefault(page, []).append((slot, entry))

    def commit(self, pages: Iterable[int]) -> None:
        """Pages reached the device intact: install them and any staged
        journal entries riding on them."""
        for page in pages:
            self._write_seq += 1
            self.pages[page] = self._write_seq
            self.torn.discard(page)
            for slot, entry in self._staged.pop(page, ()):
                retained = self.journal.get(slot, ())
                self.journal[slot] = (retained + (entry,))[-2:]

    def tear(self, page: int) -> None:
        """A crash cut this page mid-write: neither its old nor its new
        content is fully readable.  Staged journal entries riding on the
        page are lost, but previously committed entries survive (headers
        are shadow-written, not overwritten in place)."""
        self._write_seq += 1
        self.pages.pop(page, None)
        self.torn.add(page)
        self._staged.pop(page, None)

    def drop_staged(self) -> None:
        """Forget staged journal entries whose page write never started."""
        self._staged.clear()

    def note_sync(self) -> None:
        self.sync_epochs += 1

    def commit_superblock(
        self, epoch: int, manifest: Iterable[int], note: str = ""
    ) -> None:
        self._write_seq += 1
        self.superblock = (epoch, tuple(sorted(manifest)), note)

    def tear_superblock(self) -> None:
        """A crash cut the superblock write: the in-flight slot is torn,
        the previous record remains the committed one."""
        self._write_seq += 1
        self.superblock_tears += 1

    # ------------------------------------------------------------------
    # Read path (recovery)
    # ------------------------------------------------------------------
    @property
    def committed_epoch(self) -> int:
        return self.superblock[0] if self.superblock is not None else -1

    @property
    def manifest(self) -> Tuple[int, ...]:
        return self.superblock[1] if self.superblock is not None else ()

    @property
    def checkpoint_note(self) -> str:
        return self.superblock[2] if self.superblock is not None else ""

    def is_durable(self, page: int) -> bool:
        return page in self.pages and page not in self.torn

    def span_durable(self, pages: Iterable[int]) -> bool:
        """True when every page of a span is committed and untorn."""
        return all(self.is_durable(page) for page in pages)

    def journal_entries(self, index: int) -> Tuple[object, ...]:
        """Every readable journal entry of a region header, oldest first."""
        return self.journal.get(index, ())

    def journal_entry(self, index: int, epoch: int) -> Optional[object]:
        """The region's journal entry for ``epoch``, if a slot holds it."""
        for entry in reversed(self.journal.get(index, ())):
            if getattr(entry, "epoch", None) == epoch:
                return entry
        return None

    def torn_in(self, pages: Iterable[int]) -> List[int]:
        return [page for page in pages if page in self.torn]

    def missing_in(self, pages: Iterable[int]) -> List[int]:
        return [page for page in pages if page not in self.pages]

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Canonical text form of the image, for byte-identity checks."""
        lines = [f"page_size\t{self.page_size}"]
        if self.superblock is None:
            lines.append("superblock\tUNREADABLE")
        else:
            manifest = ",".join(str(i) for i in self.manifest)
            lines.append(
                f"superblock\tepoch={self.committed_epoch}"
                f"\tmanifest=[{manifest}]\tnote={self.checkpoint_note}"
                f"\ttears={self.superblock_tears}"
            )
        for page in sorted(self.pages):
            lines.append(f"page\t{page}\tseq={self.pages[page]}")
        for page in sorted(self.torn):
            lines.append(f"torn\t{page}")
        for slot in sorted(self.journal):
            for entry in self.journal[slot]:
                text = (
                    entry.line() if hasattr(entry, "line") else repr(entry)
                )
                lines.append(f"journal\t{slot}\t{text}")
        return "\n".join(lines)


def image_of(mapping) -> Optional[DurableImage]:
    """The durable image behind a mapping, if its cache tracks one."""
    cache = getattr(mapping, "cache", None)
    return getattr(cache, "durable_image", None)
