"""NVMe SSD model: block-addressable, page-granularity transfers."""

from __future__ import annotations

from ..clock import Clock
from ..units import GB, KiB, MiB
from .base import Device


class NVMeSSD(Device):
    """Samsung PM983-like NVMe SSD (Table 1).

    The paper measures a 2.9 GB/s read ceiling on this device (Section
    7.1); at simulation scale that becomes 2.9 MiB/s.  Transfers happen in
    4 KB pages, so sub-page accesses are amplified to a full page — the
    effect that makes storage-backed GC scans so expensive (Section 2).
    """

    def __init__(self, clock: Clock, capacity: int = 2048 * GB, name: str = "nvme"):
        super().__init__(
            name=name,
            capacity=capacity,
            read_latency=80e-6,
            write_latency=25e-6,
            read_bw=2.9 * MiB,
            write_bw=1.1 * MiB,
            page_size=4 * KiB,
            random_penalty=1.5,
            clock=clock,
        )
