"""Per-device health tracking: latency/bandwidth EWMAs and SLO states.

A :class:`DeviceHealthMonitor` observes every timed operation a device
completes — fed by the :class:`~repro.faults.injector.FaultInjector`,
which knows both the op's *actual* cost (base + injected surcharges) and
its *nominal* cost (what the clean device model charged) — and keeps
per-device exponentially weighted moving averages of the actual/nominal
cost ratio, the per-op latency and the delivered bandwidth.

From those it classifies each device into three states:

- ``HEALTHY``: the EWMA cost ratio sits near 1 and recent ops met their
  service-level objective (cost within ``slo_multiplier`` of nominal);
- ``DEGRADED``: the ratio EWMA drifted above ``degraded_ratio`` —
  service is slower than the model says it should be, but usable;
- ``BROWNOUT``: the ratio EWMA crossed ``brownout_ratio``, or
  ``violation_streak`` consecutive ops each blew the SLO (including
  injected I/O errors) — the device is effectively unavailable for bulk
  work.

Classification is hysteretic: escalation is immediate, de-escalation
steps down one state at a time and only after ``recovery_ops``
consecutive clean observations, so a device flapping around a threshold
cannot flap its consumers (most importantly the
:class:`~repro.teraheap.governor.H2Governor` circuit breaker, which
subscribes via :meth:`add_listener`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..clock import Clock


class DeviceState(enum.Enum):
    """Health classification of one device."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    BROWNOUT = "brownout"


_SEVERITY = {
    DeviceState.HEALTHY: 0,
    DeviceState.DEGRADED: 1,
    DeviceState.BROWNOUT: 2,
}


@dataclass
class HealthConfig:
    """Classification knobs (EWMAs, SLO, hysteresis)."""

    #: EWMA smoothing factor for the cost ratio / latency / bandwidth
    ewma_alpha: float = 0.3
    #: an op whose actual/nominal cost ratio meets this violates its SLO
    slo_multiplier: float = 1.75
    #: ratio EWMA above which the device is DEGRADED
    degraded_ratio: float = 1.25
    #: ratio EWMA above which the device is in BROWNOUT
    brownout_ratio: float = 1.9
    #: consecutive SLO violations that force BROWNOUT regardless of EWMA
    violation_streak: int = 4
    #: consecutive clean ops required to step *down* one state
    recovery_ops: int = 8


@dataclass
class HealthTransition:
    """One device-state change, timestamped on the simulated clock."""

    time: float
    device: str
    old: DeviceState
    new: DeviceState
    reason: str = ""

    def line(self) -> str:
        return (
            f"{self.time:.6f}\t{self.device}\t"
            f"{self.old.value}->{self.new.value}\t{self.reason}"
        )


class _DeviceHealth:
    """Mutable per-device tracking state."""

    __slots__ = (
        "ewma_ratio",
        "ewma_latency",
        "ewma_bandwidth",
        "violations",
        "bad_streak",
        "clean_streak",
        "state",
    )

    def __init__(self) -> None:
        self.ewma_ratio = 1.0
        self.ewma_latency = 0.0
        self.ewma_bandwidth = 0.0
        self.violations = 0
        self.bad_streak = 0
        self.clean_streak = 0
        self.state = DeviceState.HEALTHY


class DeviceHealthMonitor:
    """Watchdog over every device the H2 I/O stack touches."""

    def __init__(self, clock: Clock, config: Optional[HealthConfig] = None):
        self.clock = clock
        self.config = config or HealthConfig()
        self._devices: Dict[str, _DeviceHealth] = {}
        self.transitions: List[HealthTransition] = []
        #: (owner, callback) pairs; owner None marks unscoped listeners
        self._listeners: List[tuple] = []
        self.observations = 0
        self.errors = 0

    # ------------------------------------------------------------------
    def add_listener(
        self,
        fn: Callable[[HealthTransition], None],
        owner: Optional[object] = None,
    ) -> None:
        """Call ``fn`` on every state transition (e.g. the H2 governor).

        ``owner`` scopes the registration: a monitor shared across
        co-located VMs detaches one tenant's listeners on retirement via
        ``detach_listeners(owner)`` without touching its siblings'.
        """
        self._listeners.append((owner, fn))

    def detach_listeners(self, owner: Optional[object] = None) -> None:
        """Drop listeners (a retired VM must stop driving anything).

        With ``owner=None`` every listener goes — the right call for a
        monitor owned by a single VM.  With an owner, only that owner's
        registrations are dropped: on a *shared* monitor a retiring
        tenant must never strip the governors of tenants still running.
        """
        if owner is None:
            self._listeners.clear()
            return
        self._listeners = [
            (who, fn) for who, fn in self._listeners if who is not owner
        ]

    def _entry(self, device: str) -> _DeviceHealth:
        health = self._devices.get(device)
        if health is None:
            health = self._devices[device] = _DeviceHealth()
        return health

    # ------------------------------------------------------------------
    def observe(
        self,
        device: str,
        op: str,
        nbytes: int,
        actual_s: float,
        nominal_s: float,
    ) -> DeviceState:
        """Feed one completed timed operation; returns the new state.

        ``nominal_s`` is the clean device-model cost of the same op, so
        ``actual_s / nominal_s`` is exactly the injected degradation
        factor (1.0 for a clean op) — no cost-model duplication here.
        """
        self.observations += 1
        health = self._entry(device)
        alpha = self.config.ewma_alpha
        ratio = actual_s / nominal_s if nominal_s > 0 else 1.0
        health.ewma_ratio += alpha * (ratio - health.ewma_ratio)
        health.ewma_latency += alpha * (actual_s - health.ewma_latency)
        if actual_s > 0 and nbytes > 0:
            bandwidth = nbytes / actual_s
            if health.ewma_bandwidth == 0.0:
                health.ewma_bandwidth = bandwidth
            else:
                health.ewma_bandwidth += alpha * (
                    bandwidth - health.ewma_bandwidth
                )
        violated = ratio >= self.config.slo_multiplier
        self._account(
            health,
            device,
            violated,
            f"{op} ratio={ratio:.2f} ewma={health.ewma_ratio:.2f}",
        )
        return health.state

    def observe_error(self, device: str, op: str) -> DeviceState:
        """An op failed outright: the hardest possible SLO violation."""
        self.errors += 1
        health = self._entry(device)
        self._account(health, device, True, f"{op} io_error")
        return health.state

    # ------------------------------------------------------------------
    def _account(
        self,
        health: _DeviceHealth,
        device: str,
        violated: bool,
        reason: str,
    ) -> None:
        cfg = self.config
        if violated:
            health.violations += 1
            health.bad_streak += 1
            health.clean_streak = 0
        else:
            health.bad_streak = 0
            health.clean_streak += 1
        if (
            health.bad_streak >= cfg.violation_streak
            or health.ewma_ratio >= cfg.brownout_ratio
        ):
            target = DeviceState.BROWNOUT
        elif health.ewma_ratio >= cfg.degraded_ratio:
            target = DeviceState.DEGRADED
        else:
            target = DeviceState.HEALTHY
        current = _SEVERITY[health.state]
        wanted = _SEVERITY[target]
        if wanted > current:
            self._transition(health, device, target, reason)
        elif wanted < current and health.clean_streak >= cfg.recovery_ops:
            # Hysteresis: step down one state at a time, and only after a
            # sustained run of clean observations.
            new = DeviceState(
                {1: "healthy", 2: "degraded"}[current]
            )
            self._transition(
                health,
                device,
                new,
                f"recovered after {health.clean_streak} clean ops",
            )
            health.clean_streak = 0

    def _transition(
        self,
        health: _DeviceHealth,
        device: str,
        new: DeviceState,
        reason: str,
    ) -> None:
        old = health.state
        health.state = new
        transition = HealthTransition(self.clock.now, device, old, new, reason)
        self.transitions.append(transition)
        self.clock.record_event(f"device_{new.value}", 0.0)
        for _, fn in self._listeners:
            fn(transition)

    # ------------------------------------------------------------------
    def state_of(self, device: str) -> DeviceState:
        health = self._devices.get(device)
        return health.state if health is not None else DeviceState.HEALTHY

    @property
    def state(self) -> DeviceState:
        """The worst state across all observed devices."""
        worst = DeviceState.HEALTHY
        for health in self._devices.values():
            if _SEVERITY[health.state] > _SEVERITY[worst]:
                worst = health.state
        return worst

    def ewma_ratio(self, device: str) -> float:
        health = self._devices.get(device)
        return health.ewma_ratio if health is not None else 1.0

    def slo_violations(self, device: Optional[str] = None) -> int:
        if device is not None:
            health = self._devices.get(device)
            return health.violations if health is not None else 0
        return sum(h.violations for h in self._devices.values())

    def describe(self) -> str:
        """One-line per-device snapshot for diagnostic heap reports."""
        if not self._devices:
            return "no devices observed"
        return "; ".join(
            f"{name}={h.state.value}"
            f"(ewma_ratio={h.ewma_ratio:.2f}, violations={h.violations})"
            for name, h in sorted(self._devices.items())
        )

    def digest(self) -> str:
        """Canonical transition log, for byte-identity determinism checks."""
        return "\n".join(t.line() for t in self.transitions)
