"""Memory-mapped file regions with page faults and optional huge pages.

TeraHeap maps H2 over a file on the storage device (file-backed ``mmap``)
so the OS virtual-memory system performs reference translation and the JVM
needs no custom lookup (Section 3.1).  Accesses to unmapped pages fault and
pull pages through the kernel page cache.  For Spark ML workloads the paper
uses HugeMap to enable huge pages on the file mapping, reducing fault
frequency for streaming access (Section 6).
"""

from __future__ import annotations

from typing import Tuple

from ..errors import SegmentationFault
from .base import AccessPattern, Device
from .page_cache import PageCache

#: base-page size of the mapping (real bytes at simulation scale)
BASE_PAGE = 4096
#: "huge" page size.  Real HugeMap pages are 2 MiB (512x); at simulation
#: scale we keep a 64x ratio so huge pages still cover many objects without
#: making the page cache trivially coarse.
HUGE_PAGE = 64 * BASE_PAGE


class MappedFile:
    """A file-backed mapping: an address range over a device + page cache."""

    def __init__(
        self,
        device: Device,
        base: int,
        size: int,
        cache: PageCache,
        huge_pages: bool = False,
        fault_plan=None,
    ):
        if size <= 0:
            raise ValueError("mapping size must be positive")
        self.device = device
        self.base = base
        self.size = size
        self.cache = cache
        self.page_size = HUGE_PAGE if huge_pages else BASE_PAGE
        self.huge_pages = huge_pages
        self.page_faults = 0
        #: optional FaultPlan consulted on faulting accesses (SIGBUS)
        self.fault_plan = fault_plan
        self.sigbus_count = 0
        # Scale the cache's page granularity to the mapping's.
        if cache.page_size != self.page_size:
            cache.page_size = self.page_size
            cache.max_pages = max(1, cache.max_pages * BASE_PAGE // self.page_size)
            cache.durable_image.page_size = self.page_size

    # ------------------------------------------------------------------
    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    def _pages_for(self, address: int, nbytes: int) -> range:
        if not self.contains(address) or not self.contains(
            address + max(nbytes, 1) - 1
        ):
            raise SegmentationFault(
                f"access [{address:#x}, +{nbytes}) outside mapping "
                f"[{self.base:#x}, +{self.size})"
            )
        first = (address - self.base) // self.page_size
        last = (address - self.base + max(nbytes, 1) - 1) // self.page_size
        return range(first, last + 1)

    def _maybe_sigbus(self, address: int, misses: int) -> None:
        """Simulated SIGBUS: an I/O error surfacing through a page fault.

        Consulted only when the access actually faulted pages in (the
        kernel delivers SIGBUS from its fault handler, never on a cache
        hit).  The faulted pages stay cached, so a retry of the same
        access hits the cache and succeeds — matching a transient media
        error that clears on the kernel's own retry.
        """
        if misses == 0 or self.fault_plan is None:
            return
        if self.fault_plan.page_fault_outcome(self.device.name, address):
            self.sigbus_count += 1
            fault = SegmentationFault(
                f"simulated SIGBUS faulting {address:#x} on "
                f"{self.device.name}",
                address=address,
            )
            fault.sigbus = True
            raise fault

    # ------------------------------------------------------------------
    def load(
        self,
        address: int,
        nbytes: int,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> Tuple[int, int]:
        """Read ``nbytes`` at ``address``; faults fill from the device."""
        pages = self._pages_for(address, nbytes)
        hits, misses = self.cache.access(pages, write=False, pattern=pattern)
        self.page_faults += misses
        self._maybe_sigbus(address, misses)
        return hits, misses

    def store(
        self,
        address: int,
        nbytes: int,
        pattern: AccessPattern = AccessPattern.RANDOM,
    ) -> Tuple[int, int]:
        """Write ``nbytes`` at ``address`` through the fault path.

        A store to an uncached page is a read-modify-write: the kernel
        faults the page in before the store dirties it.
        """
        pages = self._pages_for(address, nbytes)
        hits, misses = self.cache.access(pages, write=True, pattern=pattern)
        self.page_faults += misses
        self._maybe_sigbus(address, misses)
        return hits, misses

    def write_explicit(
        self, address: int, nbytes: int, safepoint: str = "h2_write"
    ) -> int:
        """Batched explicit write bypassing the fault path (promotion I/O)."""
        pages = self._pages_for(address, nbytes)
        return self.cache.write_through(pages, safepoint=safepoint)

    def write_explicit_many(self, spans, safepoint: str = "h2_write") -> int:
        """Write several (address, nbytes) spans as one coalesced batch.

        Spans that share pages (e.g. several regions inside one huge page)
        are written once — the behaviour of a single large flush.
        """
        pages = set()
        for address, nbytes in spans:
            pages.update(self._pages_for(address, nbytes))
        if not pages:
            return 0
        return self.cache.write_through(sorted(pages), safepoint=safepoint)

    def pages_for(self, address: int, nbytes: int) -> range:
        """Public page-span lookup (durable-image checks during recovery)."""
        return self._pages_for(address, nbytes)

    def msync(self) -> int:
        """Flush the mapping's dirty pages to the device (``msync(2)``)."""
        return self.cache.msync()

    def discard(self, address: int, nbytes: int) -> None:
        """Drop a range without writeback (freeing dead H2 regions)."""
        pages = self._pages_for(address, nbytes)
        self.cache.invalidate(pages)
