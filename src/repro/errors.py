"""Exception hierarchy for the TeraHeap reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulator errors."""


class OutOfMemoryError(ReproError):
    """Raised when the managed heap cannot satisfy an allocation.

    Mirrors ``java.lang.OutOfMemoryError``: the collector ran and the
    requested allocation still does not fit.  Experiment drivers catch this
    to render the paper's "OOM" bars.
    """

    def __init__(self, message: str, requested: int = 0, available: int = 0):
        super().__init__(message)
        self.requested = requested
        self.available = available


class SegmentationFault(ReproError):
    """Raised on access to an address outside any mapped space."""


class InvalidHintError(ReproError):
    """Raised on misuse of the TeraHeap hint interface."""


class ConfigError(ReproError):
    """Raised when a VM or device configuration is inconsistent."""


class SerializationError(ReproError):
    """Raised when an object graph cannot be serialized.

    Java refuses to serialize objects that are not self-contained
    serializable entities; the simulator models that with this error.
    """
