"""Exception hierarchy for the TeraHeap reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulator errors."""


class OutOfMemoryError(ReproError):
    """Raised when the managed heap cannot satisfy an allocation.

    Mirrors ``java.lang.OutOfMemoryError``: the collector ran and the
    requested allocation still does not fit.  Experiment drivers catch this
    to render the paper's "OOM" bars.  When the VM has fallen back to the
    in-H1 serialization path after H2 degradation, ``context`` carries the
    fallback description so OOM reports name the degraded configuration.
    ``heap_report`` carries the VM's diagnostic heap report (occupancy,
    H2 state, governor circuit state, backpressure counters) so a modeled
    OOM is actionable rather than a bare message.
    """

    def __init__(
        self,
        message: str,
        requested: int = 0,
        available: int = 0,
        context: str = "",
        heap_report: str = "",
    ):
        super().__init__(message)
        self.requested = requested
        self.available = available
        self.context = context
        self.heap_report = heap_report


class SegmentationFault(ReproError):
    """Raised on access to an address outside any mapped space.

    Like :class:`OutOfMemoryError`, the fault carries structured context:
    the faulting ``address`` and the ``space`` the access targeted (a
    :class:`~repro.heap.object_model.SpaceId` or ``None`` when unknown).
    A simulated SIGBUS — an I/O error surfacing through a file-backed
    mapping — additionally sets ``sigbus`` so resilience policies can
    distinguish retryable mmap faults from genuine wild accesses.
    """

    def __init__(self, message: str, address: int = -1, space=None):
        super().__init__(message)
        self.address = address
        self.space = space
        self.sigbus = False


class DeviceIOError(ReproError):
    """A device read or write failed.

    ``transient`` faults (the common NVMe/NVM case: a correctable media
    error, a timeout under load) are retryable; persistent faults are not.
    """

    def __init__(
        self,
        message: str,
        device: str = "",
        op: str = "",
        transient: bool = True,
    ):
        super().__init__(message)
        self.device = device
        self.op = op
        self.transient = transient


class DeviceFullError(DeviceIOError):
    """The device cannot satisfy an allocation (H2 region backing store).

    Always non-transient: retrying an allocation against a full device
    cannot succeed, so resilience policies count it straight against the
    failure budget instead of retrying.
    """

    def __init__(self, message: str, device: str = "", requested: int = 0):
        super().__init__(message, device=device, op="allocate", transient=False)
        self.requested = requested


class SimulatedCrash(ReproError):
    """The simulated process died at a crash safepoint.

    Raised by the fault machinery when a seed-scheduled kill fires.  All
    volatile state (DRAM heaps, H2 metadata, page-cache dirty bits) is
    lost; only the :class:`~repro.devices.durability.DurableImage` built
    by the writeback/torn-write model survives and can be handed to
    :meth:`~repro.teraheap.h2_heap.H2Heap.recover`.
    """

    def __init__(self, message: str, safepoint: str = "", op_index: int = -1):
        super().__init__(message)
        self.safepoint = safepoint
        self.op_index = op_index


class UnrecoverableCrash(ReproError):
    """The durable image left by a crash cannot be recovered.

    Carries a diff-style ``report`` (also the message) naming exactly
    what the recovery scan expected versus what the image holds — e.g. a
    torn superblock, or a manifest region with no readable header.
    """

    def __init__(self, message: str, problems=()):
        super().__init__(message)
        self.problems = list(problems)


class RetryExhausted(ReproError):
    """A job's bounded crash-restart budget ran out.

    Raised by the task-level retry driver when either the per-job restart
    budget is spent or one partition's recompute-attempt budget is — the
    latter marks the partition *poisoned* (``task`` names it) so a
    deterministic crasher fails fast instead of burning every restart on
    the same task.
    """

    def __init__(self, message: str, restarts: int = 0, task=None):
        super().__init__(message)
        self.restarts = restarts
        self.task = task


class InvariantViolation(ReproError):
    """A post-GC heap audit found inconsistent runtime state.

    ``violations`` holds the structured findings (objects with ``check``,
    ``subject``, ``expected`` and ``actual`` attributes); the message is a
    diff-style report assembled by the auditor.
    """

    def __init__(self, message: str, violations=()):
        super().__init__(message)
        self.violations = list(violations)


class DegradationError(ReproError):
    """An H2 transfer was attempted while H2 is degraded (disabled).

    After the resilience failure budget is exhausted the collector stops
    selecting H2 movers; any path that still tries to place objects in H2
    is a bug and trips this error.
    """


class InvalidHintError(ReproError):
    """Raised on misuse of the TeraHeap hint interface."""


class ConfigError(ReproError):
    """Raised when a VM or device configuration is inconsistent."""


class SerializationError(ReproError):
    """Raised when an object graph cannot be serialized.

    Java refuses to serialize objects that are not self-contained
    serializable entities; the simulator models that with this error.
    """
