"""Serialization/deserialization cost models (Section 2).

Java serialization turns heap object graphs into byte streams (and back),
traversing the transitive closure of the root object and materialising
temporary objects that pressure the young generation.  Kryo is the
optimised serializer Spark recommends and the paper uses.
"""

from .serializer import (
    JavaSerializer,
    KryoSerializer,
    SerializedBlob,
    Serializer,
)

__all__ = ["JavaSerializer", "KryoSerializer", "SerializedBlob", "Serializer"]
