"""Object-graph serialization with the paper's cost structure.

Serialization cost is proportional to the volume of objects in the
transitive closure of the root (graph traversal + byte conversion), and
both directions allocate temporary objects on the managed heap — the
paper highlights these temporaries as a driver of extra GC cycles
(Section 2).  Objects referencing non-serializable state (JVM metadata,
transient-like fields) refuse to serialize, mirroring Java's constraint
that off-heap candidates be self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from ..clock import Bucket, Clock
from ..config import CostModel
from ..errors import SerializationError
from ..heap.object_model import HeapObject
from ..heap.store import FLAG_METADATA, FLAG_SERIALIZABLE


@dataclass
class SerializedBlob:
    """A serialized object group: what lands in an off-heap store."""

    size_bytes: int
    object_count: int
    #: identity of the root object the blob was built from
    root_oid: int
    #: where the blob lives (framework bookkeeping), e.g. "nvme"
    location: str = ""


class Serializer:
    """Base serializer: traversal + byte-stream conversion costs."""

    name = "java"
    #: multiplier over the Kryo-calibrated base costs
    overhead = 2.5

    def __init__(
        self,
        clock: Clock,
        cost: CostModel,
        allocate_temp: Optional[Callable[[int], None]] = None,
    ):
        self.clock = clock
        self.cost = cost
        #: callback allocating ``nbytes`` of short-lived temporaries on the
        #: managed heap (wired to the VM); None disables temp pressure
        self.allocate_temp = allocate_temp
        self.objects_serialized = 0
        self.objects_deserialized = 0
        self.bytes_serialized = 0
        self.bytes_deserialized = 0

    # ------------------------------------------------------------------
    def closure(self, root: HeapObject) -> List[HeapObject]:
        """The transitive closure the serializer must walk."""
        st = root._store
        refs_arr = st.refs
        flags_arr = st.flags
        handle = st.handle
        seen: Set[int] = set()
        stack = [root.oid]
        out: List[HeapObject] = []
        while stack:
            oid = stack.pop()
            if oid in seen:
                continue
            seen.add(oid)
            flags = flags_arr[oid]
            if not flags & FLAG_SERIALIZABLE or flags & FLAG_METADATA:
                raise SerializationError(
                    f"object #{oid} ({st.name[oid] or 'unnamed'}) is not "
                    "serializable; off-heap groups must be self-contained"
                )
            out.append(handle(oid))
            stack.extend(refs_arr[oid])
        return out

    def charge_serialize(self, object_count: int, nbytes: int) -> None:
        """Charge serialization cost without walking a heap graph.

        Used for shuffle traffic, where the record stream is produced and
        consumed within one stage and never rooted.
        """
        with self.clock.context(Bucket.SD_IO):
            self.clock.charge(
                self.overhead
                * (
                    self.cost.serialize_obj_cost * object_count
                    + nbytes / self.cost.serialize_bw
                )
            )
        if self.allocate_temp is not None:
            self.allocate_temp(int(nbytes * self.cost.sd_temp_object_ratio))
        self.objects_serialized += object_count
        self.bytes_serialized += nbytes

    def charge_deserialize(self, object_count: int, nbytes: int) -> None:
        """Shuffle-read counterpart of :meth:`charge_serialize`."""
        with self.clock.context(Bucket.SD_IO):
            self.clock.charge(
                self.overhead
                * (
                    self.cost.deserialize_obj_cost * object_count
                    + nbytes / self.cost.deserialize_bw
                )
            )
        if self.allocate_temp is not None:
            self.allocate_temp(int(nbytes * self.cost.sd_temp_object_ratio))
        self.objects_deserialized += object_count
        self.bytes_deserialized += nbytes

    def serialize(self, root: HeapObject) -> SerializedBlob:
        """Walk the closure and produce a blob; charges S/D time."""
        objs = self.closure(root)
        nbytes = sum(o.size for o in objs)
        with self.clock.context(Bucket.SD_IO):
            seconds = self.overhead * (
                self.cost.serialize_obj_cost * len(objs)
                + nbytes / self.cost.serialize_bw
            )
            self.clock.charge(seconds)
        if self.allocate_temp is not None:
            self.allocate_temp(int(nbytes * self.cost.sd_temp_object_ratio))
        self.objects_serialized += len(objs)
        self.bytes_serialized += nbytes
        return SerializedBlob(
            size_bytes=nbytes, object_count=len(objs), root_oid=root.oid
        )

    def deserialize_cost(self, blob: SerializedBlob) -> None:
        """Charge the cost of reconstructing a blob's object graph.

        The caller (framework) re-allocates the actual objects on the
        heap; this method accounts for the byte-stream decoding work and
        the temporary objects it sprays.
        """
        with self.clock.context(Bucket.SD_IO):
            seconds = self.overhead * (
                self.cost.deserialize_obj_cost * blob.object_count
                + blob.size_bytes / self.cost.deserialize_bw
            )
            self.clock.charge(seconds)
        if self.allocate_temp is not None:
            self.allocate_temp(
                int(blob.size_bytes * self.cost.sd_temp_object_ratio)
            )
        self.objects_deserialized += blob.object_count
        self.bytes_deserialized += blob.size_bytes


class KryoSerializer(Serializer):
    """Kryo: the optimised serializer Spark recommends (Section 6)."""

    name = "kryo"
    overhead = 1.0


class JavaSerializer(Serializer):
    """Stock Java serialization: ~2.5x slower than Kryo, for comparison."""

    name = "java"
    overhead = 2.5
