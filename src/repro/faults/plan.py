"""Deterministic, seed-driven fault plans.

A :class:`FaultPlan` decides — one pseudo-random draw per queried
operation — whether a device access, region allocation or page fault
should fail, and how.  Because the simulator issues device operations in
a deterministic order, the same seed always produces the *byte-identical*
fault schedule, which is what makes fault-injection runs reproducible and
lets tests assert on exact final clock totals.

The plan models the failure modes real NVMe/NVM deployments hit
(Section 4.2 of the paper motivates why the H2 path must survive them):

- transient read/write I/O errors (correctable media errors, timeouts);
- latency spikes (device-internal GC, thermal throttling);
- sustained brownout windows (a co-located tenant saturating the shared
  device: service rate cut to a fraction for a stretch of simulated
  time, with region allocations denied while the window lasts);
- stall bursts (a run of consecutive operations each parked for a fixed
  service delay — queueing behind a device-internal flush);
- device-full conditions on H2 region allocation;
- SIGBUS on page faults through the H2 file mapping (an I/O error
  surfacing through the kernel's fault handler rather than a syscall).
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random
from typing import Dict, Iterator, List, Optional, Tuple


class FaultKind(enum.Enum):
    """The injectable failure modes."""

    READ_ERROR = "read_error"
    WRITE_ERROR = "write_error"
    LATENCY_SPIKE = "latency_spike"
    BROWNOUT = "brownout"
    STALL = "stall"
    DEVICE_FULL = "device_full"
    SIGBUS = "sigbus"
    CRASH = "crash"


@dataclass
class FaultConfig:
    """Parameters of a fault plan plus the resilience policy around it.

    Rates are per *queried operation* probabilities in [0, 1].  Backoff
    delays are simulated seconds charged to the VM clock, so retry stalls
    show up in the paper-style execution breakdown like any other cost.
    """

    seed: int = 42
    #: independent seed for the fault/crash schedule; ``None`` derives it
    #: from ``seed`` (the workload seed), preserving the old coupling
    fault_seed: Optional[int] = None
    #: transient error probability per device read / write
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    #: latency-spike probability per device access, and the multiplier
    #: applied to the access cost when one fires
    latency_spike_rate: float = 0.0
    latency_spike_multiplier: float = 8.0
    #: device-full probability per H2 region allocation
    device_full_rate: float = 0.0
    #: simulated-SIGBUS probability per faulting mapped access
    sigbus_rate: float = 0.0
    # --- brownout windows ----------------------------------------------
    #: per-op probability that a brownout window opens at this operation
    brownout_rate: float = 0.0
    #: length of a randomly opened brownout window, simulated seconds
    brownout_duration_s: float = 0.05
    #: service-rate fraction the device retains during a brownout (every
    #: op inside the window costs ``1 / fraction`` times its normal cost)
    brownout_bandwidth_fraction: float = 0.5
    #: explicitly scheduled windows: ``(start_s, duration_s, fraction)``
    #: in simulated time — the chaos-soak experiment's main knob
    brownout_windows: Tuple[Tuple[float, float, float], ...] = ()
    #: deny H2 region allocations while a brownout window is active (the
    #: device is effectively unreachable for bulk placement)
    brownout_denies_alloc: bool = True
    # --- stall bursts ---------------------------------------------------
    #: per-op probability that a stall burst starts at this operation
    stall_rate: float = 0.0
    #: fixed extra service delay charged to each stalled op, seconds
    stall_seconds: float = 2e-3
    #: consecutive ops parked once a burst starts
    stall_burst_ops: int = 4
    # --- retry policy -------------------------------------------------
    #: total attempts (first try + retries) before an op counts as failed
    max_attempts: int = 4
    #: first backoff delay in simulated seconds; doubles per retry
    backoff_base: float = 100e-6
    backoff_factor: float = 2.0
    #: seeded jitter fraction applied to each backoff delay (0 disables);
    #: drawn from a dedicated stream so retries never perturb the fault
    #: schedule, yet lock-step retry convoys are broken up
    backoff_jitter: float = 0.0
    #: cap on the *total* backoff seconds one op may spend before its
    #: retries are declared exhausted-by-deadline (``None`` = unbounded)
    retry_deadline: Optional[float] = None
    # --- degradation --------------------------------------------------
    #: failed operations (retry exhaustions + device-full denials)
    #: tolerated before H2 transfers are disabled
    failure_budget: int = 3
    #: whether exceeding the budget degrades (False: keep limping along)
    degrade: bool = True
    # --- crash scheduling ----------------------------------------------
    #: named safepoint to kill the process at ("promotion_flush",
    #: "h2_flush", "region_metadata_update", "major_compact",
    #: "epoch_commit", "msync", "writeback"); ``None`` disables targeting
    crash_point: Optional[str] = None
    #: which visit of ``crash_point`` fires the kill (1 = first)
    crash_after: int = 1
    #: additionally, per-safepoint-visit crash probability (seed sweeps)
    crash_rate: float = 0.0
    #: pin the torn-write cut of a crashed batch (pages that land before
    #: the kill); ``None`` draws it from the crash RNG
    crash_cut: Optional[int] = None
    #: task-boundary crash target: kill at the ``crash_task``-th task of
    #: the named stage (the framework visits safepoint ``task:<stage>``
    #: once per task it starts); ``None`` disables stage targeting
    crash_stage: Optional[str] = None
    #: which task visit of ``crash_stage`` fires the kill (1 = first)
    crash_task: int = 1


@dataclass
class FaultRecord:
    """One injected fault, as scheduled by the plan."""

    op_index: int
    kind: FaultKind
    device: str
    detail: str = ""

    def line(self) -> str:
        return f"{self.op_index}\t{self.kind.value}\t{self.device}\t{self.detail}"


@dataclass
class IOOutcome:
    """The plan's verdict for one device access."""

    kind: FaultKind
    multiplier: float = 1.0


class FaultPlan:
    """Seed-driven fault schedule, advanced one draw per queried op."""

    def __init__(self, config: FaultConfig):
        self.config = config
        seed = config.seed if config.fault_seed is None else config.fault_seed
        self._rng = Random(seed)
        # Crash scheduling draws from its own stream so arming (or
        # re-seeding) crashes never perturbs the I/O fault schedule.
        self._crash_rng = Random(seed ^ 0x5C4A_11ED)
        self.op_index = 0
        self.schedule: List[FaultRecord] = []
        self.injected: Dict[FaultKind, int] = {k: 0 for k in FaultKind}
        self._suspended = 0
        #: visits per crash safepoint (deterministic given the workload)
        self.safepoint_hits: Dict[str, int] = {}
        self.crashed = False
        # Brownout/stall state.  Windows are expressed in *simulated
        # time* (not op index) so a governor that halts device traffic
        # cannot freeze a window open forever.
        self._brownout_until = float("-inf")
        self._brownout_fraction = 1.0
        self._seen_windows: set = set()
        self._active_fraction = 1.0
        self._stall_ops_left = 0
        self.stalled_ops = 0

    # ------------------------------------------------------------------
    @property
    def suspended(self) -> bool:
        return self._suspended > 0

    @contextmanager
    def suspend(self) -> Iterator[None]:
        """Disable injection for a forced (already-degraded) operation.

        Suspended queries do not consume random draws, so a fallback
        re-execution never perturbs the schedule of later operations.
        """
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    # ------------------------------------------------------------------
    def _record(self, kind: FaultKind, device: str, detail: str = "") -> None:
        self.injected[kind] += 1
        self.schedule.append(
            FaultRecord(self.op_index, kind, device, detail)
        )

    # ------------------------------------------------------------------
    # Brownout windows / stall bursts (time-based degraded service)
    # ------------------------------------------------------------------
    def _note_scheduled_windows(self, device: str, now: float) -> None:
        """Record each configured window once, when first observed open."""
        for i, (start, dur, frac) in enumerate(self.config.brownout_windows):
            if i not in self._seen_windows and start <= now < start + dur:
                self._seen_windows.add(i)
                self._record(
                    FaultKind.BROWNOUT,
                    device,
                    detail=f"window@{start:g}s+{dur:g}s x{frac:g}",
                )

    def brownout_active(self, now: float) -> bool:
        """Is any brownout window (random or scheduled) open at ``now``?

        Side effect: latches the active bandwidth fraction (the worst of
        all open windows) for the caller's surcharge computation.
        """
        fraction: Optional[float] = None
        if now < self._brownout_until:
            fraction = self._brownout_fraction
        for start, dur, frac in self.config.brownout_windows:
            if start <= now < start + dur:
                fraction = frac if fraction is None else min(fraction, frac)
        self._active_fraction = 1.0 if fraction is None else max(
            fraction, 1e-6
        )
        return fraction is not None

    def io_outcome(
        self, write: bool, device: str, now: float = 0.0
    ) -> Optional[IOOutcome]:
        """Verdict for one device read/write; ``None`` means no fault."""
        if self.suspended:
            return None
        cfg = self.config
        self.op_index += 1
        draw = self._rng.random()
        self._note_scheduled_windows(device, now)
        error_rate = cfg.write_error_rate if write else cfg.read_error_rate
        if draw < error_rate:
            kind = FaultKind.WRITE_ERROR if write else FaultKind.READ_ERROR
            self._record(kind, device)
            return IOOutcome(kind)
        if draw < error_rate + cfg.latency_spike_rate:
            mult = cfg.latency_spike_multiplier
            self._record(
                FaultKind.LATENCY_SPIKE, device, detail=f"x{mult:g}"
            )
            return IOOutcome(FaultKind.LATENCY_SPIKE, multiplier=mult)
        edge = error_rate + cfg.latency_spike_rate
        if draw < edge + cfg.brownout_rate:
            # Open (or extend) a random brownout window from this op.
            self._brownout_until = now + cfg.brownout_duration_s
            self._brownout_fraction = cfg.brownout_bandwidth_fraction
            self._record(
                FaultKind.BROWNOUT,
                device,
                detail=(
                    f"opened+{cfg.brownout_duration_s:g}s "
                    f"x{cfg.brownout_bandwidth_fraction:g}"
                ),
            )
        elif (
            draw < edge + cfg.brownout_rate + cfg.stall_rate
            and self._stall_ops_left == 0
        ):
            self._stall_ops_left = cfg.stall_burst_ops
            self._record(
                FaultKind.STALL, device, detail=f"burst={cfg.stall_burst_ops}"
            )
        # Ongoing degraded-service conditions surcharge the op even when
        # this op's draw fired nothing itself.
        if self._stall_ops_left > 0:
            self._stall_ops_left -= 1
            self.stalled_ops += 1
            return IOOutcome(FaultKind.STALL)
        if self.brownout_active(now):
            return IOOutcome(
                FaultKind.BROWNOUT, multiplier=1.0 / self._active_fraction
            )
        return None

    def allocation_fault(
        self, device: str, requested: int = 0, now: float = 0.0
    ) -> bool:
        """Should this H2 region allocation hit a device-full condition?"""
        if self.suspended:
            return False
        self.op_index += 1
        draw = self._rng.random()
        self._note_scheduled_windows(device, now)
        if draw < self.config.device_full_rate:
            self._record(
                FaultKind.DEVICE_FULL, device, detail=f"{requested}B"
            )
            return True
        if self.config.brownout_denies_alloc and self.brownout_active(now):
            self._record(
                FaultKind.DEVICE_FULL,
                device,
                detail=f"brownout {requested}B",
            )
            return True
        return False

    def page_fault_outcome(self, device: str, address: int) -> bool:
        """Should this faulting mapped access take a simulated SIGBUS?"""
        if self.suspended:
            return False
        self.op_index += 1
        if self._rng.random() < self.config.sigbus_rate:
            self._record(FaultKind.SIGBUS, device, detail=f"{address:#x}")
            return True
        return False

    # ------------------------------------------------------------------
    # Crash scheduling (FaultKind.CRASH)
    # ------------------------------------------------------------------
    def crash_batch_cut(self, safepoint: str, npages: int) -> Optional[int]:
        """Should the process die at this safepoint visit — and where?

        Returns ``None`` (no crash) or the torn-write cut ``c`` in
        ``[0, npages]``: the first ``c`` pages of the in-flight batch
        land on the device; if ``c < npages`` the page at the cut is
        torn; everything after never reaches the device.  Visits are
        counted per safepoint so ``crash_point``/``crash_after`` target
        the N-th occurrence deterministically; ``crash_rate`` draws from
        the crash RNG, never the I/O stream.  Suspended queries neither
        count nor draw, mirroring :meth:`suspend`'s guarantee.
        """
        if self.suspended or self.crashed:
            return None
        cfg = self.config
        if (
            cfg.crash_point is None
            and cfg.crash_stage is None
            and cfg.crash_rate <= 0.0
        ):
            return None
        hits = self.safepoint_hits.get(safepoint, 0) + 1
        self.safepoint_hits[safepoint] = hits
        fire = (
            cfg.crash_point == safepoint and hits == cfg.crash_after
        )
        if not fire and cfg.crash_stage is not None:
            fire = (
                safepoint == f"task:{cfg.crash_stage}"
                and hits == cfg.crash_task
            )
        if not fire and cfg.crash_rate > 0.0:
            fire = self._crash_rng.random() < cfg.crash_rate
        if not fire:
            return None
        if cfg.crash_cut is not None:
            cut = max(0, min(cfg.crash_cut, npages))
        else:
            cut = self._crash_rng.randint(0, npages)
        self.crashed = True
        self._record(
            FaultKind.CRASH,
            "process",
            detail=f"{safepoint}#{hits} cut={cut}/{npages}",
        )
        return cut

    def crash_outcome(self, safepoint: str) -> bool:
        """Non-batch safepoint: kill here?  (No pages in flight.)"""
        return self.crash_batch_cut(safepoint, 0) is not None

    # ------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def schedule_digest(self) -> str:
        """Canonical text form of the schedule, for byte-identity checks."""
        return "\n".join(record.line() for record in self.schedule)
