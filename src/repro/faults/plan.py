"""Deterministic, seed-driven fault plans.

A :class:`FaultPlan` decides — one pseudo-random draw per queried
operation — whether a device access, region allocation or page fault
should fail, and how.  Because the simulator issues device operations in
a deterministic order, the same seed always produces the *byte-identical*
fault schedule, which is what makes fault-injection runs reproducible and
lets tests assert on exact final clock totals.

The plan models the failure modes real NVMe/NVM deployments hit
(Section 4.2 of the paper motivates why the H2 path must survive them):

- transient read/write I/O errors (correctable media errors, timeouts);
- latency spikes (device-internal GC, thermal throttling);
- device-full conditions on H2 region allocation;
- SIGBUS on page faults through the H2 file mapping (an I/O error
  surfacing through the kernel's fault handler rather than a syscall).
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random
from typing import Dict, Iterator, List, Optional


class FaultKind(enum.Enum):
    """The injectable failure modes."""

    READ_ERROR = "read_error"
    WRITE_ERROR = "write_error"
    LATENCY_SPIKE = "latency_spike"
    DEVICE_FULL = "device_full"
    SIGBUS = "sigbus"
    CRASH = "crash"


@dataclass
class FaultConfig:
    """Parameters of a fault plan plus the resilience policy around it.

    Rates are per *queried operation* probabilities in [0, 1].  Backoff
    delays are simulated seconds charged to the VM clock, so retry stalls
    show up in the paper-style execution breakdown like any other cost.
    """

    seed: int = 42
    #: independent seed for the fault/crash schedule; ``None`` derives it
    #: from ``seed`` (the workload seed), preserving the old coupling
    fault_seed: Optional[int] = None
    #: transient error probability per device read / write
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    #: latency-spike probability per device access, and the multiplier
    #: applied to the access cost when one fires
    latency_spike_rate: float = 0.0
    latency_spike_multiplier: float = 8.0
    #: device-full probability per H2 region allocation
    device_full_rate: float = 0.0
    #: simulated-SIGBUS probability per faulting mapped access
    sigbus_rate: float = 0.0
    # --- retry policy -------------------------------------------------
    #: total attempts (first try + retries) before an op counts as failed
    max_attempts: int = 4
    #: first backoff delay in simulated seconds; doubles per retry
    backoff_base: float = 100e-6
    backoff_factor: float = 2.0
    # --- degradation --------------------------------------------------
    #: failed operations (retry exhaustions + device-full denials)
    #: tolerated before H2 transfers are disabled
    failure_budget: int = 3
    #: whether exceeding the budget degrades (False: keep limping along)
    degrade: bool = True
    # --- crash scheduling ----------------------------------------------
    #: named safepoint to kill the process at ("promotion_flush",
    #: "h2_flush", "region_metadata_update", "major_compact",
    #: "epoch_commit", "msync", "writeback"); ``None`` disables targeting
    crash_point: Optional[str] = None
    #: which visit of ``crash_point`` fires the kill (1 = first)
    crash_after: int = 1
    #: additionally, per-safepoint-visit crash probability (seed sweeps)
    crash_rate: float = 0.0
    #: pin the torn-write cut of a crashed batch (pages that land before
    #: the kill); ``None`` draws it from the crash RNG
    crash_cut: Optional[int] = None


@dataclass
class FaultRecord:
    """One injected fault, as scheduled by the plan."""

    op_index: int
    kind: FaultKind
    device: str
    detail: str = ""

    def line(self) -> str:
        return f"{self.op_index}\t{self.kind.value}\t{self.device}\t{self.detail}"


@dataclass
class IOOutcome:
    """The plan's verdict for one device access."""

    kind: FaultKind
    multiplier: float = 1.0


class FaultPlan:
    """Seed-driven fault schedule, advanced one draw per queried op."""

    def __init__(self, config: FaultConfig):
        self.config = config
        seed = config.seed if config.fault_seed is None else config.fault_seed
        self._rng = Random(seed)
        # Crash scheduling draws from its own stream so arming (or
        # re-seeding) crashes never perturbs the I/O fault schedule.
        self._crash_rng = Random(seed ^ 0x5C4A_11ED)
        self.op_index = 0
        self.schedule: List[FaultRecord] = []
        self.injected: Dict[FaultKind, int] = {k: 0 for k in FaultKind}
        self._suspended = 0
        #: visits per crash safepoint (deterministic given the workload)
        self.safepoint_hits: Dict[str, int] = {}
        self.crashed = False

    # ------------------------------------------------------------------
    @property
    def suspended(self) -> bool:
        return self._suspended > 0

    @contextmanager
    def suspend(self) -> Iterator[None]:
        """Disable injection for a forced (already-degraded) operation.

        Suspended queries do not consume random draws, so a fallback
        re-execution never perturbs the schedule of later operations.
        """
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    # ------------------------------------------------------------------
    def _record(self, kind: FaultKind, device: str, detail: str = "") -> None:
        self.injected[kind] += 1
        self.schedule.append(
            FaultRecord(self.op_index, kind, device, detail)
        )

    def io_outcome(self, write: bool, device: str) -> Optional[IOOutcome]:
        """Verdict for one device read/write; ``None`` means no fault."""
        if self.suspended:
            return None
        cfg = self.config
        self.op_index += 1
        draw = self._rng.random()
        error_rate = cfg.write_error_rate if write else cfg.read_error_rate
        if draw < error_rate:
            kind = FaultKind.WRITE_ERROR if write else FaultKind.READ_ERROR
            self._record(kind, device)
            return IOOutcome(kind)
        if draw < error_rate + cfg.latency_spike_rate:
            mult = cfg.latency_spike_multiplier
            self._record(
                FaultKind.LATENCY_SPIKE, device, detail=f"x{mult:g}"
            )
            return IOOutcome(FaultKind.LATENCY_SPIKE, multiplier=mult)
        return None

    def allocation_fault(self, device: str, requested: int = 0) -> bool:
        """Should this H2 region allocation hit a device-full condition?"""
        if self.suspended:
            return False
        self.op_index += 1
        if self._rng.random() < self.config.device_full_rate:
            self._record(
                FaultKind.DEVICE_FULL, device, detail=f"{requested}B"
            )
            return True
        return False

    def page_fault_outcome(self, device: str, address: int) -> bool:
        """Should this faulting mapped access take a simulated SIGBUS?"""
        if self.suspended:
            return False
        self.op_index += 1
        if self._rng.random() < self.config.sigbus_rate:
            self._record(FaultKind.SIGBUS, device, detail=f"{address:#x}")
            return True
        return False

    # ------------------------------------------------------------------
    # Crash scheduling (FaultKind.CRASH)
    # ------------------------------------------------------------------
    def crash_batch_cut(self, safepoint: str, npages: int) -> Optional[int]:
        """Should the process die at this safepoint visit — and where?

        Returns ``None`` (no crash) or the torn-write cut ``c`` in
        ``[0, npages]``: the first ``c`` pages of the in-flight batch
        land on the device; if ``c < npages`` the page at the cut is
        torn; everything after never reaches the device.  Visits are
        counted per safepoint so ``crash_point``/``crash_after`` target
        the N-th occurrence deterministically; ``crash_rate`` draws from
        the crash RNG, never the I/O stream.  Suspended queries neither
        count nor draw, mirroring :meth:`suspend`'s guarantee.
        """
        if self.suspended or self.crashed:
            return None
        cfg = self.config
        if cfg.crash_point is None and cfg.crash_rate <= 0.0:
            return None
        hits = self.safepoint_hits.get(safepoint, 0) + 1
        self.safepoint_hits[safepoint] = hits
        fire = (
            cfg.crash_point == safepoint and hits == cfg.crash_after
        )
        if not fire and cfg.crash_rate > 0.0:
            fire = self._crash_rng.random() < cfg.crash_rate
        if not fire:
            return None
        if cfg.crash_cut is not None:
            cut = max(0, min(cfg.crash_cut, npages))
        else:
            cut = self._crash_rng.randint(0, npages)
        self.crashed = True
        self._record(
            FaultKind.CRASH,
            "process",
            detail=f"{safepoint}#{hits} cut={cut}/{npages}",
        )
        return cut

    def crash_outcome(self, safepoint: str) -> bool:
        """Non-batch safepoint: kill here?  (No pages in flight.)"""
        return self.crash_batch_cut(safepoint, 0) is not None

    # ------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def schedule_digest(self) -> str:
        """Canonical text form of the schedule, for byte-identity checks."""
        return "\n".join(record.line() for record in self.schedule)
