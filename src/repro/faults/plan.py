"""Deterministic, seed-driven fault plans.

A :class:`FaultPlan` decides — one pseudo-random draw per queried
operation — whether a device access, region allocation or page fault
should fail, and how.  Because the simulator issues device operations in
a deterministic order, the same seed always produces the *byte-identical*
fault schedule, which is what makes fault-injection runs reproducible and
lets tests assert on exact final clock totals.

The plan models the failure modes real NVMe/NVM deployments hit
(Section 4.2 of the paper motivates why the H2 path must survive them):

- transient read/write I/O errors (correctable media errors, timeouts);
- latency spikes (device-internal GC, thermal throttling);
- device-full conditions on H2 region allocation;
- SIGBUS on page faults through the H2 file mapping (an I/O error
  surfacing through the kernel's fault handler rather than a syscall).
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random
from typing import Dict, Iterator, List, Optional


class FaultKind(enum.Enum):
    """The injectable failure modes."""

    READ_ERROR = "read_error"
    WRITE_ERROR = "write_error"
    LATENCY_SPIKE = "latency_spike"
    DEVICE_FULL = "device_full"
    SIGBUS = "sigbus"


@dataclass
class FaultConfig:
    """Parameters of a fault plan plus the resilience policy around it.

    Rates are per *queried operation* probabilities in [0, 1].  Backoff
    delays are simulated seconds charged to the VM clock, so retry stalls
    show up in the paper-style execution breakdown like any other cost.
    """

    seed: int = 42
    #: transient error probability per device read / write
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    #: latency-spike probability per device access, and the multiplier
    #: applied to the access cost when one fires
    latency_spike_rate: float = 0.0
    latency_spike_multiplier: float = 8.0
    #: device-full probability per H2 region allocation
    device_full_rate: float = 0.0
    #: simulated-SIGBUS probability per faulting mapped access
    sigbus_rate: float = 0.0
    # --- retry policy -------------------------------------------------
    #: total attempts (first try + retries) before an op counts as failed
    max_attempts: int = 4
    #: first backoff delay in simulated seconds; doubles per retry
    backoff_base: float = 100e-6
    backoff_factor: float = 2.0
    # --- degradation --------------------------------------------------
    #: failed operations (retry exhaustions + device-full denials)
    #: tolerated before H2 transfers are disabled
    failure_budget: int = 3
    #: whether exceeding the budget degrades (False: keep limping along)
    degrade: bool = True


@dataclass
class FaultRecord:
    """One injected fault, as scheduled by the plan."""

    op_index: int
    kind: FaultKind
    device: str
    detail: str = ""

    def line(self) -> str:
        return f"{self.op_index}\t{self.kind.value}\t{self.device}\t{self.detail}"


@dataclass
class IOOutcome:
    """The plan's verdict for one device access."""

    kind: FaultKind
    multiplier: float = 1.0


class FaultPlan:
    """Seed-driven fault schedule, advanced one draw per queried op."""

    def __init__(self, config: FaultConfig):
        self.config = config
        self._rng = Random(config.seed)
        self.op_index = 0
        self.schedule: List[FaultRecord] = []
        self.injected: Dict[FaultKind, int] = {k: 0 for k in FaultKind}
        self._suspended = 0

    # ------------------------------------------------------------------
    @property
    def suspended(self) -> bool:
        return self._suspended > 0

    @contextmanager
    def suspend(self) -> Iterator[None]:
        """Disable injection for a forced (already-degraded) operation.

        Suspended queries do not consume random draws, so a fallback
        re-execution never perturbs the schedule of later operations.
        """
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    # ------------------------------------------------------------------
    def _record(self, kind: FaultKind, device: str, detail: str = "") -> None:
        self.injected[kind] += 1
        self.schedule.append(
            FaultRecord(self.op_index, kind, device, detail)
        )

    def io_outcome(self, write: bool, device: str) -> Optional[IOOutcome]:
        """Verdict for one device read/write; ``None`` means no fault."""
        if self.suspended:
            return None
        cfg = self.config
        self.op_index += 1
        draw = self._rng.random()
        error_rate = cfg.write_error_rate if write else cfg.read_error_rate
        if draw < error_rate:
            kind = FaultKind.WRITE_ERROR if write else FaultKind.READ_ERROR
            self._record(kind, device)
            return IOOutcome(kind)
        if draw < error_rate + cfg.latency_spike_rate:
            mult = cfg.latency_spike_multiplier
            self._record(
                FaultKind.LATENCY_SPIKE, device, detail=f"x{mult:g}"
            )
            return IOOutcome(FaultKind.LATENCY_SPIKE, multiplier=mult)
        return None

    def allocation_fault(self, device: str, requested: int = 0) -> bool:
        """Should this H2 region allocation hit a device-full condition?"""
        if self.suspended:
            return False
        self.op_index += 1
        if self._rng.random() < self.config.device_full_rate:
            self._record(
                FaultKind.DEVICE_FULL, device, detail=f"{requested}B"
            )
            return True
        return False

    def page_fault_outcome(self, device: str, address: int) -> bool:
        """Should this faulting mapped access take a simulated SIGBUS?"""
        if self.suspended:
            return False
        self.op_index += 1
        if self._rng.random() < self.config.sigbus_rate:
            self._record(FaultKind.SIGBUS, device, detail=f"{address:#x}")
            return True
        return False

    # ------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def schedule_digest(self) -> str:
        """Canonical text form of the schedule, for byte-identity checks."""
        return "\n".join(record.line() for record in self.schedule)
