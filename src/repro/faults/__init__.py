"""Fault injection and H2 I/O resilience.

The package has three layers:

- :mod:`~repro.faults.plan` — deterministic seed-driven fault schedules
  (:class:`FaultPlan` / :class:`FaultConfig`);
- :mod:`~repro.faults.injector` — the :class:`FaultInjector` device proxy
  that makes every device in the H2 stack participate;
- :mod:`~repro.faults.policy` — :class:`RetryPolicy` (bounded backoff)
  and :class:`ResiliencePolicy` (failure budget + graceful degradation).

A small process-global registry lets the CLI (``--faults`` / ``--audit``)
arm injection for every VM an experiment builds without threading config
through each ``build_*_vm`` helper: :func:`set_default_fault_config` and
:func:`set_default_audit_level` install defaults that
:class:`~repro.runtime.JavaVM` picks up when its own ``VMConfig`` does
not specify them, and the policies created that way are registered here
so the CLI can print an aggregate summary afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .events import (
    AdoptionEvent,
    CircuitEvent,
    CrashEvent,
    DegradationEvent,
    FaultEvent,
    HealthEvent,
    RecoveryEvent,
    ResilienceLog,
    RestartEvent,
    RetryEvent,
    StallEvent,
)
from .injector import FaultInjector
from .plan import FaultConfig, FaultKind, FaultPlan, FaultRecord, IOOutcome
from .policy import ResiliencePolicy, RetryPolicy, is_transient

__all__ = [
    "FaultConfig",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "IOOutcome",
    "FaultInjector",
    "FaultEvent",
    "RetryEvent",
    "StallEvent",
    "HealthEvent",
    "CircuitEvent",
    "DegradationEvent",
    "CrashEvent",
    "RecoveryEvent",
    "RestartEvent",
    "AdoptionEvent",
    "ResilienceLog",
    "RetryPolicy",
    "ResiliencePolicy",
    "is_transient",
    "set_default_fault_config",
    "get_default_fault_config",
    "set_default_governor_config",
    "get_default_governor_config",
    "set_default_audit_level",
    "get_default_audit_level",
    "registered_policies",
    "registered_auditors",
    "unregister_policy",
    "unregister_auditor",
    "reset_defaults",
    "reset_registries",
    "resilience_summary",
]

_default_fault_config: Optional[FaultConfig] = None
# A GovernorConfig (from repro.config); typed as object to avoid the
# import cycle faults -> config -> faults.
_default_governor_config: Optional[object] = None
_default_audit_level: Optional[str] = None
# Policies/auditors created from the *global* defaults (i.e. by VMs whose
# own config did not ask for them).  Bounded by the number of VMs an
# experiment builds, and cleared by reset_defaults().
_policies: List[ResiliencePolicy] = []
_auditors: List[object] = []
# Counters folded out of registries cleared by reset_registries(), so an
# experiment runner can drop per-cell VM references between configs
# without losing the CLI's end-of-run aggregate.
_summary_totals: Dict[str, float] = {}


def set_default_fault_config(config: Optional[FaultConfig]) -> None:
    """Install the fault config VMs use when theirs is unset."""
    global _default_fault_config
    _default_fault_config = config


def get_default_fault_config() -> Optional[FaultConfig]:
    return _default_fault_config


def set_default_governor_config(config: Optional[object]) -> None:
    """Install the governor config VMs use when theirs is unset."""
    global _default_governor_config
    _default_governor_config = config


def get_default_governor_config() -> Optional[object]:
    return _default_governor_config


def set_default_audit_level(level: Optional[str]) -> None:
    """Install the audit level ("cheap"/"full") VMs use when unset."""
    global _default_audit_level
    _default_audit_level = level


def get_default_audit_level() -> Optional[str]:
    return _default_audit_level


def register_policy(policy: ResiliencePolicy) -> None:
    _policies.append(policy)


def register_auditor(auditor: object) -> None:
    _auditors.append(auditor)


def unregister_policy(policy: ResiliencePolicy) -> None:
    """Drop one VM's policy, folding its counters into the totals first.

    The per-tenant counterpart of :func:`reset_registries`: retiring one
    co-located VM removes only *its* entry, so sibling tenants' policies
    (and their fault schedules and counters) stay registered untouched,
    while the CLI's end-of-run aggregate still includes the dead VM.
    Idempotent — unregistering a policy twice folds it once.
    """
    try:
        _policies.remove(policy)
    except ValueError:
        return
    _summary_totals["faults_injected"] = (
        _summary_totals.get("faults_injected", 0.0)
        + policy.plan.total_injected
    )
    for key, value in policy.log.summary().items():
        _summary_totals[key] = _summary_totals.get(key, 0.0) + value


def unregister_auditor(auditor: object) -> None:
    """Drop one VM's auditor, folding its counters into the totals first.

    Scoped like :func:`unregister_policy`; idempotent."""
    try:
        _auditors.remove(auditor)
    except ValueError:
        return
    _summary_totals["audits_run"] = _summary_totals.get(
        "audits_run", 0.0
    ) + getattr(auditor, "audits_run", 0)
    _summary_totals["invariant_violations"] = _summary_totals.get(
        "invariant_violations", 0.0
    ) + getattr(auditor, "violations_found", 0)


def registered_policies() -> List[ResiliencePolicy]:
    return list(_policies)


def registered_auditors() -> List[object]:
    return list(_auditors)


def reset_defaults() -> None:
    """Clear global defaults, registries and folded totals (teardown)."""
    from ..heap.store import reset_store

    global _default_fault_config, _default_governor_config
    global _default_audit_level
    _default_fault_config = None
    _default_governor_config = None
    _default_audit_level = None
    _policies.clear()
    _auditors.clear()
    _summary_totals.clear()
    reset_store()


def reset_registries() -> None:
    """Drop registered policies/auditors, folding their counters first.

    Experiment runners call this between configs so back-to-back runs in
    one process don't leak *live object references* (and per-VM counters)
    across cells, while :func:`resilience_summary` still reports the
    whole process's aggregate at the end.  The armed defaults stay
    installed — only the per-VM registries are drained.

    This is a *process-level* teardown between experiment cells, not a
    per-tenant lifecycle hook: it resets only the process-default store,
    so co-located VMs built over private ``HeapStore`` instances keep
    their rows, clocks and fault schedules.  Retiring a single tenant
    goes through :func:`unregister_policy` / :func:`unregister_auditor`
    (via ``JavaVM.retire``) instead.
    """
    from ..heap.store import reset_store

    folded = resilience_summary()
    _summary_totals.clear()
    _summary_totals.update(folded)
    _policies.clear()
    _auditors.clear()
    # The *default* object store is process-global like the registries:
    # dropping it restarts the oid counter and releases every column, so
    # back-to-back configs neither leak heap graphs nor inflate oids
    # between cells.  Private per-tenant stores are untouched.
    reset_store()


def _empty_totals() -> Dict[str, float]:
    return {
        "faults_injected": 0.0,
        "faults_seen": 0.0,
        "ops_retried": 0.0,
        "retry_exhaustions": 0.0,
        "deadline_exhaustions": 0.0,
        "degradations": 0.0,
        "backoff_seconds": 0.0,
        "stall_seconds": 0.0,
        "health_transitions": 0.0,
        "circuit_transitions": 0.0,
        "crashes": 0.0,
        "recoveries": 0.0,
        "restarts": 0.0,
        "regions_recovered": 0.0,
        "regions_quarantined": 0.0,
        "blocks_adopted": 0.0,
        "blocks_quarantined": 0.0,
        "blocks_lost": 0.0,
        "blocks_recomputed": 0.0,
        "audits_run": 0.0,
        "invariant_violations": 0.0,
    }


def resilience_summary() -> Dict[str, float]:
    """Aggregate counters across every registered policy and auditor,
    plus anything folded in by earlier :func:`reset_registries` calls."""
    totals = _empty_totals()
    for key, value in _summary_totals.items():
        totals[key] = totals.get(key, 0.0) + value
    for policy in _policies:
        totals["faults_injected"] += policy.plan.total_injected
        for key, value in policy.log.summary().items():
            totals[key] = totals.get(key, 0.0) + value
    for auditor in _auditors:
        totals["audits_run"] += getattr(auditor, "audits_run", 0)
        totals["invariant_violations"] += getattr(
            auditor, "violations_found", 0
        )
    return totals
