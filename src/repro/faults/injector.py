"""The fault-injecting device wrapper.

A :class:`FaultInjector` fronts any :class:`~repro.devices.base.Device`
and consults a :class:`~repro.faults.plan.FaultPlan` on every read and
write.  Because the page cache, the memory mapping and the promotion
buffers all talk to "the device" through the same two methods, wrapping
one object makes every layer of the H2 I/O stack participate in fault
injection without per-device code — NVMe, NVM, the mmap fault path and
page-cache writeback all inherit it.

Cost accounting on faults mirrors real hardware: a failed request still
costs the device's access latency (the request travelled to the device
and came back with an error), a latency spike charges the access at
``multiplier`` times its normal cost, a brownout window surcharges every
op by the inverse of the remaining service fraction, and a stall burst
parks each op for a fixed delay.

The injector is also the feed point of the
:class:`~repro.devices.health.DeviceHealthMonitor`: every completed op
reports (actual cost, nominal cost) — the clean device cost returned by
the wrapped device is the nominal, so no cost-model duplication — and
every injected error reports an SLO violation.
"""

from __future__ import annotations

from typing import Optional

from ..devices.base import AccessPattern, Device
from ..errors import DeviceIOError
from .events import ResilienceLog
from .plan import FaultKind, FaultPlan


class FaultInjector:
    """Proxy device: delegates everything, injects faults on read/write."""

    def __init__(
        self,
        inner: Device,
        plan: FaultPlan,
        log: Optional[ResilienceLog] = None,
        monitor=None,
    ):
        self.inner = inner
        self.plan = plan
        self.log = log if log is not None else ResilienceLog()
        #: optional :class:`~repro.devices.health.DeviceHealthMonitor`
        self.monitor = monitor

    # ------------------------------------------------------------------
    # Device protocol
    # ------------------------------------------------------------------
    @property
    def clock(self):
        return self.inner.clock

    @clock.setter
    def clock(self, value) -> None:
        self.inner.clock = value

    def _fail(self, op: str, latency: float, requests: int) -> None:
        """Charge a failed attempt and raise the transient I/O error."""
        kind = FaultKind.READ_ERROR if op == "read" else FaultKind.WRITE_ERROR
        cost = latency * max(requests, 1)
        self.inner.clock.charge(cost)
        self.log.record_fault(
            self.inner.clock.now, self.inner.name, op, kind.value
        )
        if self.monitor is not None:
            self.monitor.observe_error(self.inner.name, op)
        raise DeviceIOError(
            f"injected transient {op} error on {self.inner.name}",
            device=self.inner.name,
            op=op,
            transient=True,
        )

    def _spike(self, op: str, base_cost: float, multiplier: float) -> float:
        """Charge the latency-spike surcharge on top of a completed op."""
        extra = base_cost * (multiplier - 1.0)
        self.inner.clock.charge(extra)
        self.log.record_fault(
            self.inner.clock.now,
            self.inner.name,
            op,
            FaultKind.LATENCY_SPIKE.value,
            detail=f"x{multiplier:g}",
        )
        return extra

    def _brownout(self, base_cost: float, multiplier: float) -> float:
        """Charge the degraded-service surcharge of a brownout window.

        Not logged per-op (the plan records each window once when it
        opens); a window covers many ops and the per-op signal belongs
        to the health monitor, not the fault log.
        """
        extra = base_cost * (multiplier - 1.0)
        self.inner.clock.charge(extra)
        return extra

    def _stall(self, op: str) -> float:
        """Park this op for the configured stall-burst delay."""
        extra = self.plan.config.stall_seconds
        self.inner.clock.charge(extra)
        self.log.record_stall(
            self.inner.clock.now, self.inner.name, op, extra
        )
        return extra

    def _observe(
        self, op: str, nbytes: int, actual: float, nominal: float
    ) -> None:
        if self.monitor is not None:
            self.monitor.observe(self.inner.name, op, nbytes, actual, nominal)

    def read(
        self,
        nbytes: int,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        requests: int = 1,
    ) -> float:
        outcome = self.plan.io_outcome(
            write=False, device=self.inner.name, now=self.inner.clock.now
        )
        if outcome is not None and outcome.kind is FaultKind.READ_ERROR:
            self._fail("read", self.inner.read_latency, requests)
        cost = self.inner.read(nbytes, pattern, requests)
        extra = 0.0
        if outcome is not None:
            if outcome.kind is FaultKind.LATENCY_SPIKE:
                extra = self._spike("read", cost, outcome.multiplier)
            elif outcome.kind is FaultKind.BROWNOUT:
                extra = self._brownout(cost, outcome.multiplier)
            elif outcome.kind is FaultKind.STALL:
                extra = self._stall("read")
        self._observe("read", nbytes, cost + extra, cost)
        return cost + extra

    def write(
        self,
        nbytes: int,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        requests: int = 1,
    ) -> float:
        outcome = self.plan.io_outcome(
            write=True, device=self.inner.name, now=self.inner.clock.now
        )
        if outcome is not None and outcome.kind is FaultKind.WRITE_ERROR:
            self._fail("write", self.inner.write_latency, requests)
        cost = self.inner.write(nbytes, pattern, requests)
        extra = 0.0
        if outcome is not None:
            if outcome.kind is FaultKind.LATENCY_SPIKE:
                extra = self._spike("write", cost, outcome.multiplier)
            elif outcome.kind is FaultKind.BROWNOUT:
                extra = self._brownout(cost, outcome.multiplier)
            elif outcome.kind is FaultKind.STALL:
                extra = self._stall("write")
        self._observe("write", nbytes, cost + extra, cost)
        return cost + extra

    def read_modify_write(self, nbytes: int) -> float:
        return self.read(nbytes, AccessPattern.RANDOM) + self.write(
            nbytes, AccessPattern.RANDOM
        )

    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        # Everything else (name, capacity, traffic, page_size, ...) is the
        # wrapped device's business.
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector over {self.inner.name}>"
