"""The fault-injecting device wrapper.

A :class:`FaultInjector` fronts any :class:`~repro.devices.base.Device`
and consults a :class:`~repro.faults.plan.FaultPlan` on every read and
write.  Because the page cache, the memory mapping and the promotion
buffers all talk to "the device" through the same two methods, wrapping
one object makes every layer of the H2 I/O stack participate in fault
injection without per-device code — NVMe, NVM, the mmap fault path and
page-cache writeback all inherit it.

Cost accounting on faults mirrors real hardware: a failed request still
costs the device's access latency (the request travelled to the device
and came back with an error), and a latency spike charges the access at
``multiplier`` times its normal cost.
"""

from __future__ import annotations

from typing import Optional

from ..devices.base import AccessPattern, Device
from ..errors import DeviceIOError
from .events import ResilienceLog
from .plan import FaultKind, FaultPlan


class FaultInjector:
    """Proxy device: delegates everything, injects faults on read/write."""

    def __init__(
        self,
        inner: Device,
        plan: FaultPlan,
        log: Optional[ResilienceLog] = None,
    ):
        self.inner = inner
        self.plan = plan
        self.log = log if log is not None else ResilienceLog()

    # ------------------------------------------------------------------
    # Device protocol
    # ------------------------------------------------------------------
    @property
    def clock(self):
        return self.inner.clock

    @clock.setter
    def clock(self, value) -> None:
        self.inner.clock = value

    def _fail(self, op: str, latency: float, requests: int) -> None:
        """Charge a failed attempt and raise the transient I/O error."""
        kind = FaultKind.READ_ERROR if op == "read" else FaultKind.WRITE_ERROR
        cost = latency * max(requests, 1)
        self.inner.clock.charge(cost)
        self.log.record_fault(
            self.inner.clock.now, self.inner.name, op, kind.value
        )
        raise DeviceIOError(
            f"injected transient {op} error on {self.inner.name}",
            device=self.inner.name,
            op=op,
            transient=True,
        )

    def _spike(self, op: str, base_cost: float, multiplier: float) -> float:
        """Charge the latency-spike surcharge on top of a completed op."""
        extra = base_cost * (multiplier - 1.0)
        self.inner.clock.charge(extra)
        self.log.record_fault(
            self.inner.clock.now,
            self.inner.name,
            op,
            FaultKind.LATENCY_SPIKE.value,
            detail=f"x{multiplier:g}",
        )
        return extra

    def read(
        self,
        nbytes: int,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        requests: int = 1,
    ) -> float:
        outcome = self.plan.io_outcome(write=False, device=self.inner.name)
        if outcome is not None and outcome.kind is FaultKind.READ_ERROR:
            self._fail("read", self.inner.read_latency, requests)
        cost = self.inner.read(nbytes, pattern, requests)
        if outcome is not None and outcome.kind is FaultKind.LATENCY_SPIKE:
            cost += self._spike("read", cost, outcome.multiplier)
        return cost

    def write(
        self,
        nbytes: int,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        requests: int = 1,
    ) -> float:
        outcome = self.plan.io_outcome(write=True, device=self.inner.name)
        if outcome is not None and outcome.kind is FaultKind.WRITE_ERROR:
            self._fail("write", self.inner.write_latency, requests)
        cost = self.inner.write(nbytes, pattern, requests)
        if outcome is not None and outcome.kind is FaultKind.LATENCY_SPIKE:
            cost += self._spike("write", cost, outcome.multiplier)
        return cost

    def read_modify_write(self, nbytes: int) -> float:
        return self.read(nbytes, AccessPattern.RANDOM) + self.write(
            nbytes, AccessPattern.RANDOM
        )

    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        # Everything else (name, capacity, traffic, page_size, ...) is the
        # wrapped device's business.
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector over {self.inner.name}>"
