"""Retry and degradation policies around the H2 I/O path.

:class:`RetryPolicy` wraps an operation in a bounded exponential-backoff
retry loop; backoff stalls are charged to the simulated clock (in the
caller's current bucket, so a retry during major GC shows up as major-GC
time, exactly where a real safepoint stall would land).  Delays carry
seeded jitter (so a hostile fault plan cannot lock retry convoys into
step) and the loop additionally respects a total-elapsed-backoff
deadline: a plan that keeps an op failing cannot make it spin
arbitrarily long — the deadline declares the op exhausted and the
failure budget takes over.

:class:`ResiliencePolicy` owns the whole resilience state of one VM: the
fault plan, the injector-shared event log, the retry policy, and the
degradation switch.  After ``failure_budget`` failed operations (retry
exhaustions and device-full denials), H2 transfers are disabled — the
collector stops selecting movers and objects fall back to the in-H1
serialization path, the paper's baseline.
"""

from __future__ import annotations

from random import Random
from typing import Callable, List, TypeVar

from ..clock import Clock
from ..errors import DegradationError, DeviceIOError, SegmentationFault
from .events import ResilienceLog
from .injector import FaultInjector
from .plan import FaultConfig, FaultPlan

T = TypeVar("T")


def is_transient(exc: BaseException) -> bool:
    """Retryable faults: transient device errors and simulated SIGBUS."""
    if isinstance(exc, DeviceIOError):
        return exc.transient
    if isinstance(exc, SegmentationFault):
        return exc.sigbus
    return False


class RetryPolicy:
    """Bounded, jittered exponential backoff with clock-charged delays."""

    def __init__(self, config: FaultConfig, clock: Clock, log: ResilienceLog):
        self.config = config
        self.clock = clock
        self.log = log
        # Jitter draws from its own stream (never the fault plan's), so
        # enabling jitter cannot perturb the fault schedule — the same
        # seed still produces the byte-identical schedule digest.
        seed = config.seed if config.fault_seed is None else config.fault_seed
        self._jitter_rng = Random(seed ^ 0x0BAC_C0FF)

    def _jittered(self, delay: float) -> float:
        jitter = self.config.backoff_jitter
        if jitter <= 0.0:
            return delay
        return delay * (1.0 + jitter * (2.0 * self._jitter_rng.random() - 1.0))

    def call(self, op: str, fn: Callable[[], T]) -> T:
        """Run ``fn``, retrying transient faults up to ``max_attempts``.

        Raises the last fault once attempts (or the total-backoff
        deadline) are exhausted; the caller (:class:`ResiliencePolicy`)
        decides what exhaustion means.
        """
        cfg = self.config
        failures = 0
        delay = cfg.backoff_base
        spent = 0.0
        while True:
            try:
                result = fn()
            except (DeviceIOError, SegmentationFault) as exc:
                if not is_transient(exc):
                    raise
                failures += 1
                if failures >= cfg.max_attempts:
                    self.log.record_retry(
                        self.clock.now,
                        op,
                        failures,
                        spent,
                        success=False,
                        reason="attempts",
                    )
                    raise
                step = self._jittered(delay)
                if (
                    cfg.retry_deadline is not None
                    and spent + step > cfg.retry_deadline
                ):
                    # Spending the next delay would blow the total-elapsed
                    # cap: give up now instead of spinning — the op counts
                    # as exhausted-by-deadline against the failure budget.
                    self.log.record_retry(
                        self.clock.now,
                        op,
                        failures,
                        spent,
                        success=False,
                        reason="deadline",
                    )
                    raise
                # Back off before the next attempt; the stall is simulated
                # time in the caller's current bucket.
                self.clock.charge(step)
                spent += step
                delay *= cfg.backoff_factor
                continue
            if failures:
                self.log.record_retry(
                    self.clock.now, op, failures, spent, success=True
                )
            return result


class ResiliencePolicy:
    """One VM's fault plan + retry loop + graceful-degradation switch."""

    def __init__(self, config: FaultConfig, clock: Clock):
        self.config = config
        self.clock = clock
        self.plan = FaultPlan(config)
        self.log = ResilienceLog()
        self.retry = RetryPolicy(config, clock, self.log)
        #: failed operations so far (retry exhaustions + device-full)
        self.failures = 0
        self.degraded = False
        #: optional :class:`~repro.devices.health.DeviceHealthMonitor`
        #: that every wrapped device feeds
        self.monitor = None
        self._injectors: List[FaultInjector] = []

    # ------------------------------------------------------------------
    def wrap_device(self, device) -> FaultInjector:
        """Front ``device`` with this policy's fault plan and event log."""
        injector = FaultInjector(
            device, self.plan, self.log, monitor=self.monitor
        )
        self._injectors.append(injector)
        return injector

    def attach_monitor(self, monitor) -> None:
        """Feed a health monitor from every (current and future) injector."""
        self.monitor = monitor
        for injector in self._injectors:
            injector.monitor = monitor

    # ------------------------------------------------------------------
    def run(self, op: str, fn: Callable[[], T]) -> T:
        """Execute ``fn`` with retries; degrade instead of aborting.

        When retries are exhausted the failure is charged against the
        budget and the operation re-runs once with injection suspended —
        modelling the slow recovery path (kernel-level retry, device
        reset) that eventually completes so a single hot fault cannot
        abort a whole run.
        """
        try:
            return self.retry.call(op, fn)
        except (DeviceIOError, SegmentationFault) as exc:
            if not is_transient(exc):
                raise
            self.note_failure(op, exc)
            with self.plan.suspend():
                return fn()

    def note_failure(self, op: str, exc: BaseException) -> None:
        """Count one failed operation; trip degradation past the budget."""
        self.failures += 1
        if (
            self.config.degrade
            and not self.degraded
            and self.failures >= self.config.failure_budget
        ):
            self.degraded = True
            reason = f"{op}: {exc}"
            self.log.record_degradation(self.clock.now, reason, self.failures)
            self.clock.record_event("h2_degraded", 0.0)

    # ------------------------------------------------------------------
    @property
    def transfers_enabled(self) -> bool:
        return not self.degraded

    def check_transfer_allowed(self) -> None:
        """Guard H2 placement paths: transfers must not run degraded."""
        if self.degraded:
            raise DegradationError(
                f"H2 transfers disabled after {self.failures} I/O failures; "
                "objects fall back to the in-H1 serialization path"
            )

    def degradation_context(self) -> str:
        """The fallback description OOM errors must report when degraded."""
        if not self.degraded:
            return ""
        return (
            f"H2 degraded after {self.failures} I/O failures; transfers "
            "disabled, cached data held in H1 via the serialization "
            "fallback path"
        )
