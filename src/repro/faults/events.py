"""Structured resilience events: faults seen, retries spent, degradations.

Everything the fault/retry/degradation machinery does is logged here so
experiment reports can assert statements like "N faults injected, M ops
retried, K degraded, 0 invariant violations" (the acceptance shape of a
resilient run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class FaultEvent:
    """One fault observed at a device or mapping boundary."""

    time: float
    device: str
    op: str
    kind: str
    detail: str = ""


@dataclass
class RetryEvent:
    """One completed retry loop around an H2 operation.

    ``reason`` names why an unsuccessful loop gave up: ``"attempts"``
    (max_attempts reached) or ``"deadline"`` (the total-elapsed-backoff
    cap would have been exceeded).  Successful loops leave it empty.
    """

    time: float
    op: str
    attempts: int
    delay: float
    success: bool
    reason: str = ""


@dataclass
class StallEvent:
    """One op parked by a stall burst at the device boundary."""

    time: float
    device: str
    op: str
    seconds: float


@dataclass
class HealthEvent:
    """A device-health state transition (HEALTHY/DEGRADED/BROWNOUT)."""

    time: float
    device: str
    old: str
    new: str
    reason: str = ""


@dataclass
class CircuitEvent:
    """An H2 governor circuit transition (CLOSED/DEGRADED/OPEN)."""

    time: float
    old: str
    new: str
    reason: str = ""


@dataclass
class DegradationEvent:
    """H2 transfers were disabled after the failure budget ran out."""

    time: float
    reason: str
    failures: int


@dataclass
class CrashEvent:
    """The simulated process was killed at a crash safepoint."""

    time: float
    safepoint: str
    detail: str = ""


@dataclass
class RecoveryEvent:
    """An H2 image was recovered after a crash."""

    time: float
    recovered: int
    quarantined: int
    detail: str = ""


@dataclass
class RestartEvent:
    """A successor VM took over a crashed executor's durable image."""

    time: float
    incarnation: int
    detail: str = ""


@dataclass
class AdoptionEvent:
    """One cached block's fate across a crash-restart boundary.

    ``outcome`` is ``"adopted"`` (the block's H2 label survived recovery
    and the rebuilt block manager re-linked it), ``"quarantined"`` (a
    region under its label was quarantined — the block is lost),
    ``"lost"`` (no recovered regions carried its label at all), or
    ``"recomputed"`` (a lost/dropped block was rebuilt from lineage).
    """

    time: float
    label: str
    outcome: str
    detail: str = ""


class ResilienceLog:
    """Accumulates fault/retry/degradation events for one VM."""

    def __init__(self) -> None:
        self.faults: List[FaultEvent] = []
        self.retries: List[RetryEvent] = []
        self.degradations: List[DegradationEvent] = []
        self.crashes: List[CrashEvent] = []
        self.recoveries: List[RecoveryEvent] = []
        self.restarts: List[RestartEvent] = []
        self.adoptions: List[AdoptionEvent] = []
        self.stalls: List[StallEvent] = []
        self.health: List[HealthEvent] = []
        self.circuit: List[CircuitEvent] = []

    # ------------------------------------------------------------------
    def record_fault(
        self, time: float, device: str, op: str, kind: str, detail: str = ""
    ) -> None:
        self.faults.append(FaultEvent(time, device, op, kind, detail))

    def record_retry(
        self,
        time: float,
        op: str,
        attempts: int,
        delay: float,
        success: bool,
        reason: str = "",
    ) -> None:
        self.retries.append(
            RetryEvent(time, op, attempts, delay, success, reason)
        )

    def record_stall(
        self, time: float, device: str, op: str, seconds: float
    ) -> None:
        self.stalls.append(StallEvent(time, device, op, seconds))

    def record_health(
        self, time: float, device: str, old: str, new: str, reason: str = ""
    ) -> None:
        self.health.append(HealthEvent(time, device, old, new, reason))

    def record_circuit(
        self, time: float, old: str, new: str, reason: str = ""
    ) -> None:
        self.circuit.append(CircuitEvent(time, old, new, reason))

    def record_degradation(
        self, time: float, reason: str, failures: int
    ) -> None:
        self.degradations.append(DegradationEvent(time, reason, failures))

    def record_crash(
        self, time: float, safepoint: str, detail: str = ""
    ) -> None:
        self.crashes.append(CrashEvent(time, safepoint, detail))

    def record_recovery(
        self, time: float, recovered: int, quarantined: int, detail: str = ""
    ) -> None:
        self.recoveries.append(
            RecoveryEvent(time, recovered, quarantined, detail)
        )

    def record_restart(
        self, time: float, incarnation: int, detail: str = ""
    ) -> None:
        self.restarts.append(RestartEvent(time, incarnation, detail))

    def record_adoption(
        self, time: float, label: str, outcome: str, detail: str = ""
    ) -> None:
        self.adoptions.append(AdoptionEvent(time, label, outcome, detail))

    def absorb(self, other: "ResilienceLog") -> None:
        """Prepend a predecessor incarnation's history onto this log.

        A successor VM starts with an empty log; absorbing the crashed
        VM's log keeps the incident record (the crash event itself, any
        faults and retries that led up to it) continuous across the
        restart, so reports and traces tell the whole story.
        """
        for attr in (
            "faults",
            "retries",
            "degradations",
            "crashes",
            "recoveries",
            "restarts",
            "adoptions",
            "stalls",
            "health",
            "circuit",
        ):
            mine: List = getattr(self, attr)
            mine[:0] = getattr(other, attr)

    # ------------------------------------------------------------------
    @property
    def faults_seen(self) -> int:
        return len(self.faults)

    @property
    def ops_retried(self) -> int:
        return sum(1 for r in self.retries if r.success)

    @property
    def retry_exhaustions(self) -> int:
        return sum(1 for r in self.retries if not r.success)

    @property
    def degraded_count(self) -> int:
        return len(self.degradations)

    @property
    def crash_count(self) -> int:
        return len(self.crashes)

    @property
    def recovery_count(self) -> int:
        return len(self.recoveries)

    @property
    def restart_count(self) -> int:
        return len(self.restarts)

    def adoption_count(self, outcome: str) -> int:
        return sum(1 for a in self.adoptions if a.outcome == outcome)

    @property
    def regions_recovered(self) -> int:
        return sum(r.recovered for r in self.recoveries)

    @property
    def regions_quarantined(self) -> int:
        return sum(r.quarantined for r in self.recoveries)

    @property
    def stall_seconds(self) -> float:
        return sum(s.seconds for s in self.stalls)

    @property
    def deadline_exhaustions(self) -> int:
        """Retry loops that gave up because the backoff deadline hit."""
        return sum(
            1 for r in self.retries
            if not r.success and r.reason == "deadline"
        )

    @property
    def health_transitions(self) -> int:
        return len(self.health)

    @property
    def circuit_transitions(self) -> int:
        return len(self.circuit)

    def summary(self) -> Dict[str, float]:
        """Flat counters, ready to merge into an experiment result."""
        return {
            "faults_seen": float(self.faults_seen),
            "ops_retried": float(self.ops_retried),
            "retry_exhaustions": float(self.retry_exhaustions),
            "deadline_exhaustions": float(self.deadline_exhaustions),
            "degradations": float(self.degraded_count),
            "backoff_seconds": sum(r.delay for r in self.retries),
            "stall_seconds": self.stall_seconds,
            "crashes": float(self.crash_count),
            "recoveries": float(self.recovery_count),
            "restarts": float(self.restart_count),
            "regions_recovered": float(self.regions_recovered),
            "regions_quarantined": float(self.regions_quarantined),
            "blocks_adopted": float(self.adoption_count("adopted")),
            "blocks_quarantined": float(self.adoption_count("quarantined")),
            "blocks_lost": float(self.adoption_count("lost")),
            "blocks_recomputed": float(self.adoption_count("recomputed")),
            "health_transitions": float(self.health_transitions),
            "circuit_transitions": float(self.circuit_transitions),
        }
