"""Synthetic dataset generators.

Stand-ins for the paper's inputs: SparkBench's data generators (Spark
workloads), the KDD12 dataset (Naive Bayes) and LDBC Graphalytics
``datagen`` graphs (Giraph workloads).  Generators are deterministic per
seed and produce *descriptors* — record counts, sizes and graph topology —
that frameworks materialise as heap objects through the VM.
"""

from .generators import (
    GraphDataset,
    MLDataset,
    TableDataset,
    make_graph,
    make_ml_dataset,
    make_table,
)

__all__ = [
    "GraphDataset",
    "MLDataset",
    "TableDataset",
    "make_graph",
    "make_ml_dataset",
    "make_table",
]
