"""DaCapo-style mutator microbenchmarks (the paper's §4 vehicle).

The paper evaluates its post-write-barrier extension on the DaCapo suite
and reports <=3% overhead *on average across all benchmarks*, and exactly
zero with ``EnableTeraHeap`` off.  This module provides synthetic mutator
profiles spanning DaCapo's behavioural range — pointer-churning,
allocation-heavy, array-streaming, and mixed read-mostly — so the barrier
benchmark can report a suite average rather than a single loop.

Each profile drives a plain :class:`~repro.runtime.JavaVM` (no frameworks)
and returns when its operation budget is spent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..runtime import JavaVM
from ..units import KiB


@dataclass
class MutatorProfile:
    """One synthetic benchmark: a name and a driver function."""

    name: str
    description: str
    run: Callable[[JavaVM, int], None]


def _pointer_churn(vm: JavaVM, operations: int) -> None:
    """xalan/pmd-like: a stable object graph whose edges are rewritten
    constantly — the barrier-heaviest shape."""
    nodes = [vm.allocate(192, name=f"node-{i}") for i in range(128)]
    holder = vm.allocate(2048, refs=nodes, name="graph")
    vm.roots.add(holder)
    for i in range(operations):
        src = nodes[(i * 31) % len(nodes)]
        dst = nodes[(i * 17 + 5) % len(nodes)]
        vm.write_ref(src, dst, remove=src.refs[0] if src.refs else None)
        vm.compute(1)
    vm.roots.remove(holder)


def _allocation_heavy(vm: JavaVM, operations: int) -> None:
    """h2/jython-like: rapid short-lived allocation with a small live set."""
    survivors: List = []
    anchor = vm.allocate(1024, name="anchor")
    vm.roots.add(anchor)
    for i in range(operations):
        obj = vm.allocate(96 + (i % 7) * 32)
        if i % 64 == 0:
            vm.write_ref(anchor, obj, remove=(
                anchor.refs[0] if len(anchor.refs) > 8 else None
            ))
        vm.compute(1)
    vm.roots.remove(anchor)


def _array_streaming(vm: JavaVM, operations: int) -> None:
    """sunflow/lusearch-like: big arrays written and scanned in order,
    few reference stores."""
    buffers = [vm.allocate(8 * KiB, name=f"buf-{i}") for i in range(16)]
    holder = vm.allocate(256, refs=buffers, name="buffers")
    vm.roots.add(holder)
    for i in range(operations):
        vm.read_object(buffers[i % len(buffers)])
        if i % 128 == 0:
            vm.write_ref(holder, buffers[i % len(buffers)])
        vm.compute(2)
    vm.roots.remove(holder)


def _read_mostly(vm: JavaVM, operations: int) -> None:
    """luindex-like: traversals over a static index with rare updates."""
    leaves = [vm.allocate(256) for _ in range(64)]
    inner = [
        vm.allocate(128, refs=leaves[i * 8 : (i + 1) * 8]) for i in range(8)
    ]
    root = vm.allocate(128, refs=inner, name="index")
    vm.roots.add(root)
    for i in range(operations):
        vm.read_object(inner[i % len(inner)])
        vm.read_object(leaves[(i * 13) % len(leaves)])
        if i % 256 == 0:
            vm.write_ref(inner[i % len(inner)], leaves[i % len(leaves)])
        vm.compute(1)
    vm.roots.remove(root)


#: the suite, keyed like DaCapo's benchmark names would be
DACAPO_PROFILES: Dict[str, MutatorProfile] = {
    "xalan": MutatorProfile(
        "xalan", "pointer-churning transform pipeline", _pointer_churn
    ),
    "h2": MutatorProfile(
        "h2", "allocation-heavy transactional workload", _allocation_heavy
    ),
    "sunflow": MutatorProfile(
        "sunflow", "array-streaming renderer", _array_streaming
    ),
    "luindex": MutatorProfile(
        "luindex", "read-mostly index traversal", _read_mostly
    ),
}


def run_profile(vm: JavaVM, name: str, operations: int = 10_000) -> None:
    """Run one profile on ``vm``."""
    DACAPO_PROFILES[name].run(vm, operations)
