"""Deterministic synthetic data generators (graph, ML, tabular)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..units import KiB


@dataclass
class GraphDataset:
    """A directed graph with a power-law degree distribution.

    Models the LDBC ``datagen`` social-network graphs: few very-high-degree
    hubs, many low-degree vertices.  ``out_edges[v]`` lists target vertex
    ids.  ``bytes_per_edge`` calibrates the simulated size of per-vertex
    edge arrays so the dataset's total simulated footprint matches the GB
    figure quoted in the paper's tables.
    """

    num_vertices: int
    out_edges: List[np.ndarray]
    bytes_per_edge: int
    vertex_value_size: int
    seed: int

    @property
    def num_edges(self) -> int:
        return int(sum(len(e) for e in self.out_edges))

    def edge_array_size(self, vertex: int) -> int:
        """Simulated size of a vertex's serialized out-edge array."""
        return max(64, len(self.out_edges[vertex]) * self.bytes_per_edge)

    def total_bytes(self) -> int:
        return (
            sum(self.edge_array_size(v) for v in range(self.num_vertices))
            + self.num_vertices * self.vertex_value_size
        )


def make_graph(
    target_bytes: int,
    num_vertices: int = 4000,
    avg_degree: float = 8.0,
    power: float = 2.1,
    vertex_value_size: int = 96,
    seed: int = 42,
) -> GraphDataset:
    """Generate a power-law graph sized to ``target_bytes`` (simulated).

    Degrees follow a truncated zipf; edge targets are uniform with a bias
    toward low vertex ids (hubs attract edges), giving the skewed message
    volumes that stress Giraph's message stores.
    """
    rng = np.random.default_rng(seed)
    raw = rng.zipf(power, size=num_vertices).astype(np.int64)
    raw = np.minimum(raw, num_vertices // 4)
    degrees = np.maximum(
        1, (raw * (avg_degree / max(raw.mean(), 1e-9))).astype(np.int64)
    )
    out_edges: List[np.ndarray] = []
    for v in range(num_vertices):
        d = int(degrees[v])
        # Bias: half of the edges go to the lowest-id (hub) decile.
        hubs = rng.integers(0, max(num_vertices // 10, 1), size=d // 2)
        rest = rng.integers(0, num_vertices, size=d - d // 2)
        targets = np.unique(np.concatenate([hubs, rest]))
        targets = targets[targets != v]
        if len(targets) == 0:
            targets = np.array([(v + 1) % num_vertices])
        out_edges.append(targets)
    total_edges = int(sum(len(e) for e in out_edges))
    budget = target_bytes - num_vertices * vertex_value_size
    bytes_per_edge = max(8, budget // max(total_edges, 1))
    return GraphDataset(
        num_vertices=num_vertices,
        out_edges=out_edges,
        bytes_per_edge=bytes_per_edge,
        vertex_value_size=vertex_value_size,
        seed=seed,
    )


@dataclass
class MLDataset:
    """A labelled-point dataset for the MLlib-style workloads.

    Materialised as ``num_chunks`` chunk objects of ``chunk_size`` bytes,
    each holding ``records_per_chunk`` points — mirroring Spark's row-batch
    representation of cached training data.
    """

    num_chunks: int
    chunk_size: int
    records_per_chunk: int
    num_features: int
    seed: int

    @property
    def total_bytes(self) -> int:
        return self.num_chunks * self.chunk_size

    @property
    def num_records(self) -> int:
        return self.num_chunks * self.records_per_chunk


def make_ml_dataset(
    target_bytes: int,
    chunk_size: int = 8 * KiB,
    num_features: int = 100,
    seed: int = 7,
) -> MLDataset:
    """Size a chunked labelled-point dataset to ``target_bytes``."""
    num_chunks = max(8, target_bytes // chunk_size)
    record_bytes = 16 + 8 * num_features
    return MLDataset(
        num_chunks=num_chunks,
        chunk_size=chunk_size,
        records_per_chunk=max(1, chunk_size // record_bytes),
        num_features=num_features,
        seed=seed,
    )


@dataclass
class TableDataset:
    """A key/value table for the SQL-style RL (relational) workload."""

    num_chunks: int
    chunk_size: int
    rows_per_chunk: int
    key_cardinality: int
    seed: int

    @property
    def total_bytes(self) -> int:
        return self.num_chunks * self.chunk_size


def make_table(
    target_bytes: int,
    chunk_size: int = 8 * KiB,
    row_bytes: int = 128,
    key_cardinality: int = 1000,
    seed: int = 11,
) -> TableDataset:
    num_chunks = max(8, target_bytes // chunk_size)
    return TableDataset(
        num_chunks=num_chunks,
        chunk_size=chunk_size,
        rows_per_chunk=max(1, chunk_size // row_bytes),
        key_cardinality=key_cardinality,
        seed=seed,
    )
