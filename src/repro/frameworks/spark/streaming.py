"""Block-streaming execution: bounded in-flight memory instead of RDDs.

Whole-RDD evaluation (:meth:`~repro.frameworks.spark.rdd.RDD.evaluate`)
materialises every partition of every lineage stage per task batch, so
the executor's live set grows with the *input*, not with the machine —
the memory pressure that drives the paper's GC wall.  The streaming
executor replaces that with the model popularised by Ray Data and
Spark's own pipelined scans: partition-sized **blocks** flow through the
operator chain one at a time, and the executor never holds more than

    ``max_inflight_blocks * target_block_bytes``

bytes of in-flight data (:attr:`SparkConf.inflight_budget_bytes`).

Admission control: before a new source block is produced, the executor
checks the budget and the memory-pressure signals (H1 occupancy past
``stream_pressure_watermark``, or the H2 governor reporting an
emergency).  Under pressure it applies **operator backpressure**: the
producing slot parks (charged to ``Bucket.ALLOC_STALL``) and one
in-flight block is *spilled* rather than dropped — a raw copy to the H2
device (no S/D; this is TeraHeap's whole point) or, while the governor
circuit is OPEN, a serialized-on-heap holder.  Spilled blocks are read
back at partition assembly; nothing is ever recomputed from lineage.

The trade-off is deliberate and measurable (the ``streamscale``
experiment): per-block dispatch costs are pure overhead when the input
is small enough to fit comfortably, and the win only appears once the
whole-RDD live set starts drowning the collector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...clock import Bucket
from ...heap.object_model import HeapObject
from ...heap.roots import StackFrame
from .rdd import RDD, BlockSpec, MaterializedPartition

#: per-block CSV/trace row fates
FATE_CONSUMED = "consumed"
FATE_PERSISTED = "persisted"
FATE_SPILLED_H2 = "spilled-h2"
FATE_SPILLED_SER = "spilled-ser"


@dataclass
class StreamBlock:
    """One in-flight block: the chunks of a partition slice, pinned."""

    partition: int
    block: int
    num_chunks: int
    chunk_size: int
    scan_factor: float
    frame: Optional[StackFrame]
    chunks: List[HeapObject]
    #: "" while live on-heap, else "h2" (raw device copy) or "ser"
    #: (serialized-on-heap holder)
    spilled: str = ""
    holder: Optional[HeapObject] = None
    #: the executor's per-block report row, updated in place
    row: Optional[dict] = None

    @property
    def size_bytes(self) -> int:
        return self.num_chunks * self.chunk_size


@dataclass
class StreamResult:
    """What one streaming action did, for metrics and acceptance gates."""

    total_bytes: int = 0
    blocks: int = 0
    stages: int = 0
    inflight_bytes: int = 0
    peak_inflight_bytes: int = 0
    backpressure_stalls: int = 0
    stall_seconds: float = 0.0
    forced_admissions: int = 0
    spills_h2: int = 0
    spills_serialized: int = 0
    spill_bytes: int = 0
    unspills: int = 0
    #: downstream dispatch seconds hidden behind mutator progress
    hidden_seconds: float = 0.0
    #: per-block report rows (partition, block, bytes, stalls, fate)
    block_rows: List[dict] = field(default_factory=list)
    #: (sim time, inflight bytes, cumulative spill bytes, cumulative
    #: stalls) samples at every in-flight transition, for trace counters
    counter_samples: List[Tuple[float, int, int, int]] = field(
        default_factory=list
    )

    @property
    def spills(self) -> int:
        return self.spills_h2 + self.spills_serialized


class StreamingExecutor:
    """Drives blocks through an RDD's operator chain under a byte budget."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.vm = ctx.vm
        self.conf = ctx.conf
        self.result = StreamResult()
        #: ``Bucket.OTHER`` total when each downstream stage last ran a
        #: block: the overlap budget — mutator progress the stage's slot
        #: sat idle through — that its next dispatch can hide behind,
        #: exactly like concurrent marking's budget window
        self._stage_other: Dict[int, float] = {}
        #: frames currently open (closed unconditionally on exit)
        self._open_frames: List[StackFrame] = []

    # ------------------------------------------------------------------
    def run(self, rdd: RDD) -> StreamResult:
        """Stream every partition of ``rdd`` through its lineage chain."""
        stages = rdd.lineage_stages()
        self.result.stages = len(stages)
        self._sample()
        try:
            for p_index in range(rdd.num_partitions):
                self.ctx.task_start(rdd, p_index)
                self._run_partition(rdd, stages, p_index)
            self.ctx.task_end()
        finally:
            for frame in list(self._open_frames):
                self._close(frame)
        self._sample()
        return self.result

    def _run_partition(
        self, rdd: RDD, stages: List[RDD], p_index: int
    ) -> None:
        outputs: List[StreamBlock] = []
        source_spec = stages[0].partitions[p_index]
        for bspec in source_spec.block_specs(self.conf.target_block_bytes):
            stalls = self._admit(bspec.size_bytes, outputs)
            blk = self._run_block(stages, p_index, bspec, outputs)
            blk.row = {
                "partition": p_index,
                "block": bspec.block,
                "chunks": blk.num_chunks,
                "bytes": blk.size_bytes,
                "admit_stalls": stalls,
                "fate": FATE_PERSISTED if rdd.persisted else FATE_CONSUMED,
            }
            self.result.block_rows.append(blk.row)
            self.result.blocks += 1
            if rdd.persisted:
                outputs.append(blk)
            else:
                self.result.total_bytes += blk.size_bytes
                self._retire(blk)
        if rdd.persisted:
            part = self._assemble(rdd, p_index, outputs)
            self.ctx.block_manager.store_partition(rdd, p_index, part)
            for blk in outputs:
                self._retire(blk)
            self.result.total_bytes += part.size_bytes
        else:
            # Parity with evaluate(): count the partition descriptor
            # root a whole-RDD materialisation would have produced.
            self.result.total_bytes += max(
                64, 8 * rdd.partitions[p_index].num_chunks
            )

    # ------------------------------------------------------------------
    # Admission control and backpressure
    # ------------------------------------------------------------------
    def _under_pressure(self) -> bool:
        vm = self.vm
        governor = getattr(vm, "governor", None)
        if governor is not None and vm.heap.capacity > 0:
            occupancy = vm.heap.used() / vm.heap.capacity
            if governor.emergency_active(occupancy):
                return True
        if vm.heap.capacity <= 0:
            return False
        occupancy = vm.heap.used() / vm.heap.capacity
        return occupancy >= self.conf.stream_pressure_watermark

    def _admit(self, est_bytes: int, outputs: List[StreamBlock]) -> int:
        """Block the producer until ``est_bytes`` fit, spilling as needed.

        Each backpressure round parks the producing slot for
        ``stream_stall_wait`` (charged to ``Bucket.ALLOC_STALL``), spills
        the oldest spillable in-flight block, and scavenges the freed
        chunks.  A stall round is only charged when it can buy something
        — a spill of our own blocks, a shed through the VM's shared
        pressure path under a governor emergency, or a scavenge when the
        budget itself is exceeded; pure occupancy pressure with nothing
        left to shed returns immediately (the allocator's own slow path
        is the backstop).  After ``stream_max_stall_rounds`` rounds the
        block is force-admitted.  Returns the stall rounds taken.
        """
        conf = self.conf
        result = self.result
        vm = self.vm
        rounds = 0
        while True:
            over = (
                result.inflight_bytes + est_bytes
                > conf.inflight_budget_bytes
            )
            if not over and not self._under_pressure():
                return rounds
            can_spill = any(
                b.frame is not None and not b.spilled for b in outputs
            )
            governor = getattr(vm, "governor", None)
            emergency = (
                governor is not None
                and vm.heap.capacity > 0
                and governor.emergency_active(
                    vm.heap.used() / vm.heap.capacity
                )
            )
            if not over and not can_spill and not emergency:
                return rounds
            if rounds >= conf.stream_max_stall_rounds:
                result.forced_admissions += 1
                return rounds
            rounds += 1
            result.backpressure_stalls += 1
            result.stall_seconds += conf.stream_stall_wait
            vm.clock.charge(conf.stream_stall_wait, Bucket.ALLOC_STALL)
            vm.clock.record_event("stream_stall", conf.stream_stall_wait)
            if can_spill and self._spill_one(outputs):
                # The spilled chunks are garbage now; a scavenge turns
                # them back into allocatable space.
                vm.minor_gc()
            elif emergency:
                # Nothing of ours left to spill: hand the pressure to
                # the VM's shared backpressure path (cache shedding).
                vm.stall_for_capacity(est_bytes)
            else:
                # Over budget with nothing spillable (a block bigger
                # than the budget): scavenge and retry, then force.
                vm.minor_gc()
            self._sample()

    def _spill_one(self, outputs: List[StreamBlock]) -> bool:
        """Spill the oldest live in-flight block; False if none left."""
        for blk in outputs:
            if blk.spilled or blk.frame is None:
                continue
            vm = self.vm
            size = blk.size_bytes
            governor = getattr(vm, "governor", None)
            circuit_open = (
                governor is not None and governor.blocks_h2_caching()
            )
            if vm.h2 is not None and not circuit_open:
                # Raw copy to the device: H2 objects need no S/D, so the
                # cost is a sequential write (plus faults on read-back).
                with vm.clock.context(Bucket.SD_IO):
                    vm.h2.spill_write(size)
                blk.spilled = "h2"
                self.result.spills_h2 += 1
                if blk.row is not None:
                    blk.row["fate"] = FATE_SPILLED_H2
            else:
                # Circuit OPEN (or no H2): the device must not absorb
                # new bytes, so trade GC scan cost for S/D instead —
                # one serialized holder replaces num_chunks live objects.
                vm.serializer.charge_serialize(blk.num_chunks, size)
                blk.holder = vm.allocate(
                    size, name=f"stream-spill-p{blk.partition}-b{blk.block}"
                )
                blk.frame.push(blk.holder)
                blk.spilled = "ser"
                self.result.spills_serialized += 1
                if blk.row is not None:
                    blk.row["fate"] = FATE_SPILLED_SER
            self.result.spill_bytes += size
            if blk.spilled == "h2":
                self._close(blk.frame)
                blk.frame = None
            else:
                # Keep only the holder pinned; the object-graph chunks die.
                blk.frame.objects = [blk.holder]
            blk.chunks = []
            self.result.inflight_bytes -= size
            return True
        return False

    # ------------------------------------------------------------------
    # Block execution
    # ------------------------------------------------------------------
    def _open(self) -> StackFrame:
        frame = self.vm.roots.open_frame()
        self._open_frames.append(frame)
        return frame

    def _close(self, frame: StackFrame) -> None:
        self.vm.roots.close_frame(frame)
        if frame in self._open_frames:
            self._open_frames.remove(frame)

    def _sample(self) -> None:
        result = self.result
        result.counter_samples.append(
            (
                self.vm.clock.now,
                result.inflight_bytes,
                result.spill_bytes,
                result.backpressure_stalls,
            )
        )

    def _alloc_chunks(
        self,
        frame: StackFrame,
        count: int,
        chunk_size: int,
        scan_factor: float,
        name: str,
    ) -> List[HeapObject]:
        vm = self.vm
        chunks = []
        for i in range(count):
            chunk = vm.allocate(chunk_size, name=f"{name}-c{i}")
            chunk.scan_factor = scan_factor
            chunks.append(frame.push(chunk))
        return chunks

    def _run_block(
        self,
        stages: List[RDD],
        p_index: int,
        bspec: BlockSpec,
        outputs: List[StreamBlock],
    ) -> StreamBlock:
        """Drive one source block through every stage of the chain."""
        vm = self.vm
        clock = vm.clock
        cost = vm.cost
        result = self.result
        source = stages[0]
        # Source stage: dispatch is on the critical path (the pipeline
        # cannot start before its first operator does).
        clock.charge(cost.stream_block_dispatch_cost, Bucket.OTHER)
        vm.compute(source.lineage.ops_for_chunks(bspec.num_chunks))
        frame = self._open()
        chunks = self._alloc_chunks(
            frame,
            bspec.num_chunks,
            bspec.chunk_size,
            bspec.scan_factor,
            f"{source.name}-p{p_index}-b{bspec.block}",
        )
        size = bspec.size_bytes
        result.inflight_bytes += size
        result.peak_inflight_bytes = max(
            result.peak_inflight_bytes, result.inflight_bytes
        )
        self._sample()
        for si in range(1, len(stages)):
            stage = stages[si]
            # Downstream dispatch overlaps mutator progress the stage's
            # slot sat through since its previous block — the pipelined
            # share of the per-block tax (clock.overlap, the scalar
            # sibling of the concurrent-marking budget).
            other_now = clock.total(Bucket.OTHER)
            budget = max(
                0.0, other_now - self._stage_other.get(si, other_now)
            )
            result.hidden_seconds += clock.overlap(
                cost.stream_block_dispatch_cost, budget
            )
            for chunk in chunks:
                vm.read_object(chunk)
            vm.compute(stage.lineage.ops_for_chunks(len(chunks)))
            out_spec = stage.partitions[p_index]
            n_out = stage.lineage.output_chunks(len(chunks))
            # The stage's output block must also fit the budget: the
            # input block stays pinned until the output exists, so this
            # is the two-blocks-per-slot moment the budget must cover.
            self._admit(n_out * out_spec.chunk_size, outputs)
            new_frame = self._open()
            out_chunks = self._alloc_chunks(
                new_frame,
                n_out,
                out_spec.chunk_size,
                out_spec.scan_factor,
                f"{stage.name}-p{p_index}-b{bspec.block}",
            )
            self._stage_other[si] = clock.total(Bucket.OTHER)
            out_size = n_out * out_spec.chunk_size
            result.inflight_bytes += out_size
            result.peak_inflight_bytes = max(
                result.peak_inflight_bytes, result.inflight_bytes
            )
            # The upstream block is consumed: retire it immediately —
            # this is the whole trick; evaluate() would have pinned it
            # until the task batch ended.
            self._close(frame)
            result.inflight_bytes -= size
            frame, chunks, size = new_frame, out_chunks, out_size
            self._sample()
        final = stages[-1]
        out_spec = final.partitions[p_index]
        return StreamBlock(
            partition=p_index,
            block=bspec.block,
            num_chunks=len(chunks),
            chunk_size=out_spec.chunk_size,
            scan_factor=out_spec.scan_factor,
            frame=frame,
            chunks=chunks,
        )

    def _retire(self, blk: StreamBlock) -> None:
        if blk.frame is not None:
            self._close(blk.frame)
            blk.frame = None
            if not blk.spilled:
                self.result.inflight_bytes -= blk.size_bytes
        blk.chunks = []
        self._sample()

    # ------------------------------------------------------------------
    # Partition assembly (persisted RDDs)
    # ------------------------------------------------------------------
    def _assemble(
        self, rdd: RDD, p_index: int, outputs: List[StreamBlock]
    ) -> MaterializedPartition:
        """Reunite a partition's blocks (unspilling as needed) for caching.

        Spilled blocks come back without lineage recompute: a raw device
        read for H2 spills, a deserialize for serialized holders.  The
        read-back of both overlaps the assembly's own allocation work
        only implicitly (it is charged in full) — spills are meant to be
        rare, and their visible cost is part of the streaming story.
        """
        vm = self.vm
        result = self.result
        frame = self._open()
        all_chunks: List[HeapObject] = []
        for blk in outputs:
            if blk.spilled == "h2":
                with vm.clock.context(Bucket.SD_IO):
                    vm.h2.spill_read(blk.size_bytes)
                result.unspills += 1
            elif blk.spilled == "ser":
                vm.serializer.charge_deserialize(
                    blk.num_chunks, blk.size_bytes
                )
                result.unspills += 1
            else:
                # Still live: move the chunks to the assembly frame.
                frame.push_all(blk.chunks)
                all_chunks.extend(blk.chunks)
                self._close(blk.frame)
                blk.frame = None
                result.inflight_bytes -= blk.size_bytes
                continue
            chunks = self._alloc_chunks(
                frame,
                blk.num_chunks,
                blk.chunk_size,
                blk.scan_factor,
                f"{rdd.name}-p{p_index}-b{blk.block}-u",
            )
            all_chunks.extend(chunks)
            if blk.frame is not None:
                # Serialized holder: its frame dies with the unspill.
                self._close(blk.frame)
                blk.frame = None
        root = vm.allocate(
            max(64, 8 * len(all_chunks)),
            refs=all_chunks,
            name=f"{rdd.name}-p{p_index}",
        )
        frame.push(root)
        part = MaterializedPartition(root=root, chunks=all_chunks)
        # Safe to unpin here: no allocation happens between returning and
        # the caller's store_partition(), which re-pins under its own frame.
        self._close(frame)
        self._sample()
        return part
