"""Executor crash-restart: bounded retries over lineage recompute.

The crash machinery below :class:`~repro.runtime.JavaVM` kills the
executor at a safepoint (:class:`~repro.errors.SimulatedCrash`); the
driver-side loop here is what turns that into a *completed job*:
restart the executor over its durable H2 image
(:meth:`SparkContext.restart`), let the rebuilt block manager re-adopt
every persisted block that survived recovery, and re-run the action —
lineage recomputes exactly the partitions that were lost.

Retries are bounded twice over:

- ``max_restarts`` caps executor restarts per job.  A schedule that
  crashes the replacement VM too (``crash_rate`` sweeps, or a crash
  that fires *during* recovery) eventually exhausts the budget and
  raises :class:`~repro.errors.RetryExhausted` — a diagnosed failure,
  never a hang.
- ``max_partition_attempts`` caps how often the *same* task may be the
  one in flight when the executor dies.  A partition whose recompute
  deterministically kills the VM ("poisoned") fails fast with the
  task named in the error, instead of burning the whole restart budget
  discovering it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ...errors import RetryExhausted, SimulatedCrash
from ...teraheap.recovery import RecoveryReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import SparkContext


@dataclass
class RestartReport:
    """What one :meth:`SparkContext.restart` recovered and re-adopted."""

    incarnation: int
    recovery: RecoveryReport
    #: per-block adoption outcome: label -> adopted|quarantined|lost
    blocks: Dict[str, str] = field(default_factory=dict)

    def note(self, label: str, outcome: str) -> None:
        self.blocks[label] = outcome

    def count(self, outcome: str) -> int:
        return sum(1 for o in self.blocks.values() if o == outcome)

    @property
    def adopted(self) -> int:
        return self.count("adopted")

    @property
    def quarantined(self) -> int:
        return self.count("quarantined")

    @property
    def lost(self) -> int:
        return self.count("lost")

    def digest(self) -> str:
        """Canonical per-block outcomes, for determinism checks."""
        lines = [f"incarnation={self.incarnation}"]
        lines.extend(
            f"{label}\t{outcome}"
            for label, outcome in sorted(self.blocks.items())
        )
        return "\n".join(lines)

    def describe(self) -> str:
        return (
            f"incarnation {self.incarnation}: "
            f"{self.adopted} adopted, {self.quarantined} quarantined, "
            f"{self.lost} lost"
        )


@dataclass
class JobRetryPolicy:
    """Bounds on the crash-restart loop."""

    #: executor restarts allowed per job before giving up
    max_restarts: int = 3
    #: times the same (stage, partition) may be in flight at a crash
    #: before it is declared poisoned and the job fails fast
    max_partition_attempts: int = 3


@dataclass
class JobResult:
    """A completed action plus the recovery work it took."""

    value: int
    restarts: int
    reports: List[RestartReport] = field(default_factory=list)

    @property
    def blocks_adopted(self) -> int:
        return sum(r.adopted for r in self.reports)

    @property
    def blocks_quarantined(self) -> int:
        return sum(r.quarantined for r in self.reports)

    @property
    def blocks_lost(self) -> int:
        return sum(r.lost for r in self.reports)


def run_job(
    ctx: "SparkContext",
    action: Callable[[], int],
    policy: Optional[JobRetryPolicy] = None,
) -> JobResult:
    """Drive ``action`` to completion across executor crashes.

    ``action`` is re-run from the top after every restart — the cheap
    half of each pass hits re-adopted H2 blocks, the lost partitions
    recompute from lineage.  Crashes raised *during* restart (a
    ``crash_rate`` schedule can kill the successor while it recovers or
    adopts) count against the same restart budget.
    """
    policy = policy or JobRetryPolicy()
    restarts = 0
    reports: List[RestartReport] = []
    attempts: Dict[Tuple[str, int], int] = {}

    def charge(task: Optional[Tuple[str, int]]) -> None:
        if task is None:
            return
        attempts[task] = attempts.get(task, 0) + 1
        if attempts[task] >= policy.max_partition_attempts:
            stage, index = task
            raise RetryExhausted(
                f"partition {index} of stage {stage!r} poisoned: executor "
                f"died {attempts[task]} times with it in flight "
                f"(max_partition_attempts={policy.max_partition_attempts})",
                restarts=restarts,
                task=task,
            )

    while True:
        try:
            value = action()
            return JobResult(value=value, restarts=restarts, reports=reports)
        except SimulatedCrash:
            charge(ctx.current_task)
        # Restart may itself crash (crash_rate fires during recovery or
        # adoption I/O); each attempt burns one unit of the same budget.
        while True:
            restarts += 1
            if restarts > policy.max_restarts:
                raise RetryExhausted(
                    f"job gave up after {restarts - 1} executor restarts "
                    f"(max_restarts={policy.max_restarts})",
                    restarts=restarts - 1,
                    task=ctx.current_task,
                )
            try:
                reports.append(ctx.restart())
                break
            except SimulatedCrash:
                continue
