"""The Spark executor context: entry point for workloads."""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ...devices.base import AccessPattern
from ...devices.durability import image_of
from ...errors import ConfigError, SimulatedCrash
from ...runtime import JavaVM
from ...units import KiB
from ...workloads.generators import GraphDataset, MLDataset, TableDataset
from .block_manager import BlockManager
from .conf import CachePolicy, SparkConf
from .rdd import RDD, MaterializedPartition, make_partitions
from .recovery import RestartReport
from .shuffle import ShuffleManager


class SparkContext:
    """One executor's view of mini-Spark.

    The context is *driver-side* state: the RDD graph (with its lineage
    records), the configuration, and a handle to the executor VM.  An
    executor crash destroys the VM but not the context, so
    :meth:`restart` can construct a successor VM over the crashed
    process's durable H2 image and carry on — cached blocks that
    survived recovery are re-adopted, everything else recomputes from
    lineage.
    """

    def __init__(self, vm: JavaVM, conf: Optional[SparkConf] = None):
        self.vm = vm
        self.conf = conf or SparkConf()
        self.block_manager = BlockManager(vm, self.conf)
        self.shuffle_manager = ShuffleManager(vm, self.conf)
        self._rdd_counter = 0
        #: driver-side RDD registry: lineage records resolve parents here
        self._rdds: Dict[int, RDD] = {}
        #: stack frame of the executing task batch; while set, partitions
        #: materialised by tasks stay pinned until the whole batch retires
        #: (8 concurrent tasks each hold their input partition)
        self.batch_frame = None
        #: executor incarnation (bumped by every successful restart)
        self.incarnation = 1
        #: RDD-registry generation: bumped by every restart, stamped on
        #: RDDs at registration and folded into their H2 block labels —
        #: so an RDD graph rebuilt after a crash can never produce a
        #: label that collides with a dead incarnation's stale blocks
        self.registry_generation = 1
        #: the (stage, partition) of the task in flight, for the retry
        #: driver's poisoned-partition accounting
        self.current_task: Optional[Tuple[str, int]] = None

    def next_rdd_id(self) -> int:
        self._rdd_counter += 1
        return self._rdd_counter

    def register_rdd(self, rdd: RDD) -> None:
        rdd.generation = self.registry_generation
        self._rdds[rdd.rdd_id] = rdd

    def rdd(self, rdd_id: int) -> RDD:
        return self._rdds[rdd_id]

    # ------------------------------------------------------------------
    # RDD constructors
    # ------------------------------------------------------------------
    def range_rdd(
        self,
        total_bytes: int,
        chunk_size: int = 8 * KiB,
        compute_ops_per_chunk: int = 64,
        name: str = "",
        scan_factor: float = 1.0,
    ) -> RDD:
        """A source RDD of ``total_bytes`` split across the partitions."""
        parts = make_partitions(
            total_bytes, self.conf.num_partitions, chunk_size, scan_factor
        )
        return RDD(
            self,
            parts,
            compute_ops_per_chunk=compute_ops_per_chunk,
            name=name,
        )

    def ml_rdd(self, dataset: MLDataset, name: str = "points") -> RDD:
        return self.range_rdd(
            dataset.total_bytes, chunk_size=dataset.chunk_size, name=name
        )

    def graph_rdd(self, dataset: GraphDataset, name: str = "edges") -> RDD:
        return self.range_rdd(
            dataset.total_bytes, chunk_size=8 * KiB, name=name
        )

    def table_rdd(self, dataset: TableDataset, name: str = "table") -> RDD:
        return self.range_rdd(
            dataset.total_bytes, chunk_size=dataset.chunk_size, name=name
        )

    # ------------------------------------------------------------------
    # Task boundaries (crash safepoints)
    # ------------------------------------------------------------------
    def task_start(self, rdd: RDD, index: int) -> None:
        """A task is about to run: visit the ``task:<stage>`` safepoint.

        The fault plan counts visits per stage, so a schedule of "crash
        at task N of stage S" (``FaultConfig.crash_stage``/``crash_task``)
        kills the executor mid-stage deterministically — after N-1 tasks
        of that stage completed, before the N-th does any work.
        """
        self.current_task = (rdd.name, index)
        resilience = self.vm.resilience
        if resilience is None:
            return
        plan = resilience.plan
        safepoint = f"task:{rdd.name}"
        if plan.crash_outcome(safepoint):
            resilience.log.record_crash(
                self.vm.clock.now,
                safepoint,
                f"task {index} of stage {rdd.name}",
            )
            raise SimulatedCrash(
                f"simulated kill at task {index} of stage {rdd.name!r}",
                safepoint=safepoint,
                op_index=plan.op_index,
            )

    def task_end(self) -> None:
        self.current_task = None

    # ------------------------------------------------------------------
    # Crash restart
    # ------------------------------------------------------------------
    def restart(
        self,
        fault=None,
        image=None,
    ) -> RestartReport:
        """Replace a dead executor VM with a successor over its image.

        The crashed VM is retired (pressure handlers and health listeners
        dropped — nothing of the dead incarnation may drive the new one),
        a successor :class:`JavaVM` is built from the same config, the
        durable H2 image is recovered into it, and a rebuilt
        :class:`BlockManager` re-adopts every persisted block whose label
        survived recovery — validating quarantine status and partition
        shape; blocks that fail go back to lineage recompute.

        ``fault`` overrides the successor's fault config; by default the
        crashed schedule's targeted kill (``crash_point``/``crash_stage``)
        is cleared — it already fired — while ``crash_rate`` sweeps keep
        rolling the dice, which is what bounded-restart retry policies
        are for.  May raise :class:`UnrecoverableCrash` if the image's
        superblock or a manifest region header is unreadable.
        """
        old = self.vm
        if old.h2 is None:
            raise ConfigError("restart() requires a TeraHeap executor VM")
        if image is None:
            image = image_of(old.h2.mapping)
        if image is None:
            raise ConfigError("no durable image to restart from")
        if fault is None and old.config.faults is not None:
            fault = dataclasses.replace(
                old.config.faults, crash_point=None, crash_stage=None
            )
        config = dataclasses.replace(old.config, faults=fault)
        # A tenant built over a private store restarts into a *fresh*
        # private store (the crash destroyed the process's heap; sharing
        # rows with the dead incarnation would alias oids).  The default
        # single-VM path keeps passing None, so the successor attaches
        # the process-default store exactly as before.
        from ...heap.store import HeapStore, get_store

        successor_store = (
            None if old.store is get_store() else HeapStore()
        )
        # A *shared* device-health monitor outlives any one tenant — the
        # device's physical condition does not reset because one of its
        # consumers died — so the successor re-subscribes to the same
        # monitor.  A VM-owned monitor stays per-incarnation (fresh, zero
        # observations), which restart's contract promises.
        shared_health = old.health if not old._owns_health else None
        old.retire()
        successor = JavaVM(
            config, store=successor_store, health=shared_health
        )
        if old.resilience is not None and successor.resilience is not None:
            # Keep the incident history (the crash itself, the faults
            # leading up to it) continuous across the incarnation change.
            successor.resilience.log.absorb(old.resilience.log)
        report = successor.recover_h2(image)
        self.vm = successor
        self.incarnation += 1
        self.batch_frame = None
        self.current_task = None
        self.block_manager = BlockManager(successor, self.conf)
        self.shuffle_manager = ShuffleManager(successor, self.conf)
        restart_report = RestartReport(
            incarnation=self.incarnation, recovery=report
        )
        log = (
            successor.resilience.log
            if successor.resilience is not None
            else None
        )
        if log is not None:
            log.record_restart(
                successor.clock.now,
                self.incarnation,
                f"recovered {report.regions_recovered} regions, "
                f"{report.regions_quarantined} quarantined",
            )
        successor.clock.record_event("restart", 0.0)
        # Map quarantined regions back to the block labels they carried.
        quarantined_labels: Dict[str, str] = {}
        for region_index, reason in sorted(report.quarantined.items()):
            for entry in image.journal_entries(region_index):
                label = getattr(entry, "label", "")
                if label:
                    quarantined_labels.setdefault(label, reason)
        if self.conf.cache_policy is CachePolicy.TERAHEAP:
            for rdd_id in sorted(self._rdds):
                rdd = self._rdds[rdd_id]
                if not rdd.persisted:
                    continue
                for spec in rdd.partitions:
                    outcome = self.block_manager.adopt_recovered(
                        rdd, spec, quarantined_labels
                    )
                    restart_report.note(rdd.block_label(spec.index), outcome)
        # Surviving RDDs adopted under their original labels above; any
        # RDD registered from here on belongs to the new generation, so
        # its labels cannot collide with stale blocks of the old one.
        self.registry_generation = self.incarnation
        return restart_report

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def read_partition(
        self,
        part: MaterializedPartition,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> None:
        """Mutator reads every chunk of a partition (H2-aware)."""
        for chunk in part.chunks:
            self.vm.read_object(chunk, pattern)

    def shuffle(self, nbytes: int, records: int = 0) -> None:
        self.shuffle_manager.shuffle(nbytes, records)

    @property
    def uses_teraheap(self) -> bool:
        return self.conf.cache_policy is CachePolicy.TERAHEAP
