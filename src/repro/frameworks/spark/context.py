"""The Spark executor context: entry point for workloads."""

from __future__ import annotations

from typing import Optional

from ...devices.base import AccessPattern
from ...runtime import JavaVM
from ...units import KiB
from ...workloads.generators import GraphDataset, MLDataset, TableDataset
from .block_manager import BlockManager
from .conf import CachePolicy, SparkConf
from .rdd import RDD, MaterializedPartition, make_partitions
from .shuffle import ShuffleManager


class SparkContext:
    """One executor's view of mini-Spark."""

    def __init__(self, vm: JavaVM, conf: Optional[SparkConf] = None):
        self.vm = vm
        self.conf = conf or SparkConf()
        self.block_manager = BlockManager(vm, self.conf)
        self.shuffle_manager = ShuffleManager(vm, self.conf)
        self._rdd_counter = 0
        #: stack frame of the executing task batch; while set, partitions
        #: materialised by tasks stay pinned until the whole batch retires
        #: (8 concurrent tasks each hold their input partition)
        self.batch_frame = None

    def next_rdd_id(self) -> int:
        self._rdd_counter += 1
        return self._rdd_counter

    # ------------------------------------------------------------------
    # RDD constructors
    # ------------------------------------------------------------------
    def range_rdd(
        self,
        total_bytes: int,
        chunk_size: int = 8 * KiB,
        compute_ops_per_chunk: int = 64,
        name: str = "",
        scan_factor: float = 1.0,
    ) -> RDD:
        """A source RDD of ``total_bytes`` split across the partitions."""
        parts = make_partitions(
            total_bytes, self.conf.num_partitions, chunk_size, scan_factor
        )
        return RDD(
            self,
            parts,
            compute_ops_per_chunk=compute_ops_per_chunk,
            name=name,
        )

    def ml_rdd(self, dataset: MLDataset, name: str = "points") -> RDD:
        return self.range_rdd(
            dataset.total_bytes, chunk_size=dataset.chunk_size, name=name
        )

    def graph_rdd(self, dataset: GraphDataset, name: str = "edges") -> RDD:
        return self.range_rdd(
            dataset.total_bytes, chunk_size=8 * KiB, name=name
        )

    def table_rdd(self, dataset: TableDataset, name: str = "table") -> RDD:
        return self.range_rdd(
            dataset.total_bytes, chunk_size=dataset.chunk_size, name=name
        )

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def read_partition(
        self,
        part: MaterializedPartition,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> None:
        """Mutator reads every chunk of a partition (H2-aware)."""
        for chunk in part.chunks:
            self.vm.read_object(chunk, pattern)

    def shuffle(self, nbytes: int, records: int = 0) -> None:
        self.shuffle_manager.shuffle(nbytes, records)

    @property
    def uses_teraheap(self) -> bool:
        return self.conf.cache_policy is CachePolicy.TERAHEAP
