"""Mini-Spark: RDDs, a block manager with on-heap/off-heap caching, shuffle.

Models the Spark behaviours the paper depends on (Section 5, Figure 4):

- applications call ``persist()`` unmodified;
- the block manager keeps cached partitions in a hash map, up to a
  storage fraction of the heap on-heap, serializing the rest to the
  off-heap store on a device (Spark-SD), keeping everything on-heap
  (Spark-MO), or tagging partition descriptors with ``h2_tag_root`` +
  ``h2_move`` so TeraHeap migrates them to H2;
- shuffles serialize/deserialize through the Kryo path in every
  configuration.
"""

from .block_manager import BlockManager, CacheEntry
from .conf import CachePolicy, SparkConf
from .context import SparkContext
from .rdd import RDD, BlockSpec, Lineage, MaterializedPartition, PartitionSpec
from .recovery import JobResult, JobRetryPolicy, RestartReport, run_job
from .streaming import StreamingExecutor, StreamResult

__all__ = [
    "BlockManager",
    "BlockSpec",
    "CacheEntry",
    "CachePolicy",
    "JobResult",
    "JobRetryPolicy",
    "Lineage",
    "MaterializedPartition",
    "PartitionSpec",
    "RDD",
    "RestartReport",
    "SparkConf",
    "SparkContext",
    "StreamResult",
    "StreamingExecutor",
    "run_job",
]
