"""The Spark block manager and its compute cache (Section 5, Figure 4).

Cached partitions live in a hash map rooted in the executor.  The three
policies correspond to the paper's configurations:

- **SD**: partitions fill the on-heap cache up to the storage fraction;
  the rest serialize to the off-heap store on the device and must be
  deserialized (fresh objects, fresh garbage) on *every* access.
- **MO**: everything stays on-heap (the heap is sized to fit).
- **TERAHEAP**: every partition descriptor is tagged with
  ``h2_tag_root(root, rdd_id)`` and ``h2_move(rdd_id)`` is issued
  immediately — cached objects migrate to H2 at the next major GC and are
  then read in place.

Under the H2 governor, TERAHEAP degrades gracefully: while the circuit
is OPEN new partitions fall back to serialized-on-heap caching (or are
not cached at all when the storage budget is full — the recompute
penalty), and when the VM applies emergency backpressure the block
manager sheds its H1-charged entries LRU-first via
:meth:`shed_blocks`.

Accounting invariant: every entry is charged to exactly one residency
bucket — ``onheap_used`` (H1 bytes), ``h2_bytes`` (entries whose objects
migrated to H2), or ``offheap_bytes`` (serialized blobs on the device) —
and :meth:`_remove_entry` is the single place an entry leaves the cache,
so drops, evictions and sheds cannot drift the counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from ...clock import Bucket
from ...heap.object_model import HeapObject
from ...runtime import JavaVM
from ...serdes.serializer import SerializedBlob
from .conf import CachePolicy, SparkConf
from .rdd import (
    RDD,
    MaterializedPartition,
    PartitionSpec,
    block_label,
    root_size_for,
)


@dataclass
class CacheEntry:
    """One cached partition."""

    kind: str  # "heap" (live objects) | "blob" (serialized)
    partition: Optional[MaterializedPartition] = None
    blob: Optional[SerializedBlob] = None
    num_chunks: int = 0
    chunk_size: int = 0
    #: H1 holder of a serialized-on-heap blob (the governor fallback);
    #: ``None`` for device-resident blobs
    heap_blob: Optional[HeapObject] = None
    #: residency bucket this entry's bytes are charged to:
    #: "h1" (onheap_used), "h2" (h2_bytes) or "offheap" (offheap_bytes)
    charged: str = "h1"
    #: monotone access stamp for LRU shedding
    last_access: int = 0
    #: the per-partition H2 label this entry was tagged (or adopted)
    #: under; empty for non-TERAHEAP entries
    label: str = ""

    def charged_bytes(self) -> int:
        if self.kind == "heap" and self.partition is not None:
            return self.partition.size_bytes
        if self.blob is not None:
            return self.blob.size_bytes
        return 0


class BlockManager:
    """Executor-wide cache of RDD partitions."""

    def __init__(self, vm: JavaVM, conf: SparkConf):
        self.vm = vm
        self.conf = conf
        #: the compute-cache hash map (Figure 4), pinned as a GC root
        self.cache_root = vm.allocate(1024, name="blockmgr-hashmap")
        vm.roots.add(self.cache_root)
        self.entries: Dict[Tuple[int, int], CacheEntry] = {}
        self.onheap_budget = int(
            vm.config.heap_size * conf.storage_fraction
        )
        self.onheap_used = 0
        self.offheap_bytes = 0
        #: bytes of cached entries whose objects migrated to H2
        self.h2_bytes = 0
        self.deserializations = 0
        #: entries dropped by memory-store overflow (MO policy)
        self.drops = 0
        #: entries shed by emergency backpressure
        self.sheds = 0
        self.shed_bytes = 0
        #: heap entries spilled to a serialized blob instead of dropped
        self.spilled_blocks = 0
        self.spilled_bytes = 0
        #: spilled entries read back (deserialized) on a later access
        self.unspills = 0
        #: computes of partitions that *were* cached but got dropped/shed
        self.recomputes = 0
        #: stores re-routed away from H2 by an open governor circuit
        self.governor_fallbacks = 0
        #: blocks re-adopted from a recovered H2 image after a restart
        self.adoptions = 0
        self.adopted_bytes = 0
        #: blocks lost to quarantined regions across a crash
        self.quarantined_blocks = 0
        #: blocks whose label left no recovered regions at all (never
        #: committed, or shape-mismatched against the partition spec)
        self.lost_blocks = 0
        self._dropped_keys: Set[Tuple[int, int]] = set()
        self._spilled_keys: Set[Tuple[int, int]] = set()
        self._access_seq = 0
        if getattr(vm, "governor", None) is not None:
            vm.register_pressure_handler(self.shed_blocks)

    def _log(self):
        resilience = getattr(self.vm, "resilience", None)
        return resilience.log if resilience is not None else None

    def _stamp(self, entry: CacheEntry) -> None:
        self._access_seq += 1
        entry.last_access = self._access_seq

    # ------------------------------------------------------------------
    def get_or_compute(
        self,
        rdd: RDD,
        index: int,
        compute: Callable[[int], MaterializedPartition],
    ) -> MaterializedPartition:
        key = (rdd.rdd_id, index)
        entry = self.entries.get(key)
        if entry is None:
            if key in self._dropped_keys:
                # The cached copy was dropped (overflow), shed
                # (backpressure) or lost across a crash: this compute is
                # the lineage-recompute penalty.
                self._dropped_keys.discard(key)
                self.recomputes += 1
                log = self._log()
                if log is not None:
                    log.record_adoption(
                        self.vm.clock.now,
                        block_label(rdd.cache_label, index),
                        "recomputed",
                    )
            part = compute(index)
            with self.vm.roots.frame() as frame:
                # Pin the fresh partition while the store path may allocate
                # (serialization temporaries can trigger a collection).
                frame.push(part.root)
                frame.push_all(part.chunks)
                self._store(rdd, index, part)
            return part
        self._stamp(entry)
        if entry.kind == "heap":
            return entry.partition
        return self._read_offheap(rdd, index, entry)

    # ------------------------------------------------------------------
    def _store(self, rdd: RDD, index: int, part: MaterializedPartition) -> None:
        key = (rdd.rdd_id, index)
        vm = self.vm
        policy = self.conf.cache_policy
        size = part.size_bytes
        if policy is CachePolicy.TERAHEAP:
            governor = getattr(vm, "governor", None)
            if governor is not None and governor.blocks_h2_caching():
                # Circuit open: H2 is browned out, do not aim new cached
                # data at it — fall back to serialized-on-heap (or the
                # recompute penalty when the storage budget is full).
                self.governor_fallbacks += 1
                self._store_fallback(rdd, key, part)
                return
            vm.write_ref(self.cache_root, part.root)
            # Mark the partition descriptor as a root key-object with the
            # per-block label and advise the move right away — cached
            # partitions are immutable at allocation time (Section 5).
            # Labels are per partition (not per RDD) so crash recovery
            # can validate and re-adopt each block independently.
            label = block_label(rdd.cache_label, index)
            vm.h2_tag_root(part.root, label)
            vm.h2_move(label)
            entry = CacheEntry(kind="heap", partition=part, label=label)
            self._stamp(entry)
            self.entries[key] = entry
            self.onheap_used += size
            return
        if policy is CachePolicy.MO:
            # MEMORY_ONLY semantics: evict (drop) the oldest cached
            # partitions when the memory store overflows; dropped
            # partitions are recomputed on their next access.
            budget = int(self.vm.config.heap_size * 0.6)
            while self.onheap_used + size > budget and self._drop_oldest():
                pass
            if self.onheap_used + size > budget:
                return  # cannot cache at all; always recompute
            vm.write_ref(self.cache_root, part.root)
            entry = CacheEntry(kind="heap", partition=part)
            self._stamp(entry)
            self.entries[key] = entry
            self.onheap_used += size
            return
        if self.onheap_used + size <= self.onheap_budget:
            vm.write_ref(self.cache_root, part.root)
            entry = CacheEntry(kind="heap", partition=part)
            self._stamp(entry)
            self.entries[key] = entry
            self.onheap_used += size
            return
        # SD overflow: serialize to the off-heap store and let the heap
        # copy die.
        blob = vm.serializer.serialize(part.root)
        device = self.conf.offheap_device
        if device is not None:
            with vm.clock.context(Bucket.SD_IO):
                device.write(blob.size_bytes)
        self.offheap_bytes += blob.size_bytes
        entry = CacheEntry(
            kind="blob",
            blob=blob,
            num_chunks=len(part.chunks),
            chunk_size=part.chunks[0].size if part.chunks else 0,
            charged="offheap",
        )
        self._stamp(entry)
        self.entries[key] = entry

    def _store_fallback(
        self, rdd: RDD, key: Tuple[int, int], part: MaterializedPartition
    ) -> None:
        """Governor fallback: serialized-on-heap caching, or none at all.

        The partition serializes into an H1 byte-array holder (MEMORY_AND
        _DISK_SER semantics without the disk); accesses pay deserialization
        but no device I/O.  If the holder would blow the storage budget
        the partition is not cached and its next access recomputes.
        """
        vm = self.vm
        blob = vm.serializer.serialize(part.root)
        if self.onheap_used + blob.size_bytes > self.onheap_budget:
            self._dropped_keys.add(key)
            return
        holder = vm.allocate(
            blob.size_bytes, name=f"{rdd.name}-p{key[1]}-ser"
        )
        vm.write_ref(self.cache_root, holder)
        entry = CacheEntry(
            kind="blob",
            blob=blob,
            num_chunks=len(part.chunks),
            chunk_size=part.chunks[0].size if part.chunks else 0,
            heap_blob=holder,
            charged="h1",
        )
        self._stamp(entry)
        self.entries[key] = entry
        self.onheap_used += blob.size_bytes

    # ------------------------------------------------------------------
    def reconcile_residency(self) -> None:
        """Re-bucket entries whose objects migrated H1 -> H2.

        A TERAHEAP entry is stored charged to ``onheap_used``; once the
        collector moves its label group to H2 those bytes no longer
        occupy H1.  Shedding such an entry would free nothing, so the
        shed path (and :meth:`cached_bytes`) reconciles first.
        """
        for entry in self.entries.values():
            if (
                entry.kind == "heap"
                and entry.charged == "h1"
                and entry.partition is not None
                and entry.partition.root.in_h2
            ):
                size = entry.partition.size_bytes
                self.onheap_used -= size
                self.h2_bytes += size
                entry.charged = "h2"

    def _remove_entry(self, key: Tuple[int, int]) -> int:
        """Unroot and uncharge one entry; returns the H1 bytes it freed."""
        entry = self.entries.pop(key)
        self._spilled_keys.discard(key)
        size = entry.charged_bytes()
        if entry.kind == "heap" and entry.partition is not None:
            self.vm.write_ref(
                self.cache_root, None, remove=entry.partition.root
            )
        elif entry.heap_blob is not None:
            self.vm.write_ref(self.cache_root, None, remove=entry.heap_blob)
        if entry.label:
            # An adopted block also holds a recovery anchor rooting its
            # label's rehydrated objects; drop it with the entry so
            # unpersist/shed actually lets the next major GC reclaim the
            # regions.
            anchor = self.vm.h2_recovery_anchors.pop(entry.label, None)
            if anchor is not None:
                self.vm.roots.remove(anchor)
        if entry.charged == "h1":
            self.onheap_used -= size
            return size
        if entry.charged == "h2":
            self.h2_bytes -= size
        else:
            self.offheap_bytes -= size
        return 0

    def _pinned(self, entry: CacheEntry) -> bool:
        """Is this entry's partition held by an executing task's stack?

        A frame-pinned partition is the input (or output) of a compute
        that is still running: its objects survive any collection, so
        evicting the entry frees no memory — it only corrupts the
        ``onheap_used`` accounting and buys a guaranteed recompute of a
        block that is literally in use.  Every eviction path must skip
        such entries.
        """
        if entry.kind != "heap" or entry.partition is None:
            return False
        return self.vm.roots.frame_pinned(entry.partition.root)

    def _drop_oldest(self) -> bool:
        """Evict the oldest unpinned cached partition (drop, no spill).

        Returns ``False`` when every remaining entry is pinned by an
        in-flight task — the caller must stop evicting and fall through
        to the don't-cache path rather than loop forever.
        """
        for key, entry in self.entries.items():
            if self._pinned(entry):
                continue
            self._remove_entry(key)
            self._dropped_keys.add(key)
            self.drops += 1
            return True
        return False

    def shed_blocks(self, nbytes: int) -> int:
        """Emergency backpressure: shed H1-charged entries, LRU first.

        Called by the VM's :meth:`~repro.runtime.JavaVM.register_pressure_handler`
        hook while the governor circuit is open and H1 is past the
        emergency watermark.  Only entries still occupying H1 are worth
        shedding; H2-backed and device-blob entries free no H1 space.
        Returns the H1 bytes freed (reclaimable at the next full GC).
        """
        self.reconcile_residency()
        freed = 0
        by_lru = sorted(
            self.entries.items(), key=lambda item: item[1].last_access
        )
        for key, entry in by_lru:
            if freed >= nbytes:
                break
            if entry.charged != "h1":
                continue
            if self._pinned(entry):
                continue
            freed += self._remove_entry(key)
            self._dropped_keys.add(key)
            self.sheds += 1
        self.shed_bytes += freed
        return freed

    def store_partition(
        self, rdd: RDD, index: int, part: MaterializedPartition
    ) -> None:
        """Cache a partition materialized outside :meth:`get_or_compute`.

        The streaming executor assembles persisted partitions itself
        (block by block) and hands them over here; the store runs under
        the same pinning frame the compute path uses, so serialization
        temporaries cannot collect the partition mid-store.
        """
        with self.vm.roots.frame() as frame:
            frame.push(part.root)
            frame.push_all(part.chunks)
            self._store(rdd, index, part)

    # ------------------------------------------------------------------
    # Spill / unspill (streaming backpressure)
    # ------------------------------------------------------------------
    def spill_entry(self, key: Tuple[int, int]) -> int:
        """Spill one H1-charged heap entry to a serialized blob.

        The streaming executor's answer to pressure: instead of dropping
        a block and paying lineage recompute later, serialize it and
        re-insert the blob — to the off-heap device normally, or as a
        serialized-on-heap holder when the governor circuit is OPEN (the
        device is exactly what must not absorb new bytes then).  The
        entry leaves and re-enters through the normal paths
        (:meth:`_remove_entry` / a fresh :class:`CacheEntry`), so the
        residency counters keep their single-exit invariant.

        Returns the H1 bytes freed; 0 if the entry is absent, already a
        blob, pinned by an executing task, or no longer H1-resident.
        """
        entry = self.entries.get(key)
        if (
            entry is None
            or entry.kind != "heap"
            or entry.charged != "h1"
            or entry.partition is None
            or self._pinned(entry)
        ):
            return 0
        vm = self.vm
        part = entry.partition
        blob = vm.serializer.serialize(part.root)
        freed = self._remove_entry(key)
        governor = getattr(vm, "governor", None)
        circuit_open = governor is not None and governor.blocks_h2_caching()
        device = self.conf.offheap_device
        if device is None and vm.h2 is not None:
            device = vm.h2.device
        if device is not None and not circuit_open:
            with vm.clock.context(Bucket.SD_IO):
                device.write(blob.size_bytes)
            new = CacheEntry(
                kind="blob",
                blob=blob,
                num_chunks=len(part.chunks),
                chunk_size=part.chunks[0].size if part.chunks else 0,
                charged="offheap",
            )
            self.offheap_bytes += blob.size_bytes
        else:
            holder = vm.allocate(blob.size_bytes, name=f"spill-{key}")
            vm.write_ref(self.cache_root, holder)
            new = CacheEntry(
                kind="blob",
                blob=blob,
                num_chunks=len(part.chunks),
                chunk_size=part.chunks[0].size if part.chunks else 0,
                heap_blob=holder,
                charged="h1",
            )
            self.onheap_used += blob.size_bytes
            freed = max(0, freed - blob.size_bytes)
        self._stamp(new)
        self.entries[key] = new
        self._spilled_keys.add(key)
        self.spilled_blocks += 1
        self.spilled_bytes += blob.size_bytes
        return freed

    def _read_offheap(
        self, rdd: RDD, index: int, entry: CacheEntry
    ) -> MaterializedPartition:
        """Deserialize an off-heap partition back onto the heap.

        This is the recurring cost TeraHeap eliminates: every access pays
        device reads, deserialization CPU, and a fresh short-lived copy of
        the whole partition on the managed heap.  Serialized-on-heap
        entries (governor fallback) skip the device read but still pay
        deserialization.
        """
        vm = self.vm
        device = self.conf.offheap_device
        if device is not None and entry.heap_blob is None:
            with vm.clock.context(Bucket.SD_IO):
                device.read(entry.blob.size_bytes)
        vm.serializer.deserialize_cost(entry.blob)
        self.deserializations += 1
        if (rdd.rdd_id, index) in self._spilled_keys:
            # First read-back of a spilled block: the unspill penalty.
            self._spilled_keys.discard((rdd.rdd_id, index))
            self.unspills += 1
        with vm.roots.frame() as frame:
            chunks = []
            for i in range(entry.num_chunks):
                chunks.append(
                    frame.push(
                        vm.allocate(
                            entry.chunk_size, name=f"{rdd.name}-p{index}-d{i}"
                        )
                    )
                )
            root = vm.allocate(
                max(64, 8 * entry.num_chunks),
                refs=chunks,
                name=f"{rdd.name}-p{index}-deser",
            )
        return MaterializedPartition(root=root, chunks=chunks)

    # ------------------------------------------------------------------
    # Crash-restart block adoption
    # ------------------------------------------------------------------
    def adopt_recovered(
        self,
        rdd: RDD,
        spec: PartitionSpec,
        quarantined_labels: Dict[str, str],
    ) -> str:
        """Re-adopt one persisted block from a recovered H2 image.

        Called by :meth:`SparkContext.restart` on the *successor* VM's
        freshly built block manager, once per partition of each persisted
        RDD.  The block's fate:

        - ``"adopted"`` — its label survived recovery intact and the
          rehydrated objects match the partition spec exactly (one root
          of the descriptor size + ``num_chunks`` chunks); the entry is
          re-linked into the cache map, charged to ``h2_bytes``.
        - ``"quarantined"`` — recovery quarantined a region under the
          label (stale epoch, torn data): the block is lost; any partial
          anchor is dropped so the surviving fragment gets reclaimed.
        - ``"lost"`` — no recovered regions carried the label (the block
          never committed before the crash), or the recovered object
          multiset does not match the spec; lineage recompute owns it.

        Lost/quarantined keys are marked dropped, so their next access
        counts (and logs) the lineage-recompute penalty.
        """
        vm = self.vm
        key = (rdd.rdd_id, spec.index)
        label = block_label(rdd.cache_label, spec.index)
        log = self._log()
        anchor = vm.h2_recovery_anchors.get(label)

        def lose(outcome: str, detail: str) -> str:
            if anchor is not None:
                vm.roots.remove(anchor)
                vm.h2_recovery_anchors.pop(label, None)
            if outcome == "quarantined":
                self.quarantined_blocks += 1
            else:
                self.lost_blocks += 1
            self._dropped_keys.add(key)
            if log is not None:
                log.record_adoption(vm.clock.now, label, outcome, detail)
            return outcome

        if label in quarantined_labels:
            return lose("quarantined", quarantined_labels[label])
        if anchor is None:
            return lose("lost", "no recovered regions under label")
        members = sorted(anchor.refs, key=lambda o: o.address)
        root_size = root_size_for(spec)
        expected = sorted([root_size] + [spec.chunk_size] * spec.num_chunks)
        if sorted(o.size for o in members) != expected:
            return lose(
                "lost",
                f"shape mismatch: {len(members)} objects vs spec "
                f"{spec.num_chunks}+1",
            )
        root = next(o for o in members if o.size == root_size)
        chunks = [o for o in members if o is not root]
        # Re-discover the intra-block structure: the root's outgoing refs
        # are re-installed directly (like the recovery anchors — this is
        # metadata rehydration, not a mutator store).
        root.refs = list(chunks)
        for chunk in chunks:
            chunk.scan_factor = spec.scan_factor
        part = MaterializedPartition(root=root, chunks=chunks)
        vm.write_ref(self.cache_root, root)
        entry = CacheEntry(
            kind="heap", partition=part, charged="h2", label=label
        )
        self._stamp(entry)
        self.entries[key] = entry
        self.h2_bytes += part.size_bytes
        self.adoptions += 1
        self.adopted_bytes += part.size_bytes
        if log is not None:
            log.record_adoption(
                vm.clock.now, label, "adopted", f"{part.size_bytes}B"
            )
        return "adopted"

    # ------------------------------------------------------------------
    def evict_rdd(self, rdd: RDD) -> None:
        """Drop an RDD's cached partitions (unpersist)."""
        self.reconcile_residency()
        for key in [k for k in self.entries if k[0] == rdd.rdd_id]:
            self._remove_entry(key)

    def cached_bytes(self) -> int:
        self.reconcile_residency()
        return self.onheap_used + self.offheap_bytes + self.h2_bytes
