"""The Spark block manager and its compute cache (Section 5, Figure 4).

Cached partitions live in a hash map rooted in the executor.  The three
policies correspond to the paper's configurations:

- **SD**: partitions fill the on-heap cache up to the storage fraction;
  the rest serialize to the off-heap store on the device and must be
  deserialized (fresh objects, fresh garbage) on *every* access.
- **MO**: everything stays on-heap (the heap is sized to fit).
- **TERAHEAP**: every partition descriptor is tagged with
  ``h2_tag_root(root, rdd_id)`` and ``h2_move(rdd_id)`` is issued
  immediately — cached objects migrate to H2 at the next major GC and are
  then read in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ...clock import Bucket
from ...runtime import JavaVM
from ...serdes.serializer import SerializedBlob
from .conf import CachePolicy, SparkConf
from .rdd import RDD, MaterializedPartition


@dataclass
class CacheEntry:
    """One cached partition."""

    kind: str  # "heap" (H1 or H2) | "blob" (serialized off-heap)
    partition: Optional[MaterializedPartition] = None
    blob: Optional[SerializedBlob] = None
    num_chunks: int = 0
    chunk_size: int = 0


class BlockManager:
    """Executor-wide cache of RDD partitions."""

    def __init__(self, vm: JavaVM, conf: SparkConf):
        self.vm = vm
        self.conf = conf
        #: the compute-cache hash map (Figure 4), pinned as a GC root
        self.cache_root = vm.allocate(1024, name="blockmgr-hashmap")
        vm.roots.add(self.cache_root)
        self.entries: Dict[Tuple[int, int], CacheEntry] = {}
        self.onheap_budget = int(
            vm.config.heap_size * conf.storage_fraction
        )
        self.onheap_used = 0
        self.offheap_bytes = 0
        self.deserializations = 0

    # ------------------------------------------------------------------
    def get_or_compute(
        self,
        rdd: RDD,
        index: int,
        compute: Callable[[int], MaterializedPartition],
    ) -> MaterializedPartition:
        key = (rdd.rdd_id, index)
        entry = self.entries.get(key)
        if entry is None:
            part = compute(index)
            with self.vm.roots.frame() as frame:
                # Pin the fresh partition while the store path may allocate
                # (serialization temporaries can trigger a collection).
                frame.push(part.root)
                frame.push_all(part.chunks)
                self._store(rdd, index, part)
            return part
        if entry.kind == "heap":
            return entry.partition
        return self._read_offheap(rdd, index, entry)

    # ------------------------------------------------------------------
    def _store(self, rdd: RDD, index: int, part: MaterializedPartition) -> None:
        key = (rdd.rdd_id, index)
        vm = self.vm
        policy = self.conf.cache_policy
        size = part.size_bytes
        if policy is CachePolicy.TERAHEAP:
            vm.write_ref(self.cache_root, part.root)
            # Mark the partition descriptor as a root key-object with the
            # RDD id as its label and advise the move right away — cached
            # partitions are immutable at allocation time (Section 5).
            vm.h2_tag_root(part.root, rdd.cache_label)
            vm.h2_move(rdd.cache_label)
            self.entries[key] = CacheEntry(kind="heap", partition=part)
            self.onheap_used += size
            return
        if policy is CachePolicy.MO:
            # MEMORY_ONLY semantics: evict (drop) the oldest cached
            # partitions when the memory store overflows; dropped
            # partitions are recomputed on their next access.
            budget = int(self.vm.config.heap_size * 0.6)
            while self.onheap_used + size > budget and self.entries:
                self._drop_oldest()
            if self.onheap_used + size > budget:
                return  # cannot cache at all; always recompute
            vm.write_ref(self.cache_root, part.root)
            self.entries[key] = CacheEntry(kind="heap", partition=part)
            self.onheap_used += size
            return
        if self.onheap_used + size <= self.onheap_budget:
            vm.write_ref(self.cache_root, part.root)
            self.entries[key] = CacheEntry(kind="heap", partition=part)
            self.onheap_used += size
            return
        # SD overflow: serialize to the off-heap store and let the heap
        # copy die.
        blob = vm.serializer.serialize(part.root)
        device = self.conf.offheap_device
        if device is not None:
            with vm.clock.context(Bucket.SD_IO):
                device.write(blob.size_bytes)
        self.offheap_bytes += blob.size_bytes
        self.entries[key] = CacheEntry(
            kind="blob",
            blob=blob,
            num_chunks=len(part.chunks),
            chunk_size=part.chunks[0].size if part.chunks else 0,
        )

    def _drop_oldest(self) -> None:
        """Evict the oldest cached partition (drop, no spill)."""
        key = next(iter(self.entries))
        entry = self.entries.pop(key)
        if entry.kind == "heap" and entry.partition is not None:
            self.vm.write_ref(
                self.cache_root, None, remove=entry.partition.root
            )
            self.onheap_used -= entry.partition.size_bytes
        elif entry.blob is not None:
            self.offheap_bytes -= entry.blob.size_bytes
        self.drops = getattr(self, "drops", 0) + 1

    def _read_offheap(
        self, rdd: RDD, index: int, entry: CacheEntry
    ) -> MaterializedPartition:
        """Deserialize an off-heap partition back onto the heap.

        This is the recurring cost TeraHeap eliminates: every access pays
        device reads, deserialization CPU, and a fresh short-lived copy of
        the whole partition on the managed heap.
        """
        vm = self.vm
        device = self.conf.offheap_device
        if device is not None:
            with vm.clock.context(Bucket.SD_IO):
                device.read(entry.blob.size_bytes)
        vm.serializer.deserialize_cost(entry.blob)
        self.deserializations += 1
        with vm.roots.frame() as frame:
            chunks = []
            for i in range(entry.num_chunks):
                chunks.append(
                    frame.push(
                        vm.allocate(
                            entry.chunk_size, name=f"{rdd.name}-p{index}-d{i}"
                        )
                    )
                )
            root = vm.allocate(
                max(64, 8 * entry.num_chunks),
                refs=chunks,
                name=f"{rdd.name}-p{index}-deser",
            )
        return MaterializedPartition(root=root, chunks=chunks)

    # ------------------------------------------------------------------
    def evict_rdd(self, rdd: RDD) -> None:
        """Drop an RDD's cached partitions (unpersist)."""
        for key in [k for k in self.entries if k[0] == rdd.rdd_id]:
            entry = self.entries.pop(key)
            if entry.kind == "heap" and entry.partition is not None:
                self.vm.write_ref(
                    self.cache_root, None, remove=entry.partition.root
                )
                self.onheap_used -= entry.partition.size_bytes
            elif entry.blob is not None:
                self.offheap_bytes -= entry.blob.size_bytes

    def cached_bytes(self) -> int:
        return self.onheap_used + self.offheap_bytes
