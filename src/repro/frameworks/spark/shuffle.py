"""Shuffle: the S/D path that remains in every configuration.

Wide transformations serialize map outputs to local storage and
deserialize them on the reduce side.  The paper attributes *all* S/D time
in TeraHeap and Spark-MO to shuffling (Section 6) — TeraHeap removes
caching S/D, not shuffle S/D.
"""

from __future__ import annotations

from ...clock import Bucket
from ...runtime import JavaVM
from .conf import SparkConf


class ShuffleManager:
    """Charges the serialize/spill/fetch/deserialize cycle of a shuffle."""

    #: Spark's ContextCleaner triggers a periodic full GC to reclaim
    #: lineage and shuffle state, roughly once per stage boundary
    CLEANER_GC_INTERVAL = 1

    def __init__(self, vm: JavaVM, conf: SparkConf):
        self.vm = vm
        self.conf = conf
        self.shuffles = 0
        self.bytes_shuffled = 0
        #: shuffles that hit the VM's pre-allocation backpressure stall
        self.backpressure_stalls = 0

    def shuffle(self, nbytes: int, records: int = 0) -> None:
        """One stage boundary moving ``nbytes`` of records."""
        if nbytes <= 0:
            return
        vm = self.vm
        if records <= 0:
            records = max(1, nbytes // self.conf.shuffle_record_bytes)
        # Shuffle buffers are a bulk allocation burst like any other:
        # under a governor emergency they must stall and shed through the
        # same pressure path the mutator uses, not sail past it.
        before = vm.alloc_stalls
        vm.stall_for_capacity(nbytes)
        if vm.alloc_stalls > before:
            self.backpressure_stalls += 1
        # Map side: serialize + spill.
        vm.serializer.charge_serialize(records, nbytes)
        device = self.conf.offheap_device
        if device is not None:
            with vm.clock.context(Bucket.SD_IO):
                device.write(nbytes)
                # Reduce side: fetch.
                device.read(nbytes)
        # Reduce side: deserialize.
        vm.serializer.charge_deserialize(records, nbytes)
        self.shuffles += 1
        self.bytes_shuffled += nbytes
        if self.shuffles % self.CLEANER_GC_INTERVAL == 0:
            # ContextCleaner full GC: cheap for TeraHeap (H2 is fenced),
            # expensive for NVM-resident heaps that must be fully scanned.
            vm.major_gc()
