"""DataFrame and Dataset veneers over RDDs.

Spark abstracts intermediate results as immutable collections through
three APIs — RDDs, DataFrames and Datasets (Section 5) — and the paper's
block-manager integration tags cached partitions of *all three* as root
key-objects.  These veneers give the mini-framework the same API surface:
a DataFrame is a schema'd RDD of row batches; a Dataset adds a typed
element view.  Caching, tagging and H2 migration are inherited unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from ...units import KiB
from .rdd import RDD

if TYPE_CHECKING:  # pragma: no cover
    from .context import SparkContext


@dataclass
class Schema:
    """Column names and per-row byte widths."""

    columns: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def row_bytes(self) -> int:
        return max(16, sum(width for _, width in self.columns))

    def column_names(self) -> List[str]:
        return [name for name, _ in self.columns]

    def project(self, names: List[str]) -> "Schema":
        keep = set(names)
        return Schema([c for c in self.columns if c[0] in keep])


class DataFrame:
    """A schema'd, partitioned, optionally cached collection."""

    def __init__(self, rdd: RDD, schema: Schema):
        self.rdd = rdd
        self.schema = schema

    # -- relational operators ------------------------------------------
    def select(self, *names: str) -> "DataFrame":
        """Column projection: shrinks every row to the kept columns."""
        projected = self.schema.project(list(names))
        factor = projected.row_bytes / self.schema.row_bytes
        return DataFrame(
            self.rdd.map(
                ops_per_chunk=24,
                size_factor=max(factor, 0.05),
                name=f"{self.rdd.name}-select",
            ),
            projected,
        )

    def where(self, selectivity: float) -> "DataFrame":
        """Row filter keeping ``selectivity`` of the rows."""
        if not 0.0 < selectivity <= 1.0:
            raise ValueError("selectivity must be in (0, 1]")
        return DataFrame(
            self.rdd.map(
                ops_per_chunk=32,
                size_factor=selectivity,
                name=f"{self.rdd.name}-where",
            ),
            self.schema,
        )

    def join(self, other: "DataFrame", output_factor: float = 1.0) -> "DataFrame":
        """Hash join: shuffles both sides, produces a combined schema."""
        ctx = self.rdd.ctx
        ctx.shuffle(self.rdd.size_bytes)
        ctx.shuffle(other.rdd.size_bytes)
        joined_schema = Schema(self.schema.columns + other.schema.columns)
        factor = output_factor * (
            joined_schema.row_bytes / self.schema.row_bytes
        )
        return DataFrame(
            self.rdd.map(
                ops_per_chunk=96,
                size_factor=factor,
                name=f"{self.rdd.name}-join",
            ),
            joined_schema,
        )

    def group_by(self, reduction: float = 0.1) -> "DataFrame":
        """Aggregation: shuffles and shrinks to ``reduction`` of the rows."""
        self.rdd.ctx.shuffle(int(self.rdd.size_bytes * 0.8))
        return DataFrame(
            self.rdd.map(
                ops_per_chunk=64,
                size_factor=reduction,
                name=f"{self.rdd.name}-groupby",
            ),
            self.schema,
        )

    # -- caching / actions ----------------------------------------------
    def persist(self) -> "DataFrame":
        """Cached partitions are tagged exactly like RDD partitions."""
        self.rdd.persist()
        return self

    def unpersist(self) -> "DataFrame":
        self.rdd.unpersist()
        return self

    def count(self) -> int:
        return self.rdd.evaluate()

    @property
    def cache_label(self) -> str:
        return self.rdd.cache_label


class Dataset(DataFrame):
    """A typed view over a DataFrame (Spark's ``Dataset[T]``).

    Typed lambda operators cannot be optimised away, so per-element work
    is charged at the deserialized-object rate rather than the columnar
    one — the practical difference between the two APIs.
    """

    #: extra per-chunk work for typed (non-codegen) operators
    TYPED_OVERHEAD = 2

    def map_elements(self, ops_per_element: int = 1) -> "Dataset":
        rdd = self.rdd.map(
            ops_per_chunk=ops_per_element * self.TYPED_OVERHEAD * 16,
            size_factor=1.0,
            name=f"{self.rdd.name}-mapelems",
        )
        return Dataset(rdd, self.schema)

    def filter_elements(self, selectivity: float) -> "Dataset":
        out = self.where(selectivity)
        return Dataset(out.rdd, out.schema)


def read_table(
    ctx: "SparkContext",
    total_bytes: int,
    schema: Optional[Schema] = None,
    name: str = "table",
) -> DataFrame:
    """Entry point: a source DataFrame of ``total_bytes``."""
    schema = schema or Schema([("key", 8), ("value", 120)])
    rdd = ctx.range_rdd(total_bytes, chunk_size=8 * KiB, name=name)
    return DataFrame(rdd, schema)
