"""RDDs: lazily evaluated, partitioned, optionally cached collections."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ...heap.object_model import HeapObject
from ...units import KiB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import SparkContext


@dataclass
class PartitionSpec:
    """Static description of one partition's materialised shape."""

    index: int
    num_chunks: int
    chunk_size: int
    #: GC scan-cost multiplier for this data's chunks: fine-grained
    #: record types (vertex-pair wedges, boxed tuples) pack many more
    #: paper-scale objects per byte than row batches do
    scan_factor: float = 1.0

    @property
    def size_bytes(self) -> int:
        return self.num_chunks * self.chunk_size

    def block_specs(self, target_block_bytes: int) -> List["BlockSpec"]:
        """Split this partition into streaming blocks of bounded size.

        Blocks are chunk-aligned runs of at most ``target_block_bytes``
        (but always at least one chunk); a partition smaller than the
        target streams as a single block.  The split is the streaming
        executor's unit of admission, spill and retirement.
        """
        per_block = max(1, target_block_bytes // max(self.chunk_size, 1))
        return [
            BlockSpec(
                partition=self.index,
                block=b,
                num_chunks=min(per_block, self.num_chunks - b * per_block),
                chunk_size=self.chunk_size,
                scan_factor=self.scan_factor,
            )
            for b in range((self.num_chunks + per_block - 1) // per_block)
        ]


@dataclass(frozen=True)
class BlockSpec:
    """Static shape of one streamed block: a chunk run of a partition."""

    partition: int
    block: int
    num_chunks: int
    chunk_size: int
    scan_factor: float = 1.0

    @property
    def size_bytes(self) -> int:
        return self.num_chunks * self.chunk_size


@dataclass
class MaterializedPartition:
    """A partition resident on the managed heap (H1 or H2)."""

    root: HeapObject
    chunks: List[HeapObject]

    @property
    def size_bytes(self) -> int:
        return self.root.size + sum(c.size for c in self.chunks)


@dataclass(frozen=True)
class Lineage:
    """An RDD's durable recipe: how to rebuild any partition after loss.

    Driver-side metadata (it survives an executor crash), enough to
    recompute a partition without the materialized objects: the parent
    RDD (by id, resolved through the context's registry so the record
    stays valid across VM incarnations), the transform that produced
    this RDD, and the per-chunk compute cost.  The partition *shape*
    lives in the RDD's :class:`PartitionSpec` list, which the block
    manager also uses to validate recovered H2 objects against the
    partition they claim to be.
    """

    op: str  # "source" | "map"
    parent_id: Optional[int]
    compute_ops_per_chunk: int
    size_factor: float = 1.0

    def describe(self) -> str:
        if self.parent_id is None:
            return f"{self.op}(ops={self.compute_ops_per_chunk})"
        return (
            f"{self.op}(parent=rdd-{self.parent_id}, "
            f"ops={self.compute_ops_per_chunk}, x{self.size_factor:g})"
        )

    # -- streaming-aware chunk specs -----------------------------------
    def output_chunks(self, input_chunks: int) -> int:
        """Chunks one stage emits for an ``input_chunks``-chunk block.

        The streaming executor applies lineage at *block* granularity:
        a map stage transforms each in-flight block independently, so
        the per-partition ``size_factor`` applies per block (at least
        one chunk — a block never vanishes).
        """
        if self.parent_id is None:
            return input_chunks
        return max(1, int(input_chunks * self.size_factor))

    def ops_for_chunks(self, num_chunks: int) -> int:
        """Compute operations to process a block of ``num_chunks``."""
        return num_chunks * self.compute_ops_per_chunk


def block_label(cache_label: str, index: int) -> str:
    """The H2 label of one cached partition (``<rdd-label>.p<index>``).

    Labels are per *block* — the unit the block manager caches, evicts
    and (after a crash) re-adopts — so recovery can validate and adopt
    each partition independently: one quarantined region loses one
    block, not the whole RDD.
    """
    return f"{cache_label}.p{index}"


def root_size_for(spec: PartitionSpec) -> int:
    """The descriptor-root allocation size for a partition spec."""
    return max(64, 8 * spec.num_chunks)


class RDD:
    """A resilient distributed dataset.

    Partitions materialise as one descriptor root object referencing
    ``num_chunks`` row-batch chunk objects — the "group of objects with a
    single-entry root reference" structure the paper's hint interface
    exploits (Section 3.1).
    """

    def __init__(
        self,
        ctx: "SparkContext",
        partitions: List[PartitionSpec],
        parent: Optional["RDD"] = None,
        compute_ops_per_chunk: int = 64,
        name: str = "",
        lineage: Optional[Lineage] = None,
    ):
        self.ctx = ctx
        self.rdd_id = ctx.next_rdd_id()
        self.partitions = partitions
        self.parent = parent
        self.compute_ops_per_chunk = compute_ops_per_chunk
        self.name = name or f"rdd-{self.rdd_id}"
        self.persisted = False
        #: registry generation stamped by :meth:`SparkContext.register_rdd`
        self.generation = 1
        self.lineage = lineage or Lineage(
            op="map" if parent is not None else "source",
            parent_id=parent.rdd_id if parent is not None else None,
            compute_ops_per_chunk=compute_ops_per_chunk,
        )
        ctx.register_rdd(self)

    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def size_bytes(self) -> int:
        return sum(p.size_bytes for p in self.partitions)

    @property
    def cache_label(self) -> str:
        """TeraHeap label: the RDD id (Section 5, Figure 4).

        Labels are namespaced by the registry generation the RDD was
        registered under: generation 1 (no restart has rebuilt the
        driver-side graph) keeps the paper's plain ``rdd-<id>`` form,
        while RDDs registered after an executor restart embed the
        generation — so a recomputed RDD whose registry happens to
        reuse an earlier incarnation's numeric id can never match (and
        adopt) that incarnation's stale H2 blocks.
        """
        if self.generation <= 1:
            return f"rdd-{self.rdd_id}"
        return f"rdd-{self.rdd_id}~g{self.generation}"

    def block_label(self, index: int) -> str:
        """Per-partition H2 label used by the block manager."""
        return block_label(self.cache_label, index)

    def lineage_chain(self) -> List[str]:
        """The lineage from this RDD back to its source, for diagnostics."""
        chain: List[str] = []
        rdd: Optional[RDD] = self
        while rdd is not None:
            chain.append(f"{rdd.name}={rdd.lineage.describe()}")
            parent_id = rdd.lineage.parent_id
            rdd = (
                self.ctx.rdd(parent_id) if parent_id is not None else None
            )
        return chain

    def lineage_stages(self) -> List["RDD"]:
        """The operator chain ``source -> ... -> self``, via lineage.

        Resolved through the registry like :meth:`_compute` does, so the
        chain stays valid across executor incarnations.  This is the
        operator pipeline the streaming executor drives blocks through.
        """
        stages: List[RDD] = []
        rdd: Optional[RDD] = self
        while rdd is not None:
            stages.append(rdd)
            parent_id = rdd.lineage.parent_id
            rdd = (
                self.ctx.rdd(parent_id) if parent_id is not None else None
            )
        stages.reverse()
        return stages

    # ------------------------------------------------------------------
    # Transformations (lazy)
    # ------------------------------------------------------------------
    def map(
        self,
        ops_per_chunk: int = 64,
        size_factor: float = 1.0,
        name: str = "",
        scan_factor: Optional[float] = None,
    ) -> "RDD":
        """A narrow transformation producing ``size_factor`` x the bytes."""
        children = [
            PartitionSpec(
                index=p.index,
                num_chunks=max(1, int(p.num_chunks * size_factor)),
                chunk_size=p.chunk_size,
                scan_factor=(
                    p.scan_factor if scan_factor is None else scan_factor
                ),
            )
            for p in self.partitions
        ]
        return RDD(
            self.ctx,
            children,
            parent=self,
            compute_ops_per_chunk=ops_per_chunk,
            name=name,
            lineage=Lineage(
                op="map",
                parent_id=self.rdd_id,
                compute_ops_per_chunk=ops_per_chunk,
                size_factor=size_factor,
            ),
        )

    def persist(self) -> "RDD":
        """Mark for caching — the unmodified application-level call."""
        self.persisted = True
        return self

    def unpersist(self) -> "RDD":
        self.persisted = False
        self.ctx.block_manager.evict_rdd(self)
        return self

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def compute_partition(self, index: int) -> MaterializedPartition:
        """Materialise one partition, honouring the cache."""
        if self.persisted:
            return self.ctx.block_manager.get_or_compute(
                self, index, self._compute
            )
        return self._compute(index)

    def _compute(self, index: int) -> MaterializedPartition:
        vm = self.ctx.vm
        spec = self.partitions[index]
        # Resolve the parent through the lineage record, not the object
        # reference: the record is the durable recipe a restarted driver
        # recomputes from (self.parent is kept as a convenience alias).
        parent = (
            self.ctx.rdd(self.lineage.parent_id)
            if self.lineage.parent_id is not None
            else None
        )
        with vm.roots.frame() as frame:
            if parent is not None:
                parent_part = parent.compute_partition(index)
                # The task holds its input partition on the stack while
                # producing this one; with a batch frame active, all
                # concurrent tasks' inputs stay pinned together.
                holder = self.ctx.batch_frame or frame
                holder.push(parent_part.root)
                holder.push_all(parent_part.chunks)
                self.ctx.read_partition(parent_part)
                vm.compute(
                    len(parent_part.chunks) * self.compute_ops_per_chunk
                )
            else:
                # Source partition: records stream in from external storage.
                vm.compute(spec.num_chunks * self.compute_ops_per_chunk)
            chunks = []
            for i in range(spec.num_chunks):
                chunk = vm.allocate(
                    spec.chunk_size, name=f"{self.name}-p{index}-c{i}"
                )
                chunk.scan_factor = spec.scan_factor
                chunks.append(frame.push(chunk))
            root = vm.allocate(
                root_size_for(spec),
                refs=chunks,
                name=f"{self.name}-p{index}",
            )
        return MaterializedPartition(root=root, chunks=chunks)

    def _task_batches(self):
        """Partition indices grouped by executor task slots.

        The executor runs ``mutator_threads`` tasks concurrently; each
        in-flight task pins its partition (and any deserialized copy of
        it) on the mutator stack.  This concurrent working set is what
        overflows the survivor spaces and drives promotion — the memory
        pressure the paper's Section 7.6 thread-scaling experiment probes.
        """
        threads = self.ctx.vm.config.mutator_threads
        indices = list(range(self.num_partitions))
        for i in range(0, len(indices), threads):
            yield indices[i : i + threads]

    def evaluate(self) -> int:
        """Action: materialise every partition (e.g. ``count()``).

        Uncached partitions become garbage as soon as their task batch
        completes — the allocation churn that pressures the young gen.
        """
        total = 0
        vm = self.ctx.vm
        for batch in self._task_batches():
            with vm.roots.frame() as frame:
                self.ctx.batch_frame = frame
                try:
                    for index in batch:
                        self.ctx.task_start(self, index)
                        part = self.compute_partition(index)
                        frame.push(part.root)
                        frame.push_all(part.chunks)
                        total += part.size_bytes
                finally:
                    self.ctx.batch_frame = None
        self.ctx.task_end()
        return total

    def evaluate_streaming(self) -> int:
        """Action: stream every partition through the operator chain.

        The streaming sibling of :meth:`evaluate`: blocks flow through
        the lineage stages under the context's bounded in-flight budget
        instead of materializing whole RDDs.  Returns the same byte
        total an :meth:`evaluate` of this RDD would.
        """
        from .streaming import StreamingExecutor

        return StreamingExecutor(self.ctx).run(self).total_bytes

    #: temporary bytes allocated per cached byte processed in an epoch
    #: (gradient vectors, boxed intermediates)
    EPOCH_TEMP_RATIO = 0.3
    #: per-task partial aggregates that stay live for the task's duration
    #: and therefore survive (and get copied by) intervening minor GCs
    EPOCH_PARTIAL_RATIO = 0.12

    def foreach_cached(self, ops_per_chunk: int) -> None:
        """Iterate the cached data (one ML training epoch)."""
        vm = self.ctx.vm
        for batch in self._task_batches():
            with vm.roots.frame() as frame:
                for index in batch:
                    self.ctx.task_start(self, index)
                    part = self.compute_partition(index)
                    frame.push(part.root)
                    frame.push_all(part.chunks)
                    self.ctx.read_partition(part)
                    vm.compute(len(part.chunks) * ops_per_chunk)
                    partial = int(part.size_bytes * self.EPOCH_PARTIAL_RATIO)
                    if partial >= 16:
                        frame.push(
                            vm.allocate(partial, name="task-partial")
                        )
                    vm.allocate_temp(
                        int(part.size_bytes * self.EPOCH_TEMP_RATIO)
                    )
        self.ctx.task_end()


def make_partitions(
    total_bytes: int,
    num_partitions: int,
    chunk_size: int = 8 * KiB,
    scan_factor: float = 1.0,
) -> List[PartitionSpec]:
    """Split ``total_bytes`` into equal partitions of equal-size chunks."""
    per_part = max(chunk_size, total_bytes // max(num_partitions, 1))
    chunks = max(1, per_part // chunk_size)
    return [
        PartitionSpec(
            index=i,
            num_chunks=chunks,
            chunk_size=chunk_size,
            scan_factor=scan_factor,
        )
        for i in range(num_partitions)
    ]
