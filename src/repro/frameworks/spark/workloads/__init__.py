"""The ten Spark workloads of the paper's evaluation (Table 3).

GraphX: PageRank (PR), Connected Components (CC), Shortest Path (SSSP),
SVDPlusPlus (SVD), Triangle Counts (TR).  MLlib: Linear Regression (LR),
Logistic Regression (LgR), Support Vector Machine (SVM), Naive Bayes
Classifier (BC).  SQL: RDD-Relational (RL).  KMeans (KM) appears only in
the Panthera comparison (Figure 12c).

Each workload is a function ``run(ctx, dataset_bytes, scale=1.0)`` whose
allocation, caching, S/D and compute pattern mirrors its SparkBench
counterpart at simulation scale.
"""

from .graphx import (
    run_connected_components,
    run_pagerank,
    run_shortest_path,
    run_svdplusplus,
    run_triangle_counts,
)
from .mllib import (
    run_kmeans,
    run_linear_regression,
    run_logistic_regression,
    run_naive_bayes,
    run_svm,
)
from .sql import run_rdd_relational

#: registry keyed by the paper's workload abbreviations
SPARK_WORKLOADS = {
    "PR": run_pagerank,
    "CC": run_connected_components,
    "SSSP": run_shortest_path,
    "SVD": run_svdplusplus,
    "TR": run_triangle_counts,
    "LR": run_linear_regression,
    "LgR": run_logistic_regression,
    "SVM": run_svm,
    "BC": run_naive_bayes,
    "RL": run_rdd_relational,
    "KM": run_kmeans,
}

__all__ = ["SPARK_WORKLOADS"] + [
    f"run_{n}"
    for n in (
        "pagerank",
        "connected_components",
        "shortest_path",
        "svdplusplus",
        "triangle_counts",
        "linear_regression",
        "logistic_regression",
        "svm",
        "naive_bayes",
        "kmeans",
        "rdd_relational",
    )
]
