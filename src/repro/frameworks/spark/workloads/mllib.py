"""MLlib-style training workloads.

LR/LgR/SVM cache a training set and stream every cached record once per
epoch — the access pattern that, under TeraHeap, turns into sequential H2
reads running at the device's bandwidth ceiling (Section 7.1), and under
Spark-SD into a full deserialization of the off-heap partitions every
epoch.  BC (Naive Bayes on KDD12) is a single pass with large aggregation
shuffles and large row batches (humongous objects under G1).
"""

from __future__ import annotations

from ....units import KiB
from ..context import SparkContext

#: row-batch size for workloads whose batches become humongous under G1
#: (> half a 32 MB-at-paper-scale G1 region, and not a multiple of the
#: region size, so every batch wastes a large tail of its last region)
LARGE_BATCH = 40 * KiB


def _train(
    ctx: SparkContext,
    dataset_bytes: int,
    epochs: int,
    ops_per_chunk: int,
    chunk_size: int = 8 * KiB,
    aggregate_bytes: int = 64 * KiB,
    name: str = "ml",
) -> None:
    points = ctx.range_rdd(
        dataset_bytes, chunk_size=chunk_size, name=f"{name}-points"
    ).persist()
    points.evaluate()  # load + cache the training set
    for _ in range(epochs):
        points.foreach_cached(ops_per_chunk)  # one gradient epoch
        ctx.shuffle(aggregate_bytes)  # treeAggregate of the gradient


def run_linear_regression(
    ctx: SparkContext, dataset_bytes: int, scale: float = 1.0
):
    _train(
        ctx,
        dataset_bytes,
        epochs=max(2, int(15 * scale)),
        ops_per_chunk=96,
        name="lr",
    )


def run_logistic_regression(
    ctx: SparkContext, dataset_bytes: int, scale: float = 1.0
):
    _train(
        ctx,
        dataset_bytes,
        epochs=max(2, int(15 * scale)),
        ops_per_chunk=128,
        name="lgr",
    )


def run_svm(ctx: SparkContext, dataset_bytes: int, scale: float = 1.0):
    """SVM: hinge-loss epochs over large row batches."""
    _train(
        ctx,
        dataset_bytes,
        epochs=max(2, int(12 * scale)),
        ops_per_chunk=112,
        chunk_size=LARGE_BATCH,
        name="svm",
    )


def run_naive_bayes(
    ctx: SparkContext, dataset_bytes: int, scale: float = 1.0
):
    """BC: one pass over KDD12-like data + heavy aggregation.

    The cached data largely fits on-heap, so TeraHeap's S/D savings are
    small here (the paper measures only 2%); the benefit is GC relief.
    """
    points = ctx.range_rdd(
        dataset_bytes, chunk_size=LARGE_BATCH, name="bc-points"
    ).persist()
    points.evaluate()
    for _ in range(max(1, int(2 * scale))):
        points.foreach_cached(80)
        ctx.shuffle(int(dataset_bytes * 0.25))


def run_kmeans(ctx: SparkContext, dataset_bytes: int, scale: float = 1.0):
    """KM: Lloyd iterations (appears in the Panthera comparison only)."""
    _train(
        ctx,
        dataset_bytes,
        epochs=max(2, int(10 * scale)),
        ops_per_chunk=144,
        aggregate_bytes=128 * KiB,
        name="km",
    )
