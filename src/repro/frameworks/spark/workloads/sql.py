"""The SQL RDD-Relational (RL) workload: scan, filter, join, aggregate."""

from __future__ import annotations

from ..context import SparkContext
from .mllib import LARGE_BATCH


def run_rdd_relational(
    ctx: SparkContext, dataset_bytes: int, scale: float = 1.0
):
    """RL: relational pipeline over a cached filtered table.

    Large row batches (humongous under G1) and join shuffles; the filtered
    table is cached and re-joined several times.
    """
    table = ctx.range_rdd(
        dataset_bytes, chunk_size=LARGE_BATCH, name="rl-table"
    )
    filtered = table.map(
        ops_per_chunk=64, size_factor=0.7, name="rl-filtered"
    ).persist()
    filtered.evaluate()
    passes = max(2, int(4 * scale))
    for round_id in range(passes):
        joined = filtered.map(
            ops_per_chunk=128, size_factor=0.5, name=f"rl-join-{round_id}"
        )
        joined.evaluate()
        ctx.shuffle(int(dataset_bytes * 0.3))  # join exchange
        ctx.shuffle(int(dataset_bytes * 0.12))  # group-by aggregation
