"""GraphX-style iterative graph workloads.

All five follow GraphX's Pregel-on-RDDs structure: a cached edge RDD is
joined with a (much smaller) vertex-state RDD every iteration, producing
shuffled contributions and a fresh vertex RDD.  The cached edges dominate
the heap; the per-iteration intermediates are young-generation churn.
"""

from __future__ import annotations

from ....units import KiB
from ..context import SparkContext


def _iterative(
    ctx: SparkContext,
    dataset_bytes: int,
    iterations: int,
    contrib_factor: float,
    shuffle_factor: float,
    ops_per_chunk: int,
    name: str,
    shuffle_decay: float = 1.0,
    chunk_size: int = 8 * KiB,
) -> None:
    edges = ctx.range_rdd(
        dataset_bytes, chunk_size=chunk_size, name=f"{name}-edges"
    ).persist()
    edges.evaluate()  # graph loading + caching
    shuffle_bytes = dataset_bytes * shuffle_factor
    for it in range(iterations):
        contribs = edges.map(
            ops_per_chunk=ops_per_chunk,
            size_factor=contrib_factor,
            name=f"{name}-contribs-{it}",
        )
        contribs.evaluate()  # reads the cached edges, allocates churn
        ctx.shuffle(int(shuffle_bytes))
        shuffle_bytes *= shuffle_decay


def run_pagerank(ctx: SparkContext, dataset_bytes: int, scale: float = 1.0):
    """PR: fixed-point iteration, constant shuffle volume."""
    _iterative(
        ctx,
        dataset_bytes,
        iterations=max(2, int(10 * scale)),
        contrib_factor=0.12,
        shuffle_factor=0.10,
        ops_per_chunk=64,
        name="pr",
    )


def run_connected_components(
    ctx: SparkContext, dataset_bytes: int, scale: float = 1.0
):
    """CC: label propagation whose shuffle volume shrinks as labels settle."""
    _iterative(
        ctx,
        dataset_bytes,
        iterations=max(2, int(8 * scale)),
        contrib_factor=0.10,
        shuffle_factor=0.12,
        shuffle_decay=0.7,
        ops_per_chunk=48,
        name="cc",
    )


def run_shortest_path(
    ctx: SparkContext, dataset_bytes: int, scale: float = 1.0
):
    """SSSP: frontier-driven, light shuffles, many iterations."""
    _iterative(
        ctx,
        dataset_bytes,
        iterations=max(2, int(12 * scale)),
        contrib_factor=0.06,
        shuffle_factor=0.05,
        shuffle_decay=0.85,
        ops_per_chunk=40,
        name="sssp",
    )


def run_svdplusplus(
    ctx: SparkContext, dataset_bytes: int, scale: float = 1.0
):
    """SVD++: latent-factor updates with heavy per-iteration intermediates."""
    _iterative(
        ctx,
        dataset_bytes,
        iterations=max(2, int(12 * scale)),
        contrib_factor=0.25,
        shuffle_factor=0.15,
        ops_per_chunk=160,
        name="svd",
    )


def run_triangle_counts(
    ctx: SparkContext, dataset_bytes: int, scale: float = 1.0
):
    """TR: non-iterative but shuffle-dominated (triplet joins).

    TR caches a projection small enough for the on-heap cache, so — as the
    paper notes — TeraHeap's S/D savings on caching are minimal here; the
    win comes from GC relief.
    """
    # Triangle counting works over vast numbers of *small* objects
    # (vertex-pair wedges), so its partitions use fine-grained chunks —
    # this is the paper's most GC-bound workload (G1 beats PS by 72%).
    graph = ctx.range_rdd(
        dataset_bytes, chunk_size=2 * KiB, name="tr-graph", scan_factor=8.0
    )
    projection = graph.map(
        ops_per_chunk=24, size_factor=0.35, name="tr-adj"
    ).persist()
    projection.evaluate()
    for round_id in range(max(2, int(4 * scale))):
        # Triplet streams are transient row batches; the dense small-object
        # structure is the *cached* adjacency the collector re-marks.
        triplets = projection.map(
            ops_per_chunk=48,
            size_factor=1.5,
            name=f"tr-triplets-{round_id}",
            scan_factor=1.5,
        )
        triplets.evaluate()
        ctx.shuffle(int(dataset_bytes * 0.25))
