"""Spark executor configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ...devices.base import Device
from ...units import KiB


class CachePolicy(enum.Enum):
    """How the block manager handles cached partitions (Table 2)."""

    #: Spark-SD: on-heap up to the storage fraction, the rest serialized to
    #: the off-heap store on NVMe SSD or NVM (App Direct)
    SD = "sd"
    #: Spark-MO: heap sized to fit all cached data (NVM Memory mode)
    MO = "mo"
    #: TeraHeap: cached partitions tagged and migrated to H2
    TERAHEAP = "teraheap"


@dataclass
class SparkConf:
    """Executor-level knobs used by the paper's configurations."""

    cache_policy: CachePolicy = CachePolicy.SD
    #: device backing the off-heap store and shuffle spills
    offheap_device: Optional[Device] = None
    num_partitions: int = 64
    #: fraction of the heap the on-heap cache may occupy (Section 6: 50%)
    storage_fraction: float = 0.5
    #: average serialized record size, used to count shuffle records
    shuffle_record_bytes: int = 512

    # --- Streaming execution (block-streaming executor) ----------------
    #: execution slots of the streaming executor; the bounded in-flight
    #: budget is ``max_inflight_blocks x target_block_bytes`` (Ray Data's
    #: ``num_execution_slots x max_block_size`` formula)
    max_inflight_blocks: int = 4
    #: target size of one streamed block; partitions larger than this are
    #: split into multiple blocks, smaller partitions stream as one
    target_block_bytes: int = 256 * KiB
    #: H1 occupancy at which the streaming executor applies operator
    #: backpressure (spill-then-stall) even with a healthy device
    stream_pressure_watermark: float = 0.85
    #: simulated seconds one streaming backpressure stall parks the
    #: operator pipeline before rechecking admission
    stream_stall_wait: float = 1e-3
    #: stall rounds per admission before the executor force-admits (the
    #: block is coming either way; bounded stalling keeps progress)
    stream_max_stall_rounds: int = 4

    @property
    def inflight_budget_bytes(self) -> int:
        """The streaming executor's bounded in-flight byte budget."""
        return self.max_inflight_blocks * self.target_block_bytes
