"""Spark executor configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ...devices.base import Device


class CachePolicy(enum.Enum):
    """How the block manager handles cached partitions (Table 2)."""

    #: Spark-SD: on-heap up to the storage fraction, the rest serialized to
    #: the off-heap store on NVMe SSD or NVM (App Direct)
    SD = "sd"
    #: Spark-MO: heap sized to fit all cached data (NVM Memory mode)
    MO = "mo"
    #: TeraHeap: cached partitions tagged and migrated to H2
    TERAHEAP = "teraheap"


@dataclass
class SparkConf:
    """Executor-level knobs used by the paper's configurations."""

    cache_policy: CachePolicy = CachePolicy.SD
    #: device backing the off-heap store and shuffle spills
    offheap_device: Optional[Device] = None
    num_partitions: int = 64
    #: fraction of the heap the on-heap cache may occupy (Section 6: 50%)
    storage_fraction: float = 0.5
    #: average serialized record size, used to count shuffle records
    shuffle_record_bytes: int = 512
