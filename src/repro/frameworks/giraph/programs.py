"""Vertex programs: the five LDBC Graphalytics workloads (Table 4).

Each program owns its value arrays (numpy) and exposes one superstep
transition: given which vertices received messages, compute new values and
report which vertices *send* messages this superstep.  The job layer turns
sends into message-store allocations; the program layer is pure algorithm.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ...workloads.generators import GraphDataset


class VertexProgram:
    """Base class: algorithm state over a CSR view of the graph."""

    name = "program"
    #: upper bound on supersteps (safety for non-converging runs)
    max_supersteps = 30

    def __init__(self, graph: GraphDataset):
        self.graph = graph
        n = graph.num_vertices
        lengths = np.array([len(e) for e in graph.out_edges], dtype=np.int64)
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=self.indptr[1:])
        self.edge_targets = (
            np.concatenate(graph.out_edges)
            if n
            else np.zeros(0, dtype=np.int64)
        ).astype(np.int64)
        self.edge_sources = np.repeat(np.arange(n, dtype=np.int64), lengths)
        self.out_degree = np.maximum(lengths, 1)

    # ------------------------------------------------------------------
    def initial_senders(self) -> np.ndarray:
        """Boolean mask of vertices that send in superstep 0."""
        raise NotImplementedError

    def superstep(
        self, step: int, received: np.ndarray, senders: np.ndarray
    ) -> Tuple[np.ndarray, bool]:
        """One BSP transition.

        ``received`` marks vertices with incoming messages; ``senders``
        marks who sent them.  Returns the mask of vertices sending in the
        *next* superstep and a convergence flag.
        """
        raise NotImplementedError

    # -- helpers --------------------------------------------------------
    def _messages_from(self, senders: np.ndarray) -> np.ndarray:
        """Target-vertex mask of messages sent by ``senders``."""
        mask = senders[self.edge_sources]
        received = np.zeros(self.graph.num_vertices, dtype=bool)
        received[self.edge_targets[mask]] = True
        return received


class PageRankProgram(VertexProgram):
    """PR: every vertex sends rank/degree along every edge, fixed rounds."""

    name = "PR"

    def __init__(self, graph: GraphDataset, iterations: int = 12):
        super().__init__(graph)
        self.iterations = iterations
        self.max_supersteps = iterations
        self.ranks = np.full(graph.num_vertices, 1.0 / max(graph.num_vertices, 1))

    def initial_senders(self) -> np.ndarray:
        return np.ones(self.graph.num_vertices, dtype=bool)

    def superstep(self, step, received, senders):
        contrib = self.ranks[self.edge_sources] / self.out_degree[self.edge_sources]
        sums = np.zeros(self.graph.num_vertices)
        np.add.at(sums, self.edge_targets, contrib * senders[self.edge_sources])
        self.ranks = 0.15 / max(self.graph.num_vertices, 1) + 0.85 * sums
        done = step + 1 >= self.iterations
        next_senders = np.ones(self.graph.num_vertices, dtype=bool)
        return next_senders, done


class CDLPProgram(VertexProgram):
    """CDLP: community detection by label propagation, fixed rounds.

    Graphalytics CDLP adopts each vertex's most frequent neighbour label;
    every vertex stays active every round.
    """

    name = "CDLP"

    def __init__(self, graph: GraphDataset, iterations: int = 10):
        super().__init__(graph)
        self.iterations = iterations
        self.max_supersteps = iterations
        self.labels = np.arange(graph.num_vertices, dtype=np.int64)

    def initial_senders(self) -> np.ndarray:
        return np.ones(self.graph.num_vertices, dtype=bool)

    def superstep(self, step, received, senders):
        # Most-frequent-neighbour-label, approximated by the minimum label
        # among neighbours weighted by occurrence (ties resolve to min, as
        # in the Graphalytics reference implementation).
        incoming = self.labels[self.edge_sources]
        new_labels = self.labels.copy()
        order = np.argsort(self.edge_targets, kind="stable")
        np.minimum.at(new_labels, self.edge_targets[order], incoming[order])
        self.labels = new_labels
        done = step + 1 >= self.iterations
        return np.ones(self.graph.num_vertices, dtype=bool), done


class WCCProgram(VertexProgram):
    """WCC: min-label propagation until no label changes."""

    name = "WCC"
    max_supersteps = 25

    def __init__(self, graph: GraphDataset):
        super().__init__(graph)
        self.components = np.arange(graph.num_vertices, dtype=np.int64)

    def initial_senders(self) -> np.ndarray:
        return np.ones(self.graph.num_vertices, dtype=bool)

    def superstep(self, step, received, senders):
        incoming = self.components[self.edge_sources]
        candidate = self.components.copy()
        mask = senders[self.edge_sources]
        np.minimum.at(candidate, self.edge_targets[mask], incoming[mask])
        changed = candidate < self.components
        self.components = candidate
        return changed, not changed.any()


class BFSProgram(VertexProgram):
    """BFS: frontier expansion from a source vertex."""

    name = "BFS"
    max_supersteps = 25

    def __init__(self, graph: GraphDataset, source: int = 0):
        super().__init__(graph)
        self.dist = np.full(graph.num_vertices, -1, dtype=np.int64)
        self.dist[source] = 0
        self.source = source

    def initial_senders(self) -> np.ndarray:
        mask = np.zeros(self.graph.num_vertices, dtype=bool)
        mask[self.source] = True
        return mask

    def superstep(self, step, received, senders):
        frontier = received & (self.dist < 0)
        self.dist[frontier] = step + 1
        return frontier, not frontier.any()


class SSSPProgram(VertexProgram):
    """SSSP: Bellman-Ford-style relaxation with unit-ish weights."""

    name = "SSSP"
    max_supersteps = 30

    def __init__(self, graph: GraphDataset, source: int = 0):
        super().__init__(graph)
        n = graph.num_vertices
        self.dist = np.full(n, np.inf)
        self.dist[source] = 0.0
        # Deterministic pseudo-weights in [1, 4].
        self.weights = 1.0 + (
            (self.edge_sources + self.edge_targets) % 4
        ).astype(float)
        self.source = source

    def initial_senders(self) -> np.ndarray:
        mask = np.zeros(self.graph.num_vertices, dtype=bool)
        mask[self.source] = True
        return mask

    def superstep(self, step, received, senders):
        mask = senders[self.edge_sources]
        candidate = self.dist.copy()
        np.minimum.at(
            candidate,
            self.edge_targets[mask],
            self.dist[self.edge_sources[mask]] + self.weights[mask],
        )
        improved = candidate < self.dist
        self.dist = candidate
        return improved, not improved.any()
