"""Giraph worker configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ...devices.base import Device


class GiraphMode(enum.Enum):
    #: Giraph-OOC: heap in DRAM, overflow offloaded to the device
    OOC = "ooc"
    #: edges and messages tagged for H2
    TERAHEAP = "teraheap"


@dataclass
class GiraphConf:
    """Worker-level knobs (Table 4 configurations)."""

    mode: GiraphMode = GiraphMode.OOC
    #: device backing the out-of-core store (OOC mode)
    device: Optional[Device] = None
    num_partitions: int = 8
    #: heap-occupancy fraction at which the OOC scheduler offloads
    ooc_threshold: float = 0.72
    #: simulated bytes per individual message (before per-target batching)
    bytes_per_message: int = 96
    #: mutator operations per active vertex per superstep.  One simulated
    #: vertex stands for thousands of paper-scale vertices (the graph is
    #: coarsened like every other size), so this carries the coarsening.
    ops_per_vertex: int = 800
    #: issue h2_move() hints (Figure 9a ablation switches this off)
    use_move_hint: bool = True
    #: optional message combiner ("sum" | "min" | "max"): collapses each
    #: target's batch to one value, shrinking the message stores.  None
    #: matches the paper's evaluation configuration.
    combiner: Optional[str] = None
