"""The Giraph out-of-core (OOC) scheduler — the paper's baseline mode.

Giraph monitors memory pressure in the managed heap and moves vertices,
edges and messages off-heap to the storage device, selecting victims with
an LRU-ish policy (Section 5).  Because Giraph already keeps these as
serialized byte arrays, offloading needs no S/D — just device writes — but
every later access pays a device read and re-allocates the data on-heap,
and the reloaded bytes immediately count as heap pressure again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...clock import Bucket
from ...devices.page_cache import PageCache

if TYPE_CHECKING:  # pragma: no cover
    from .job import GiraphJob


class OOCScheduler:
    """Heap-pressure-driven offloading of edge arrays and message stores.

    Out-of-core I/O goes through the kernel page cache (the DR2 slice of
    DRAM, Table 4), so recently offloaded or reloaded data is often served
    from memory rather than the device.
    """

    def __init__(self, job: "GiraphJob", threshold: float):
        self.job = job
        self.threshold = threshold
        device = job.conf.device
        self.cache = (
            PageCache(device, job.vm.config.page_cache_size)
            if device is not None
            else None
        )
        self._next_offset = 0
        self._offsets = {}
        #: bytes dropped from the heap since the last collection; the heap
        #: accountant only sees them disappear at the next GC, so the
        #: scheduler keeps its own estimate to avoid offloading everything
        self.dropped_estimate = 0
        self.offload_events = 0
        self.bytes_offloaded = 0
        self.bytes_reloaded = 0
        self._victim_cursor = 0

    # ------------------------------------------------------------------
    def effective_occupancy(self) -> float:
        vm = self.job.vm
        # A collection actually reclaims dropped objects; reset the
        # estimate whenever one has run since the last check.
        cycles = len(vm.collector.stats.cycles)
        if cycles != getattr(self, "_seen_cycles", -1):
            self._seen_cycles = cycles
            self.dropped_estimate = 0
        used = max(vm.heap.used() - self.dropped_estimate, 0)
        return used / vm.heap.capacity

    def note_gc(self) -> None:
        self.dropped_estimate = 0

    # ------------------------------------------------------------------
    def maybe_offload(self) -> None:
        """Offload partitions' edge arrays until pressure subsides."""
        if self.effective_occupancy() <= self.threshold:
            return
        job = self.job
        partitions = job.conf.num_partitions
        target = self.threshold - 0.05
        for _ in range(partitions):
            if self.effective_occupancy() <= target:
                break
            pid = self._victim_cursor % partitions
            self._victim_cursor += 1
            if pid == job.current_partition:
                continue  # never evict the partition being computed
            freed = 0
            to_write = 0
            for v in job.partition_vertices(pid):
                f, w = job.offload_edges(v)
                freed += f
                to_write += w
            self.device_write(("part", pid), to_write)
            self.dropped_estimate += freed
            self.bytes_offloaded += freed
            if freed:
                self.offload_events += 1
        if self.effective_occupancy() > self.threshold:
            # Edges alone were not enough: push the incoming message store
            # out-of-core as well (Giraph offloads messages too).
            freed = job.offload_incoming_messages()
            if freed:
                self.device_write(("msgs", job.supersteps_run), freed)
                self.dropped_estimate += freed
                self.bytes_offloaded += freed
                self.offload_events += 1
        if self.effective_occupancy() > self.threshold:
            # Last resort: offload whole vertex partitions (Table 2 —
            # Giraph's OOC handles vertices, edges and messages).
            for _ in range(partitions):
                if self.effective_occupancy() <= target:
                    break
                pid = self._victim_cursor % partitions
                self._victim_cursor += 1
                if pid == job.current_partition:
                    continue
                freed, to_write = job.offload_vertices(pid)
                self.device_write(("vparts", pid), to_write)
                self.dropped_estimate += freed
                self.bytes_offloaded += freed
                if freed:
                    self.offload_events += 1

    # ------------------------------------------------------------------
    def _pages(self, key, nbytes: int):
        """Stable page range in the out-of-core file for ``key``."""
        offset = self._offsets.get(key)
        if offset is None:
            offset = self._next_offset
            self._offsets[key] = offset
            self._next_offset += nbytes
        page = self.cache.page_size
        return range(offset // page, (offset + max(nbytes, 1) - 1) // page + 1)

    def device_write(self, key, nbytes: int) -> None:
        """Offload ``nbytes`` under ``key`` through the page cache."""
        if self.cache is None or nbytes <= 0:
            return
        with self.job.vm.clock.context(Bucket.SD_IO):
            self.cache.write_through(self._pages(key, nbytes))

    def reload(self, nbytes: int, key=None) -> None:
        """Charge an on-demand reload of offloaded data."""
        if self.cache is not None and nbytes > 0:
            with self.job.vm.clock.context(Bucket.SD_IO):
                if key is not None:
                    self.cache.access(self._pages(key, nbytes))
                else:
                    self.job.conf.device.read(nbytes)
        self.bytes_reloaded += nbytes
