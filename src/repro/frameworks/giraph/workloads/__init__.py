"""The five Giraph workloads (LDBC Graphalytics, Table 4)."""

from __future__ import annotations

from typing import Callable, Dict

from ....runtime import JavaVM
from ....units import KiB
from ....workloads.generators import GraphDataset, make_graph
from ..conf import GiraphConf
from ..job import GiraphJob
from ..programs import (
    BFSProgram,
    CDLPProgram,
    PageRankProgram,
    SSSPProgram,
    VertexProgram,
    WCCProgram,
)

#: program constructors keyed by the paper's workload abbreviations
GIRAPH_PROGRAMS: Dict[str, Callable[[GraphDataset], VertexProgram]] = {
    "PR": PageRankProgram,
    "CDLP": CDLPProgram,
    "WCC": WCCProgram,
    "BFS": BFSProgram,
    "SSSP": SSSPProgram,
}


def make_giraph_graph(target_bytes: int, seed: int = 42) -> GraphDataset:
    """A datagen-like graph sized so edge arrays stay below H2 region size."""
    num_vertices = max(2000, target_bytes // (12 * KiB))
    return make_graph(
        target_bytes, num_vertices=num_vertices, avg_degree=8.0, seed=seed
    )


def run_giraph(
    vm: JavaVM,
    conf: GiraphConf,
    graph: GraphDataset,
    workload: str,
) -> GiraphJob:
    """Load the graph and run one workload end to end."""
    program = GIRAPH_PROGRAMS[workload](graph)
    job = GiraphJob(vm, conf, graph)
    job.load_graph()
    job.run(program)
    return job


__all__ = ["GIRAPH_PROGRAMS", "make_giraph_graph", "run_giraph"]
