"""Mini-Giraph: BSP vertex-centric graph processing (Section 5, Figure 5).

Models the Giraph behaviours the paper depends on:

- graph loading in an *input superstep*: a partition store of vertices,
  each with a serialized byte-array of out-edges;
- per-superstep *incoming* (immutable) and *current* (mutable) message
  stores, with messages becoming immutable at the superstep barrier;
- an out-of-core (OOC) scheduler that offloads edges/messages/vertices to
  the storage device under heap pressure (the Giraph-OOC baseline);
- the TeraHeap integration: out-edge arrays tagged at load and moved
  after the input superstep; each superstep's message store tagged as it
  is produced and moved at the start of the next superstep.  Vertices are
  never tagged — they are updated every superstep.
"""

from .conf import GiraphConf, GiraphMode
from .job import GiraphJob
from .programs import (
    BFSProgram,
    CDLPProgram,
    PageRankProgram,
    SSSPProgram,
    VertexProgram,
    WCCProgram,
)

__all__ = [
    "BFSProgram",
    "CDLPProgram",
    "GiraphConf",
    "GiraphJob",
    "GiraphMode",
    "PageRankProgram",
    "SSSPProgram",
    "VertexProgram",
    "WCCProgram",
]
