"""The Giraph worker: graph loading, BSP supersteps, message stores.

Execution follows Figure 5:

1. *input superstep* — vertices and their out-edge byte arrays are loaded
   into the partition store; under TeraHeap each edge array is tagged
   (``h2_tag_root``) and the move is advised at the end of loading;
2. each superstep consumes the *incoming* message store (immutable) and
   fills the *current* one (mutable); the current store's root is tagged
   as it is created and its move advised at the start of the *next*
   superstep, once the barrier has made it immutable;
3. consumed message stores are dropped at the barrier — under TeraHeap
   their H2 regions die and are reclaimed in bulk at the next major GC.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ...heap.object_model import HeapObject
from ...units import KiB
from ...workloads.generators import GraphDataset
from ...runtime import JavaVM
from .conf import GiraphConf, GiraphMode
from .ooc import OOCScheduler
from .programs import VertexProgram

#: byte arrays above this are split across several heap objects, as
#: Giraph pages very large edge lists (also keeps every object smaller
#: than an H2 region)
MAX_ARRAY_OBJECT = 12 * KiB

#: label of the out-edge arrays' object group
EDGES_LABEL = "edges-input"


class GiraphJob:
    """One Giraph worker executing a vertex program."""

    def __init__(self, vm: JavaVM, conf: GiraphConf, graph: GraphDataset):
        self.vm = vm
        self.conf = conf
        self.graph = graph
        #: pins the partition store and the live message stores
        self.runtime_root = vm.allocate(512, name="giraph-runtime")
        vm.roots.add(self.runtime_root)
        n = graph.num_vertices
        self.vertex_objs: List[Optional[HeapObject]] = [None] * n
        self.edge_roots: List[Optional[HeapObject]] = [None] * n
        #: edge arrays are immutable after loading: once written to the
        #: out-of-core store they never need re-writing
        self.edges_on_disk: List[bool] = [False] * n
        #: partition currently being computed (OOC eviction skips it)
        self.current_partition: Optional[int] = None
        self._edge_sizes = [graph.edge_array_size(v) for v in range(n)]
        self.partition_roots: List[HeapObject] = []
        self.incoming_root: Optional[HeapObject] = None
        self.incoming_msgs: Dict[int, HeapObject] = {}
        #: message sizes for incoming messages offloaded by the OOC
        #: scheduler; reads pay a device round trip
        self.offloaded_msgs: Dict[int, int] = {}
        self.bytes_per_message = max(16, graph.bytes_per_edge // 5)
        from .combiners import AggregatorRegistry, resolve_combiner

        self.combiner = resolve_combiner(conf.combiner)
        self.aggregators = AggregatorRegistry(vm, self.runtime_root)
        self.ooc = (
            OOCScheduler(self, conf.ooc_threshold)
            if conf.mode is GiraphMode.OOC
            else None
        )
        self.supersteps_run = 0
        self.messages_sent = 0
        #: cumulative bytes of message-store objects allocated
        self.message_store_bytes = 0

    # ==================================================================
    # Graph loading (input superstep)
    # ==================================================================
    def load_graph(self) -> None:
        vm = self.vm
        n = self.graph.num_vertices
        parts = self.conf.num_partitions
        # The partition store exists before loading begins; every vertex is
        # inserted (and thereby rooted) as soon as it is read.
        for pid in range(parts):
            root = vm.allocate(
                max(64, 8 * (n // parts + 1)), name=f"partition-{pid}"
            )
            vm.write_ref(self.runtime_root, root)
            self.partition_roots.append(root)
        for v in range(n):
            with vm.roots.frame() as frame:
                edges = self._allocate_array(
                    self._edge_sizes[v], f"edges-{v}", frame
                )
                vertex = vm.allocate(
                    self.graph.vertex_value_size,
                    refs=[edges],
                    name=f"vertex-{v}",
                )
                vm.write_ref(self.partition_roots[v % parts], vertex)
                self.vertex_objs[v] = vertex
                self.edge_roots[v] = edges
                if self.conf.mode is GiraphMode.TERAHEAP:
                    # Mark the out-edges map as a root key-object (step 1
                    # in Figure 5).
                    vm.h2_tag_root(edges, EDGES_LABEL)
            vm.compute(4)
            # Input splits deliver a vertex's edges in pieces: loading
            # keeps appending fragments to recently loaded vertices'
            # edge maps.  If an aggressive pressure transfer has already
            # pushed those maps to H2, every append becomes a device
            # read-modify-write — the traffic the low threshold avoids
            # by holding recently marked objects back (Section 7.2).
            if v >= 64 and v % 2 == 0:
                recent = v - 1 - (v % 29)
                target = self.edge_roots[recent]
                if target is not None and target.space.value != "freed":
                    with vm.roots.frame() as frame:
                        fragment = frame.push(
                            vm.allocate(64, name=f"edge-frag-{v}")
                        )
                        vm.write_ref(target, fragment)
            if self.ooc is not None and v % 32 == 31:
                # The OOC scheduler watches pressure during loading too —
                # without it, graphs larger than the heap cannot load.
                self.ooc.maybe_offload()
        if self.conf.mode is GiraphMode.TERAHEAP and self.conf.use_move_hint:
            # Step 2 in Figure 5: edges move at the next major GC.
            vm.h2_move(EDGES_LABEL)
        if self.ooc is not None:
            self.ooc.maybe_offload()

    def _allocate_array(self, nbytes: int, name: str, frame) -> HeapObject:
        """Allocate a byte array, split into <= MAX_ARRAY_OBJECT pieces."""
        vm = self.vm
        if nbytes <= MAX_ARRAY_OBJECT:
            return frame.push(vm.allocate(max(nbytes, 64), name=name))
        pieces = []
        remaining = nbytes
        i = 0
        while remaining > 0:
            piece = min(MAX_ARRAY_OBJECT, remaining)
            pieces.append(
                frame.push(vm.allocate(max(piece, 64), name=f"{name}.{i}"))
            )
            remaining -= piece
            i += 1
        return frame.push(
            vm.allocate(max(64, 8 * len(pieces)), refs=pieces, name=name)
        )

    # ==================================================================
    # Accessors used by the OOC scheduler
    # ==================================================================
    def partition_vertices(self, pid: int) -> List[int]:
        return list(
            range(pid, self.graph.num_vertices, self.conf.num_partitions)
        )

    def offload_edges(self, v: int) -> "tuple[int, int]":
        """Drop vertex ``v``'s edge array from the heap.

        Returns ``(bytes_freed, bytes_to_write)`` — immutable edge arrays
        already resident in the out-of-core store need no device write.
        """
        edges = self.edge_roots[v]
        vertex = self.vertex_objs[v]
        if edges is None or vertex is None or edges.space.value == "freed":
            return 0, 0
        size = self._edge_sizes[v]
        self.vm.write_ref(vertex, None, remove=edges)
        self.edge_roots[v] = None
        to_write = 0 if self.edges_on_disk[v] else size
        self.edges_on_disk[v] = True
        return size, to_write

    def offload_vertices(self, pid: int) -> "tuple[int, int]":
        """Drop a partition's vertex objects (and their edge arrays).

        Giraph's OOC scheduler offloads whole vertex partitions (Table 2);
        vertex values are mutable, so they must be rewritten every time.
        Returns ``(bytes_freed, bytes_to_write)``.
        """
        freed = 0
        to_write = 0
        root = self.partition_roots[pid]
        for v in self.partition_vertices(pid):
            vertex = self.vertex_objs[v]
            if vertex is None or vertex.space.value == "freed":
                continue
            edge_freed, edge_write = self.offload_edges(v)
            freed += edge_freed
            to_write += edge_write
            self.vm.write_ref(root, None, remove=vertex)
            self.vertex_objs[v] = None
            freed += self.graph.vertex_value_size
            to_write += self.graph.vertex_value_size  # values are mutable
        return freed, to_write

    def _vertex_for_compute(self, v: int) -> HeapObject:
        """The vertex object, reloading its partition entry if offloaded."""
        vertex = self.vertex_objs[v]
        if vertex is not None and vertex.space.value != "freed":
            return vertex
        if self.ooc is not None:
            self.ooc.maybe_offload()
            self.ooc.reload(self.graph.vertex_value_size, key=("vtx", v))
        vertex = self.vm.allocate(
            self.graph.vertex_value_size, name=f"vertex-{v}-reload"
        )
        self.vm.write_ref(
            self.partition_roots[v % self.conf.num_partitions], vertex
        )
        self.vertex_objs[v] = vertex
        return vertex

    def offload_incoming_messages(self) -> int:
        """Move the (immutable) incoming message store off-heap."""
        if self.incoming_root is None or not self.incoming_msgs:
            return 0
        freed = 0
        vm = self.vm
        for v, msg in list(self.incoming_msgs.items()):
            if msg.space.value == "freed":
                continue
            freed += msg.size
            self.offloaded_msgs[v] = msg.size
        vm.clear_refs(self.incoming_root)
        self.incoming_msgs = {}
        return freed

    def _edges_for_compute(self, v: int) -> Optional[HeapObject]:
        """The edge array, reloading it from the device if offloaded."""
        edges = self.edge_roots[v]
        if edges is not None:
            return edges
        # Offloaded: read back and reallocate on-heap — making room first
        # if the heap is under pressure.
        size = self._edge_sizes[v]
        if self.ooc is not None:
            self.ooc.maybe_offload()
            self.ooc.reload(size, key=("edges", v))
        vm = self.vm
        with vm.roots.frame() as frame:
            edges = self._allocate_array(size, f"edges-{v}-reload", frame)
            vertex = self.vertex_objs[v]
            vm.write_ref(vertex, edges)
        self.edge_roots[v] = edges
        if self.ooc is not None:
            self.ooc.dropped_estimate = max(
                0, self.ooc.dropped_estimate - size
            )
        return edges

    # ==================================================================
    # BSP execution
    # ==================================================================
    def run(self, program: VertexProgram) -> int:
        """Execute supersteps until convergence; returns supersteps run."""
        vm = self.vm
        senders = program.initial_senders()
        for step in range(program.max_supersteps):
            received = program._messages_from(senders)
            # --- current message store (mutable during this superstep) --
            current_root, current_msgs = self._fill_message_store(
                step, senders, received
            )
            # --- compute phase over the sending vertices -----------------
            self._compute_phase(step, senders)
            next_senders, done = program.superstep(step, received, senders)
            # Master-side aggregation (e.g. convergence statistics).
            self.aggregators.aggregate("active_vertices", int(senders.sum()))
            # --- synchronisation barrier --------------------------------
            self.aggregators.barrier()
            self._retire_incoming()
            self.incoming_root = current_root
            self.incoming_msgs = current_msgs
            if (
                self.conf.mode is GiraphMode.TERAHEAP
                and self.conf.use_move_hint
            ):
                # Step 4 in Figure 5: last superstep's messages are now
                # immutable; advise their move.
                vm.h2_move(f"msgs-{step}")
            if self.ooc is not None:
                self.ooc.maybe_offload()
            self.supersteps_run += 1
            senders = next_senders
            if done:
                break
        self._retire_incoming()
        return self.supersteps_run

    # ------------------------------------------------------------------
    def _fill_message_store(
        self, step: int, senders: np.ndarray, received: np.ndarray
    ):
        """Allocate the superstep's aggregated per-target message batches."""
        vm = self.vm
        mask = senders[self._edge_sources]
        counts = np.bincount(
            self._edge_targets[mask], minlength=self.graph.num_vertices
        )
        current_root = vm.allocate(1024, name=f"msgstore-{step}")
        vm.write_ref(self.runtime_root, current_root)
        if self.conf.mode is GiraphMode.TERAHEAP:
            # Step 3 in Figure 5: tag the store as it is produced.
            vm.h2_tag_root(current_root, f"msgs-{step}")
        msgs: Dict[int, HeapObject] = {}
        targets = np.flatnonzero(received)
        for t in targets:
            if self.combiner is not None:
                payload = self.combiner.combined_bytes(
                    int(counts[t]), self.bytes_per_message
                )
            else:
                payload = int(counts[t]) * self.bytes_per_message
            nbytes = 64 + payload
            with vm.roots.frame() as frame:
                msg = self._allocate_array(nbytes, f"msg-{step}-{t}", frame)
                # Appending to the (possibly H2-resident) store is the
                # mutable-object update the transfer hint protects against.
                vm.write_ref(current_root, msg)
            msgs[int(t)] = msg
            self.messages_sent += int(counts[t])
            self.message_store_bytes += nbytes
            if self.ooc is not None and len(msgs) % 256 == 0:
                self.ooc.maybe_offload()
        vm.compute(len(targets))
        return current_root, msgs

    @property
    def _edge_sources(self) -> np.ndarray:
        if not hasattr(self, "_src_cache"):
            lengths = [len(e) for e in self.graph.out_edges]
            self._src_cache = np.repeat(
                np.arange(self.graph.num_vertices, dtype=np.int64), lengths
            )
            self._tgt_cache = (
                np.concatenate(self.graph.out_edges).astype(np.int64)
                if self.graph.num_vertices
                else np.zeros(0, dtype=np.int64)
            )
        return self._src_cache

    @property
    def _edge_targets(self) -> np.ndarray:
        self._edge_sources  # ensure caches
        return self._tgt_cache

    def _compute_phase(self, step: int, senders: np.ndarray) -> None:
        vm = self.vm
        active = np.flatnonzero(senders)
        vm.compute(len(active) * self.conf.ops_per_vertex)
        # Giraph processes one partition at a time; grouping accesses by
        # partition keeps the out-of-core working set coherent instead of
        # thrashing every partition on every vertex.
        parts = self.conf.num_partitions
        active = active[np.argsort(active % parts, kind="stable")]
        for i, v in enumerate(active):
            v = int(v)
            self.current_partition = v % parts
            vertex = self._vertex_for_compute(v)
            vm.read_object(vertex)
            edges = self._edges_for_compute(v)
            if edges is not None:
                vm.read_object(edges)
            msg = self.incoming_msgs.get(v)
            if msg is not None:
                vm.read_object(msg)
            elif v in self.offloaded_msgs and self.ooc is not None:
                # The store was pushed out-of-core mid-superstep; pay the
                # device round trip for this vertex's batch.
                self.ooc.reload(
                    self.offloaded_msgs.pop(v), key=("msg", step, v)
                )
            # Vertex value update: a primitive write, plus its barrier.
            vm.write_ref(vertex, None)
            if self.ooc is not None and i % 128 == 127:
                self.ooc.maybe_offload()
        self.current_partition = None

    def _retire_incoming(self) -> None:
        """Drop the consumed message store (post-barrier)."""
        if self.incoming_root is not None:
            self.vm.write_ref(
                self.runtime_root, None, remove=self.incoming_root
            )
            if self.ooc is not None:
                self.ooc.note_gc()
        self.incoming_root = None
        self.incoming_msgs = {}
        self.offloaded_msgs = {}
