"""Message combiners and master aggregators.

Giraph supports *message combiners* — associative reductions applied to a
vertex's incoming messages on the sending side — which collapse each
target's message batch to a single value and shrink the message stores
dramatically.  The paper's workloads all admit one (PR sums
contributions; WCC/CDLP/BFS/SSSP take minima).  Combiners are optional
in `GiraphConf` because the paper's evaluation ran without them (its
message stores are a large fraction of the heap); enabling them is a
realistic what-if that shrinks H2 message regions.

*Aggregators* are per-superstep global values (e.g. the dangling-rank sum
in PageRank) maintained by the master between barriers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass(frozen=True)
class MessageCombiner:
    """An associative, commutative reduction over messages to one vertex."""

    name: str
    #: combined bytes per target as a function of (messages, bytes_each)
    combined_bytes: Callable[[int, int], int]


def _single_value(count: int, bytes_each: int) -> int:
    return bytes_each if count else 0


#: built-in combiners, keyed by GiraphConf.combiner
COMBINERS: Dict[str, MessageCombiner] = {
    # sum/min/max all collapse a batch to one value of the message width
    "sum": MessageCombiner("sum", _single_value),
    "min": MessageCombiner("min", _single_value),
    "max": MessageCombiner("max", _single_value),
}


def resolve_combiner(name: Optional[str]) -> Optional[MessageCombiner]:
    if name is None:
        return None
    try:
        return COMBINERS[name]
    except KeyError:
        raise ValueError(
            f"unknown combiner {name!r}; available: {sorted(COMBINERS)}"
        ) from None


class AggregatorRegistry:
    """Master-side global aggregates, one value per name per superstep.

    Values live on the master's heap as small objects; the previous
    superstep's aggregate becomes read-only once the barrier passes, the
    current one is mutable — miniature versions of the message-store
    lifecycle.
    """

    #: simulated size of one aggregate value object
    VALUE_BYTES = 64

    def __init__(self, vm, master_root) -> None:
        self.vm = vm
        self.master_root = master_root
        self._current: Dict[str, float] = {}
        self._previous: Dict[str, float] = {}
        self._current_objs: Dict[str, object] = {}

    def aggregate(self, name: str, value: float) -> None:
        """Accumulate into the current superstep's value."""
        if name not in self._current:
            self._current[name] = 0.0
            obj = self.vm.allocate(self.VALUE_BYTES, name=f"agg-{name}")
            self.vm.write_ref(self.master_root, obj)
            self._current_objs[name] = obj
        self._current[name] += value

    def get(self, name: str) -> float:
        """The previous superstep's aggregated value (BSP semantics)."""
        return self._previous.get(name, 0.0)

    def barrier(self) -> None:
        """Superstep boundary: current values become readable, old ones die."""
        for obj in list(self._current_objs.values()):
            self.vm.write_ref(self.master_root, None, remove=obj)
        self._previous = self._current
        self._current = {}
        self._current_objs = {}
