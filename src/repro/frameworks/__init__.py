"""Big data frameworks built on the simulated JVM: mini-Spark and mini-Giraph."""
