"""Chrome-trace (``chrome://tracing`` / Perfetto) export of GC schedules.

When ``VMConfig.engine.trace`` is on, the GC task engine records one
complete ("ph": "X") event per executed task: which simulated worker ran
it, when it started on that worker's lane, how long it took (dispatch +
steal + task cost), and the phase it belonged to.  This module packages
those events as a Chrome Trace Event JSON document, so a GC cycle's
per-thread timeline — including steals and end-of-phase imbalance — can
be inspected visually.

Output is deterministic: events are emitted in execution order and the
JSON is serialized with sorted keys, so two runs with the same seed
produce byte-identical trace files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


def chrome_trace_events(engine: Any) -> List[Dict[str, Any]]:
    """The engine's task events plus thread-naming metadata events.

    ``engine`` is a :class:`~repro.gc.engine.GCTaskEngine`; its
    ``trace_events`` list is empty unless tracing was enabled in
    ``VMConfig.engine``.
    """
    events: List[Dict[str, Any]] = []
    workers = getattr(engine, "workers", 0)
    name = getattr(engine, "name", "gc")
    events.append(
        {
            "args": {"name": f"{name} engine"},
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
        }
    )
    for tid in range(workers):
        events.append(
            {
                "args": {"name": f"{name} worker {tid}"},
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
            }
        )
    events.extend(engine.trace_events)
    return events


def _instant(
    time: float, name: str, args: Dict[str, Any]
) -> Dict[str, Any]:
    """One global-scope instant event at simulated ``time`` seconds."""
    return {
        "args": args,
        "name": name,
        "ph": "i",
        "pid": 1,
        "s": "g",
        "tid": 0,
        "ts": round(time * 1e6, 3),
    }


def resilience_trace_events(log: Any) -> List[Dict[str, Any]]:
    """A :class:`~repro.faults.events.ResilienceLog` as instant events.

    Faults, retries, stalls, health/circuit transitions, degradations,
    crashes, recoveries, executor restarts and block adoptions render
    as global instant markers ("ph": "i",
    scope "g"), so fault activity lines up against the GC task lanes on
    the same timeline.
    """
    events: List[Dict[str, Any]] = []
    if log is None:
        return events
    for ev in log.faults:
        events.append(
            _instant(
                ev.time,
                f"fault:{ev.kind}",
                {"device": ev.device, "op": ev.op, "detail": ev.detail},
            )
        )
    for ev in log.retries:
        events.append(
            _instant(
                ev.time,
                "retry",
                {
                    "op": ev.op,
                    "attempts": ev.attempts,
                    "delay_s": ev.delay,
                    "success": ev.success,
                },
            )
        )
    for ev in log.stalls:
        events.append(
            _instant(
                ev.time,
                "stall",
                {"device": ev.device, "op": ev.op, "seconds": ev.seconds},
            )
        )
    for ev in log.health:
        events.append(
            _instant(
                ev.time,
                f"health:{ev.new}",
                {"device": ev.device, "from": ev.old, "reason": ev.reason},
            )
        )
    for ev in log.circuit:
        events.append(
            _instant(
                ev.time,
                f"circuit:{ev.new}",
                {"from": ev.old, "reason": ev.reason},
            )
        )
    for ev in log.degradations:
        events.append(
            _instant(
                ev.time,
                "degradation",
                {"reason": ev.reason, "failures": ev.failures},
            )
        )
    for ev in log.crashes:
        events.append(
            _instant(ev.time, f"crash:{ev.safepoint}", {"detail": ev.detail})
        )
    for ev in log.recoveries:
        events.append(
            _instant(
                ev.time,
                "recovery",
                {
                    "recovered": ev.recovered,
                    "quarantined": ev.quarantined,
                    "detail": ev.detail,
                },
            )
        )
    for ev in log.restarts:
        events.append(
            _instant(
                ev.time,
                "restart",
                {"incarnation": ev.incarnation, "detail": ev.detail},
            )
        )
    for ev in log.adoptions:
        events.append(
            _instant(
                ev.time,
                f"adoption:{ev.outcome}",
                {"label": ev.label, "detail": ev.detail},
            )
        )
    events.sort(key=lambda e: e["ts"])
    return events


def streaming_counter_events(result: Any) -> List[Dict[str, Any]]:
    """A streaming run's in-flight budget telemetry as counter events.

    ``result`` is a
    :class:`~repro.frameworks.spark.streaming.StreamResult`; every
    in-flight transition sampled during the run renders as a Chrome
    counter event ("ph": "C"), so the bounded in-flight byte series —
    and the spill/stall activity that bounded it — plots as a stacked
    counter track against the GC lanes.
    """
    events: List[Dict[str, Any]] = []
    if result is None:
        return events
    for time, inflight, spilled, stalls in result.counter_samples:
        events.append(
            {
                "args": {
                    "inflight_bytes": inflight,
                    "spilled_bytes": spilled,
                    "stalls": stalls,
                },
                "name": "stream_inflight",
                "ph": "C",
                "pid": 1,
                "tid": 0,
                "ts": round(time * 1e6, 3),
            }
        )
    return events


def server_trace_events(box: Any) -> List[Dict[str, Any]]:
    """A server box run as per-tenant timeline lanes.

    ``box`` is a :class:`~repro.server.box.ServerBox` after
    :meth:`~repro.server.box.ServerBox.run`.  Each tenant renders as its
    own process (pid = tenant index + 2, pid 1 stays reserved for the
    single-VM engine layout): complete ("X") events for every GC pause,
    instant markers for recorded clock events (alloc stalls, restarts),
    all shifted by the tenant's ``base_time`` so lanes share the box
    timeline.  The arbiters contribute counter tracks on pid 1: each
    epoch's per-tenant bandwidth share and H2 byte budget.
    """
    events: List[Dict[str, Any]] = []
    for tenant in box.tenants:
        pid = tenant.index + 2
        events.append(
            {
                "args": {"name": f"tenant {tenant.name}"},
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
            }
        )
        for cycle in tenant.vm.collector.stats.cycles:
            events.append(
                {
                    "args": {
                        "reclaimed": cycle.reclaimed_bytes,
                        "to_h2": cycle.moved_to_h2_bytes,
                    },
                    "cat": "gc",
                    "dur": round(cycle.duration * 1e6, 3),
                    "name": cycle.kind,
                    "ph": "X",
                    "pid": pid,
                    "tid": 0,
                    "ts": round(
                        (tenant.base_time + cycle.start_time) * 1e6, 3
                    ),
                }
            )
        for time, name, duration in tenant.vm.clock.events:
            events.append(
                {
                    "args": {"duration_s": round(duration, 9)},
                    "name": name,
                    "ph": "i",
                    "pid": pid,
                    "s": "p",
                    "tid": 0,
                    "ts": round((tenant.base_time + time) * 1e6, 3),
                }
            )
    events.append(
        {
            "args": {"name": "box arbiters"},
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
        }
    )
    for record in box.pressure.records:
        events.append(
            {
                "args": {
                    name: round(share, 6)
                    for name, share in sorted(record.shares.items())
                },
                "name": "bw_share",
                "ph": "C",
                "pid": 1,
                "tid": 0,
                "ts": round(record.time * 1e6, 3),
            }
        )
        events.append(
            {
                "args": dict(sorted(record.h2_budgets.items())),
                "name": "h2_budget",
                "ph": "C",
                "pid": 1,
                "tid": 0,
                "ts": round(record.time * 1e6, 3),
            }
        )
    return events


def server_chrome_trace_json(box: Any, label: str = "serverscale") -> str:
    """Serialize a finished server box as a Chrome Trace document."""
    report = box._report()
    doc = {
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "tenants": box.spec.tenants,
            "arbiter": box.spec.arbiter,
            "epochs": report.epochs,
            "makespan": round(report.makespan, 9),
            "aggregateThroughput": round(report.aggregate_throughput, 3),
            "deviceBusyFraction": round(report.device_busy_fraction, 6),
            "fairnessGap": round(report.fairness_gap, 6),
        },
        "traceEvents": server_trace_events(box),
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def chrome_trace_json(
    engine: Any, label: str = "run", resilience: Any = None,
    streaming: Any = None,
) -> str:
    """Serialize an engine's schedule as a Chrome Trace Event document.

    ``resilience`` optionally adds a VM's :class:`ResilienceLog` as
    instant markers on the same timeline; ``streaming`` adds a
    :class:`~repro.frameworks.spark.streaming.StreamResult`'s in-flight
    counter track.
    """
    events = chrome_trace_events(engine)
    events.extend(resilience_trace_events(resilience))
    events.extend(streaming_counter_events(streaming))
    doc = {
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "workers": getattr(engine, "workers", 0),
            "phases": getattr(engine, "total_phases", 0),
            "tasks": getattr(engine, "total_tasks", 0),
            "steals": getattr(engine, "total_steals", 0),
            "remoteSteals": getattr(engine, "total_remote_steals", 0),
            # Concurrent-phase critical-path seconds hidden behind the
            # mutator (never charged to any pause).
            "concurrentHidden": round(
                getattr(engine, "total_hidden_seconds", 0.0), 9
            ),
            "stealPolicy": getattr(engine, "steal_policy", "steal-one"),
            "numaNodes": getattr(engine, "numa_nodes", 1),
            # Per-phase attribution: one record per engine phase run, in
            # execution order (tasks/steals/idle/imbalance per phase).
            "phaseStats": list(getattr(engine, "phase_log", [])),
        },
        "traceEvents": events,
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def vm_engine(vm: Any) -> Optional[Any]:
    """The GC task engine of a VM's collector, if it has one."""
    return getattr(getattr(vm, "collector", None), "engine", None)


def vm_resilience_log(vm: Any) -> Optional[Any]:
    """The resilience log of a VM, if fault injection is armed."""
    return getattr(getattr(vm, "resilience", None), "log", None)


def write_chrome_trace(
    path: str, engine: Any, label: str = "run", resilience: Any = None,
    streaming: Any = None,
) -> None:
    """Write the engine's schedule to ``path`` (open with Perfetto or
    ``chrome://tracing``)."""
    with open(path, "w") as f:
        f.write(
            chrome_trace_json(
                engine, label=label, resilience=resilience,
                streaming=streaming,
            )
        )
