"""GC/execution trace export (CSV), the raw series behind the figures.

The paper's artifact emits CSVs that its plotting scripts consume; this
module provides the same: per-cycle GC records (Figure 7), the execution
breakdown (Figures 6/8/12), and per-region liveness (Figure 10).
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List

from ..gc.base import GCCycle
from ..runtime import JavaVM
from ..teraheap.regions import RegionLiveness


def engine_phase_detail(cycle: GCCycle) -> str:
    """One cycle's per-phase engine stats, folded into a CSV-safe cell.

    ``phase:workers:tasks:steals:remote_steals:hidden_s:idle_s:
    imbalance`` per phase execution, ``|``-joined in execution order.
    """
    return "|".join(
        "{phase}:{workers}:{tasks}:{steals}:{remote_steals}:"
        "{hidden:.6f}:{idle:.6f}:{imb:.4f}".format(
            phase=p["phase"],
            workers=p["workers"],
            tasks=p["tasks"],
            steals=p["steals"],
            remote_steals=p["remote_steals"],
            hidden=p.get("hidden_s", 0.0),
            idle=p["idle_s"],
            imb=p["imbalance"],
        )
        for p in cycle.engine_phases
    )


def gc_timeline_csv(cycles: Iterable[GCCycle]) -> str:
    """CSV of per-cycle GC records: the Figure 7 series."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(
        [
            "kind",
            "start_time_s",
            "duration_s",
            "live_bytes",
            "reclaimed_bytes",
            "promoted_bytes",
            "moved_to_h2_bytes",
            "old_occupancy_after",
            "marking_s",
            "precompact_s",
            "adjust_s",
            "compact_s",
            "gc_threads",
            "tasks",
            "steals",
            "remote_steals",
            "idle_s",
            "imbalance",
            "parallel_speedup",
            "batch_scale",
            "concurrent_hidden_s",
            "remark_pause_s",
            "engine_phases",
        ]
    )
    for c in cycles:
        writer.writerow(
            [
                c.kind,
                f"{c.start_time:.6f}",
                f"{c.duration:.6f}",
                c.live_bytes,
                c.reclaimed_bytes,
                c.promoted_bytes,
                c.moved_to_h2_bytes,
                f"{c.old_occupancy_after:.4f}",
                f"{c.phases.get('marking', 0.0):.6f}",
                f"{c.phases.get('precompact', 0.0):.6f}",
                f"{c.phases.get('adjust', 0.0):.6f}",
                f"{c.phases.get('compact', 0.0):.6f}",
                c.gc_threads,
                c.tasks_executed,
                c.steals,
                c.remote_steals,
                f"{c.idle_seconds:.6f}",
                f"{c.imbalance:.4f}",
                f"{c.parallel_speedup:.4f}",
                f"{c.batch_scale:.4f}",
                f"{c.concurrent_hidden:.6f}",
                f"{c.remark_pause:.6f}",
                engine_phase_detail(c),
            ]
        )
    return out.getvalue()


def breakdown_csv(vm: JavaVM, label: str = "run") -> str:
    """One-row CSV of the four-way execution-time breakdown."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    breakdown = vm.breakdown()
    writer.writerow(["label", "total_s"] + list(breakdown))
    writer.writerow(
        [label, f"{vm.elapsed():.6f}"]
        + [f"{v:.6f}" for v in breakdown.values()]
    )
    return out.getvalue()


def region_liveness_csv(liveness: List[RegionLiveness]) -> str:
    """CSV of per-region liveness: the Figure 10 CDF inputs."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(
        [
            "total_objects",
            "live_objects",
            "live_object_fraction",
            "used_bytes",
            "live_bytes",
            "live_space_fraction",
            "unused_fraction",
        ]
    )
    for lv in liveness:
        writer.writerow(
            [
                lv.total_objects,
                lv.live_objects,
                f"{lv.live_object_fraction:.4f}",
                lv.used_bytes,
                lv.live_bytes,
                f"{lv.live_space_fraction:.4f}",
                f"{lv.unused_fraction:.4f}",
            ]
        )
    return out.getvalue()


def streaming_blocks_csv(result) -> str:
    """CSV of a streaming action's per-block records.

    ``result`` is a
    :class:`~repro.frameworks.spark.streaming.StreamResult`; one row per
    dispatched block with its admission stalls and final fate
    (consumed / persisted / spilled-h2 / spilled-ser), plus a trailing
    ``totals`` row carrying the run-wide streaming counters.
    """
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(
        ["partition", "block", "chunks", "bytes", "admit_stalls", "fate"]
    )
    for row in result.block_rows:
        writer.writerow(
            [
                row["partition"],
                row["block"],
                row["chunks"],
                row["bytes"],
                row["admit_stalls"],
                row["fate"],
            ]
        )
    writer.writerow(
        [
            "totals",
            result.blocks,
            result.peak_inflight_bytes,
            result.spill_bytes,
            result.backpressure_stalls,
            f"spills={result.spills} unspills={result.unspills} "
            f"forced={result.forced_admissions} "
            f"stall_s={result.stall_seconds:.6f} "
            f"hidden_s={result.hidden_seconds:.6f}",
        ]
    )
    return out.getvalue()


def server_tenants_csv(report) -> str:
    """CSV of a server box run: one row per co-located tenant.

    ``report`` is a :class:`~repro.server.box.BoxReport`; a trailing
    ``box`` row carries the aggregate (makespan, throughput, device
    saturation, fairness gap, arbitration epochs).
    """
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(
        [
            "tenant",
            "dataset_bytes",
            "processed_bytes",
            "finish_s",
            "velocity_bps",
            "progress_rate",
            "gc_s",
            "stall_s",
            "alloc_stalls",
            "pauses",
            "p99_pause_s",
            "h2_moved_bytes",
            "cache_hit_ratio",
            "device_read",
            "device_written",
        ]
    )
    for t in report.tenants:
        writer.writerow(
            [
                t.name,
                t.dataset_bytes,
                t.processed_bytes,
                f"{t.finish_time:.6f}",
                f"{t.velocity:.3f}",
                f"{t.progress_rate:.6f}",
                f"{t.gc_seconds:.6f}",
                f"{t.stall_seconds:.6f}",
                t.alloc_stalls,
                t.pauses,
                f"{t.p99_pause:.6f}",
                t.h2_moved_bytes,
                f"{t.cache_hit_ratio:.4f}",
                t.device_read,
                t.device_written,
            ]
        )
    writer.writerow(
        [
            "box",
            report.spec_tenants,
            "arbiter" if report.arbiter else "static",
            f"{report.makespan:.6f}",
            f"{report.aggregate_throughput:.3f}",
            f"{report.fairness_gap:.6f}",
            f"{report.device_busy_fraction:.6f}",
            f"epochs={report.epochs}",
            "",
            "",
            "",
            "",
            "",
            "",
            "",
        ]
    )
    return out.getvalue()


def fault_schedule_csv(plan) -> str:
    """CSV of a :class:`~repro.faults.plan.FaultPlan`'s injected faults.

    Byte-identical across runs with the same seed and workload — the
    artifact of the determinism guarantee.
    """
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["op_index", "kind", "device", "detail"])
    for record in plan.schedule:
        writer.writerow(
            [record.op_index, record.kind.value, record.device, record.detail]
        )
    return out.getvalue()


def resilience_events_csv(log) -> str:
    """CSV of a :class:`~repro.faults.events.ResilienceLog`'s timeline."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["time_s", "event", "op_or_device", "kind", "detail"])
    for event in log.faults:
        writer.writerow(
            [f"{event.time:.6f}", "fault", event.device, event.kind, event.detail]
        )
    for event in log.retries:
        kind = "success" if event.success else "exhausted"
        if not event.success and event.reason:
            kind = f"exhausted:{event.reason}"
        writer.writerow(
            [
                f"{event.time:.6f}",
                "retry",
                event.op,
                kind,
                f"attempts={event.attempts} backoff={event.delay:.6f}",
            ]
        )
    for event in log.stalls:
        writer.writerow(
            [
                f"{event.time:.6f}",
                "stall",
                event.device,
                event.op,
                f"seconds={event.seconds:.6f}",
            ]
        )
    for event in log.health:
        writer.writerow(
            [
                f"{event.time:.6f}",
                "health",
                event.device,
                f"{event.old}->{event.new}",
                event.reason,
            ]
        )
    for event in log.circuit:
        writer.writerow(
            [
                f"{event.time:.6f}",
                "circuit",
                "h2-governor",
                f"{event.old}->{event.new}",
                event.reason,
            ]
        )
    for event in log.degradations:
        writer.writerow(
            [
                f"{event.time:.6f}",
                "degradation",
                "h2",
                f"failures={event.failures}",
                event.reason,
            ]
        )
    for event in log.crashes:
        writer.writerow(
            [
                f"{event.time:.6f}",
                "crash",
                "process",
                event.safepoint,
                event.detail,
            ]
        )
    for event in log.recoveries:
        writer.writerow(
            [
                f"{event.time:.6f}",
                "recovery",
                "h2",
                f"recovered={event.recovered} quarantined={event.quarantined}",
                event.detail,
            ]
        )
    for event in log.restarts:
        writer.writerow(
            [
                f"{event.time:.6f}",
                "restart",
                "executor",
                f"incarnation={event.incarnation}",
                event.detail,
            ]
        )
    for event in log.adoptions:
        writer.writerow(
            [
                f"{event.time:.6f}",
                "adoption",
                event.label,
                event.outcome,
                event.detail,
            ]
        )
    return out.getvalue()


def write_csv(path: str, content: str) -> None:
    with open(path, "w", newline="") as f:
        f.write(content)
