"""GC/execution trace export (CSV), the raw series behind the figures.

The paper's artifact emits CSVs that its plotting scripts consume; this
module provides the same: per-cycle GC records (Figure 7), the execution
breakdown (Figures 6/8/12), and per-region liveness (Figure 10).
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List

from ..gc.base import GCCycle
from ..runtime import JavaVM
from ..teraheap.regions import RegionLiveness


def gc_timeline_csv(cycles: Iterable[GCCycle]) -> str:
    """CSV of per-cycle GC records: the Figure 7 series."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(
        [
            "kind",
            "start_time_s",
            "duration_s",
            "live_bytes",
            "reclaimed_bytes",
            "promoted_bytes",
            "moved_to_h2_bytes",
            "old_occupancy_after",
            "marking_s",
            "precompact_s",
            "adjust_s",
            "compact_s",
        ]
    )
    for c in cycles:
        writer.writerow(
            [
                c.kind,
                f"{c.start_time:.6f}",
                f"{c.duration:.6f}",
                c.live_bytes,
                c.reclaimed_bytes,
                c.promoted_bytes,
                c.moved_to_h2_bytes,
                f"{c.old_occupancy_after:.4f}",
                f"{c.phases.get('marking', 0.0):.6f}",
                f"{c.phases.get('precompact', 0.0):.6f}",
                f"{c.phases.get('adjust', 0.0):.6f}",
                f"{c.phases.get('compact', 0.0):.6f}",
            ]
        )
    return out.getvalue()


def breakdown_csv(vm: JavaVM, label: str = "run") -> str:
    """One-row CSV of the four-way execution-time breakdown."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    breakdown = vm.breakdown()
    writer.writerow(["label", "total_s"] + list(breakdown))
    writer.writerow(
        [label, f"{vm.elapsed():.6f}"]
        + [f"{v:.6f}" for v in breakdown.values()]
    )
    return out.getvalue()


def region_liveness_csv(liveness: List[RegionLiveness]) -> str:
    """CSV of per-region liveness: the Figure 10 CDF inputs."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(
        [
            "total_objects",
            "live_objects",
            "live_object_fraction",
            "used_bytes",
            "live_bytes",
            "live_space_fraction",
            "unused_fraction",
        ]
    )
    for l in liveness:
        writer.writerow(
            [
                l.total_objects,
                l.live_objects,
                f"{l.live_object_fraction:.4f}",
                l.used_bytes,
                l.live_bytes,
                f"{l.live_space_fraction:.4f}",
                f"{l.unused_fraction:.4f}",
            ]
        )
    return out.getvalue()


def write_csv(path: str, content: str) -> None:
    with open(path, "w", newline="") as f:
        f.write(content)
