"""Per-run experiment results, matching the paper's reporting.

Each run yields an :class:`ExperimentResult` with the four-way execution
time breakdown (other / S/D+I/O / minor GC / major GC), GC counts, and
device traffic.  OOM runs carry ``oom=True`` and are rendered as the
paper's missing bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runtime import JavaVM


@dataclass
class ExperimentResult:
    """One (workload, system, DRAM) cell of a paper figure."""

    workload: str
    system: str
    dram_gb: float
    heap_gb: float
    total: float = 0.0
    breakdown: Dict[str, float] = field(default_factory=dict)
    minor_gcs: int = 0
    major_gcs: int = 0
    oom: bool = False
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.system}@{self.dram_gb:g}GB"

    def share(self, bucket: str) -> float:
        if self.total <= 0:
            return 0.0
        return self.breakdown.get(bucket, 0.0) / self.total

    def row(self, baseline_total: Optional[float] = None) -> str:
        """One printable table row (normalised if a baseline is given)."""
        if self.oom:
            return f"{self.label:<32s}  OOM"
        norm = self.total / baseline_total if baseline_total else 1.0
        parts = "  ".join(
            f"{k}={v / self.total:5.1%}" for k, v in self.breakdown.items()
        )
        return f"{self.label:<32s}  norm={norm:6.3f}  total={self.total:9.1f}s  {parts}"


def collect_result(
    vm: JavaVM,
    workload: str,
    system: str,
    dram_gb: float,
    heap_gb: float,
    oom: bool = False,
    extras: Optional[Dict[str, float]] = None,
) -> ExperimentResult:
    """Assemble a result from a finished (or OOMed) VM."""
    breakdown = vm.breakdown()
    result = ExperimentResult(
        workload=workload,
        system=system,
        dram_gb=dram_gb,
        heap_gb=heap_gb,
        total=sum(breakdown.values()),
        breakdown=breakdown,
        minor_gcs=vm.collector.stats.minor_count,
        major_gcs=vm.collector.stats.major_count,
        oom=oom,
        extras=dict(extras or {}),
    )
    if vm.h2 is not None:
        result.extras.setdefault(
            "h2_regions_allocated", vm.h2.regions_allocated_total
        )
        result.extras.setdefault("h2_regions_reclaimed", vm.h2.regions_reclaimed)
        result.extras.setdefault("h2_bytes_moved", vm.h2.bytes_moved)
        result.extras.setdefault(
            "forward_refs_fenced",
            getattr(vm.collector, "forward_refs_fenced", 0),
        )
    res = getattr(vm, "resilience", None)
    auditor = getattr(vm, "auditor", None)
    if res is not None:
        result.extras.setdefault("faults_injected", res.plan.total_injected)
        result.extras.setdefault("faults_seen", res.log.faults_seen)
        result.extras.setdefault("ops_retried", res.log.ops_retried)
        result.extras.setdefault(
            "retry_exhaustions", res.log.retry_exhaustions
        )
        result.extras.setdefault("h2_degraded", int(res.degraded))
        result.extras.setdefault(
            "h2_transfers_denied",
            getattr(vm.collector, "h2_transfers_denied", 0),
        )
        result.extras.setdefault("stall_seconds", res.log.stall_seconds)
        result.extras.setdefault(
            "deadline_exhaustions", res.log.deadline_exhaustions
        )
    governor = getattr(vm, "governor", None)
    if governor is not None:
        result.extras.setdefault("governor_trips", governor.trips)
        result.extras.setdefault("governor_probes", governor.probes)
        result.extras.setdefault("alloc_stalls", vm.alloc_stalls)
        result.extras.setdefault("emergency_gcs", vm.emergency_gcs)
    if auditor is not None:
        result.extras.setdefault("audits_run", auditor.audits_run)
        result.extras.setdefault(
            "invariant_violations", auditor.violations_found
        )
    return result


def normalize(results: List[ExperimentResult]) -> List[ExperimentResult]:
    """Scale totals so the first non-OOM result is 1.0 (paper's plots)."""
    baseline = next((r.total for r in results if not r.oom and r.total), None)
    if not baseline:
        return results
    for r in results:
        r.extras["normalized"] = (r.total / baseline) if not r.oom else float("nan")
    return results
