"""Result collection: execution-time breakdowns, per-run reports, and
GC-schedule trace export (CSV + Chrome Trace Event JSON)."""

from .chrome_trace import (
    chrome_trace_events,
    chrome_trace_json,
    vm_engine,
    write_chrome_trace,
)
from .report import ExperimentResult, collect_result, normalize

__all__ = [
    "ExperimentResult",
    "chrome_trace_events",
    "chrome_trace_json",
    "collect_result",
    "normalize",
    "vm_engine",
    "write_chrome_trace",
]
