"""Result collection: execution-time breakdowns and per-run reports."""

from .report import ExperimentResult, collect_result, normalize

__all__ = ["ExperimentResult", "collect_result", "normalize"]
