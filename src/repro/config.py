"""Configuration objects: VM layout, collector choice, and the cost model.

The cost model constants are the calibration surface of the reproduction.
Absolute values are synthetic; they are chosen so that the *ratios* the
paper reports hold (GC + S/D dominating baseline runs, device bandwidth
ceilings, NVM latency penalties).  EXPERIMENTS.md records the resulting
paper-vs-measured comparison for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .devices.health import HealthConfig
from .errors import ConfigError
from .faults.plan import FaultConfig
from .units import GB, KiB, MB, MiB


@dataclass
class CostModel:
    """Per-operation simulated costs, in seconds / bytes-per-second.

    Values are loosely derived from the paper's testbed (Table 1): a 2.4 GHz
    Xeon, DDR4 DRAM, a Samsung PM983 NVMe SSD (2.9 GB/s read ceiling,
    Section 7.1) and Intel Optane DC PMEM (higher latency, lower bandwidth
    than DRAM, Section 7.5).  Because spatial sizes are scaled by
    ``units.SCALE``, bandwidths here are scaled identically so that
    *time ratios* match the paper's.
    """

    # --- DRAM ----------------------------------------------------------
    dram_read_bw: float = 10.0 * MiB  # bytes/s at simulation scale
    dram_write_bw: float = 8.0 * MiB
    dram_latency: float = 100e-9

    # --- GC work -------------------------------------------------------
    # A simulated object is coarse: one 8 KiB chunk stands for thousands
    # of paper-scale records, so per-object GC costs are scaled up by the
    # same coarsening factor (visiting one chunk's worth of record objects
    # at ~50-100 ns each).
    #: marking/scanning one simulated object during traversal
    gc_visit_cost: float = 220e-6
    #: following one reference during traversal
    gc_ref_cost: float = 45e-6
    #: copying/compacting live data (DRAM-resident); sliding compaction
    #: only pays this for objects that actually move
    gc_copy_bw: float = 0.8 * MiB
    #: examining one card-table entry
    card_check_cost: float = 0.5e-6
    #: fixed safepoint/bring-up cost of any GC pause
    gc_pause_overhead: float = 2e-3
    #: summarising/installing one object's forwarding pointer (precompact)
    gc_forward_cost: float = 60e-6
    #: examining one root-set entry while claiming a root partition
    gc_root_scan_cost: float = 0.5e-6

    # --- GC engine (task-based parallel scheduling) ---------------------
    #: claiming one task from a worker's own deque
    gc_task_dispatch_cost: float = 0.5e-6
    #: one successful steal: CAS on the victim's deque top + cache misses
    gc_steal_cost: float = 4e-6
    #: moving one *additional* task in a steal-half grab (the first task
    #: is covered by gc_steal_cost; bulk transfer amortises the CAS but
    #: still touches one deque slot per task)
    gc_steal_transfer_cost: float = 1e-6
    #: extra latency of a steal whose victim lane lives on another NUMA
    #: node (remote cache-line transfer across the interconnect).
    #: Calibrated against published NUMA GC measurements: Gidra et al.,
    #: "A study of the scalability of stop-the-world garbage collectors
    #: on multicores" (ASPLOS'13) measure remote DRAM accesses at ~2.2x
    #: the local latency on their 48-core Magny-Cours testbed, and
    #: NumaGiC (Gidra et al., ASPLOS'15) reports the same interconnect
    #: penalty dominating cross-node GC traffic.  A local steal costs
    #: ``gc_steal_cost`` = 4e-6, so a remote steal at 2.2x local is
    #: 8.8e-6 total — a premium of 1.2 x 4e-6 = 4.8e-6 (the previous
    #: 6e-6 was an order-of-magnitude placeholder, i.e. a 2.5x ratio
    #: nothing in the literature supports).
    gc_numa_remote_premium: float = 4.8e-6
    #: per-worker share of the termination protocol ending a parallel
    #: phase (offer/spin rounds); single-worker phases skip it
    gc_termination_cost: float = 30e-6

    # --- Serialization (Kryo-calibrated) --------------------------------
    serialize_obj_cost: float = 0.5e-3
    serialize_bw: float = 1.2 * MiB
    deserialize_obj_cost: float = 0.8e-3
    deserialize_bw: float = 0.9 * MiB
    #: fraction of (de)serialized bytes materialised as temporary objects,
    #: pressuring the young generation (Section 2, "Object Serialization")
    sd_temp_object_ratio: float = 0.35

    # --- Mutator work ---------------------------------------------------
    #: executing application logic over one chunk-granular record batch
    mutator_op_cost: float = 80e-6
    #: allocating one simulated object (a TLAB's worth of record allocations)
    alloc_cost: float = 0.2e-3
    #: post-write barrier (card mark); the paper measures <=3% overhead
    barrier_cost: float = 1e-6
    #: extra reference-range check TeraHeap adds to the barrier (Section 4)
    teraheap_barrier_extra: float = 0.25e-6

    # --- Durability ------------------------------------------------------
    #: fsync/msync barrier: the fixed cost of forcing the device to make
    #: queued writes durable (drive cache flush), charged per commit epoch
    fsync_cost: float = 0.5e-3

    # --- Streaming execution --------------------------------------------
    #: dispatching one block through the streaming operator pipeline:
    #: block metadata, slot bookkeeping, operator hand-off.  This is the
    #: fixed per-block tax that makes streaming lose on small inputs
    #: (blocks never amortise it) and win at scale (they do)
    stream_block_dispatch_cost: float = 2e-3


@dataclass
class TeraHeapConfig:
    """TeraHeap (H2) parameters — Section 3 of the paper."""

    enabled: bool = False
    h2_size: int = 1024 * GB
    region_size: int = 16 * MB
    #: H2 card segment size (Section 3.4 / Figure 11a sweep)
    card_segment_size: int = 8 * KiB
    #: stripe size; the paper sets stripe size == region size so objects
    #: never span stripes and boundary cards never stay dirty (Section 3.4)
    stripe_size: Optional[int] = None
    #: live-occupancy fraction of H1 above which marked objects are moved
    #: without waiting for h2_move() (Section 3.2)
    high_threshold: float = 0.85
    #: target H1 occupancy when the high threshold fires; ``None`` disables
    #: the low-threshold mechanism (Figure 9b ablation)
    low_threshold: Optional[float] = 0.50
    #: honour h2_move() transfer hints (Figure 9a ablation)
    use_move_hint: bool = True
    #: adapt the high/low thresholds to observed pressure instead of the
    #: static hand-tuned values — the paper's stated future work (§7.2)
    adaptive_thresholds: bool = False
    #: segregate large objects into their own regions per label — the
    #: paper's stated future work on size-aware H2 placement (§7.3), which
    #: stops large dead arrays pinning regions full of small live objects
    size_aware_placement: bool = False
    #: cross-region tracking policy: per-region dependency lists with
    #: direction ("deps", the paper's design) or undirected union-find
    #: region groups ("groups", the Section 3.3 alternative)
    region_policy: str = "deps"
    #: promotion buffer used to batch small-object writes (Section 3.2).
    #: Expressed in real bytes — one buffer comfortably spans a region.
    promotion_buffer_size: int = 2 * MiB
    #: map H2 with huge pages (HugeMap; used for Spark ML workloads, §6)
    huge_pages: bool = False
    #: use the four-state card table (clean/dirty/youngGen/oldGen); False
    #: degrades to a two-state table that rescans oldGen-only segments on
    #: every minor GC (Section 3.4 ablation)
    four_state_cards: bool = True
    #: align objects to stripes so boundary cards never stay dirty; False
    #: reproduces the vanilla JVM's sticky boundary cards (Section 3.4)
    stripe_aligned: bool = True
    #: crash-consistency writeback policy: "none" (legacy — the durable
    #: image is tracked passively, nothing extra is charged), "commit"
    #: (msync + region-header journal + superblock at the end of every
    #: major GC), or "flush" ("commit" plus an msync after every minor
    #: GC, so mutator stores to H2 become durable between commits)
    writeback_policy: str = "none"

    def __post_init__(self) -> None:
        if self.stripe_size is None:
            self.stripe_size = self.region_size
        if self.region_policy not in ("deps", "groups"):
            raise ConfigError(f"unknown region policy {self.region_policy!r}")
        if self.writeback_policy not in ("none", "commit", "flush"):
            raise ConfigError(
                f"unknown writeback policy {self.writeback_policy!r}"
            )
        if not 0.0 < self.high_threshold <= 1.0:
            raise ConfigError("high_threshold must be in (0, 1]")
        if self.low_threshold is not None and not (
            0.0 < self.low_threshold < self.high_threshold
        ):
            raise ConfigError("low_threshold must be below high_threshold")
        if self.region_size <= 0 or self.h2_size % self.region_size:
            raise ConfigError("h2_size must be a multiple of region_size")


@dataclass
class GCEngineConfig:
    """Task-based parallel GC engine parameters.

    Batch sizes control task granularity: smaller batches balance better
    across workers but pay more dispatch/steal overhead.  They are fixed
    (not derived from the thread count) so a thread-scaling sweep runs
    the identical task decomposition at every point — unless
    ``adaptive_batching`` turns on the per-cycle feedback controller
    (:class:`~repro.gc.engine.adaptive.BatchController`).
    """

    #: work-stealing RNG seed (victim selection); never the global RNG
    seed: int = 0x7E2A6C
    #: record per-task events for the chrome://tracing exporter
    trace: bool = False
    #: "steal-one" takes one task off the victim's deque per steal;
    #: "steal-half" transfers half the victim's deque (the real Parallel
    #: Scavenge policy), paying gc_steal_transfer_cost per extra task
    steal_policy: str = "steal-one"
    #: simulated NUMA nodes the worker pool is block-partitioned over;
    #: steals across nodes pay gc_numa_remote_premium and victim
    #: selection prefers same-node deques
    numa_nodes: int = 1
    #: shrink scan/copy batches when a cycle's imbalance exceeds
    #: imbalance_shrink_threshold; grow them back when dispatch overhead
    #: dominates (overhead_grow_threshold)
    adaptive_batching: bool = False
    #: cycle imbalance (critical path / mean active lane time) above
    #: which the controller halves the batch scale.  Calibrated to the
    #: 10-15% of pause time Gidra et al. (ASPLOS'13) measure parallel
    #: GC threads idling at the termination barrier of imbalanced
    #: stop-the-world phases on NUMA multicores: a critical path more
    #: than ~15% over the mean lane is exactly that regime, so the
    #: controller reacts there instead of the old 1.3 placeholder
    #: (which tolerated a 30% hot lane before doing anything).
    imbalance_shrink_threshold: float = 1.15
    #: dispatch-overhead share of scheduled work above which the
    #: controller doubles the batch scale back toward 1.0.  Hassanein,
    #: "Understanding and improving JVM GC work stealing at the data
    #: center scale" (ISMM'16) measures steal-and-dispatch overhead
    #: (steal attempts, spinning, termination) at ~10-15% of GC time in
    #: production parallel collections before tuning; past ~12% the
    #: decomposition is oversized and the controller grows batches back
    #: (the old 0.15 sat at the very top of the measured band).
    overhead_grow_threshold: float = 0.12
    #: floor of the controller's multiplicative batch scale
    min_batch_scale: float = 0.25
    #: objects per marking/scan batch task
    scan_batch_objects: int = 24
    #: objects per copy/compaction batch task (a promotion-buffer fill)
    copy_batch_objects: int = 16
    #: objects per forwarding-pointer (precompact) batch task
    precompact_batch_objects: int = 64
    #: H1 card-table entries per sweep-chunk task
    card_chunk_cards: int = 2048
    #: H2 card-table entries per sweep-chunk task (H2 tables are huge)
    h2_sweep_chunk_cards: int = 16384
    #: scanned H2 cards are grouped into this many stripe-owned slices
    h2_slice_groups: int = 64

    def __post_init__(self) -> None:
        for name in (
            "scan_batch_objects",
            "copy_batch_objects",
            "precompact_batch_objects",
            "card_chunk_cards",
            "h2_sweep_chunk_cards",
            "h2_slice_groups",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if not isinstance(self.seed, int):
            raise ConfigError("engine seed must be an integer")
        if self.steal_policy not in ("steal-one", "steal-half"):
            raise ConfigError(
                f"unknown steal policy {self.steal_policy!r}; expected "
                "'steal-one' or 'steal-half'"
            )
        if self.numa_nodes < 1:
            raise ConfigError("numa_nodes must be >= 1")
        if not 0.0 < self.min_batch_scale <= 1.0:
            raise ConfigError("min_batch_scale must be in (0, 1]")
        if self.imbalance_shrink_threshold <= 1.0:
            raise ConfigError("imbalance_shrink_threshold must be > 1.0")
        if not 0.0 < self.overhead_grow_threshold < 1.0:
            raise ConfigError("overhead_grow_threshold must be in (0, 1)")


@dataclass
class GovernorConfig:
    """Device-health watchdog + H2 circuit breaker + backpressure knobs.

    Lives here (not in :mod:`repro.teraheap.governor`) so it can hang off
    :class:`VMConfig` without an import cycle through the teraheap
    package.
    """

    enabled: bool = True
    #: health-classification knobs of the device watchdog
    health: HealthConfig = field(default_factory=HealthConfig)
    #: unhinted-budget multiplier while the circuit is DEGRADED
    degraded_budget_scale: float = 0.5
    #: hinted-transfer byte cap while OPEN (outside probe windows)
    open_hinted_cap: int = 0
    #: hinted-byte budget granted to a half-open probe cycle
    probe_bytes: int = 64 * KiB
    #: initial delay before the first half-open probe (simulated seconds)
    probe_backoff: float = 5e-3
    probe_backoff_factor: float = 2.0
    probe_backoff_max: float = 160e-3
    #: clean DEGRADED transfer cycles required to fully close the circuit
    close_streak: int = 2
    #: H1 occupancy at which an OPEN circuit arms emergency backpressure
    emergency_watermark: float = 0.85
    #: simulated seconds one allocation-stall round parks the mutator
    alloc_stall_wait: float = 2e-3
    #: shed/stall/GC rounds before declaring true exhaustion (OOM)
    max_emergency_rounds: int = 6

    def __post_init__(self) -> None:
        if not 0.0 < self.degraded_budget_scale <= 1.0:
            raise ConfigError("degraded_budget_scale must be in (0, 1]")
        if self.open_hinted_cap < 0 or self.probe_bytes < 0:
            raise ConfigError("byte caps must be non-negative")
        if self.probe_backoff <= 0 or self.probe_backoff_factor < 1.0:
            raise ConfigError("probe backoff must grow from a positive base")
        if self.probe_backoff_max < self.probe_backoff:
            raise ConfigError("probe_backoff_max must be >= probe_backoff")
        if self.close_streak < 1:
            raise ConfigError("close_streak must be >= 1")
        if not 0.0 < self.emergency_watermark <= 1.0:
            raise ConfigError("emergency_watermark must be in (0, 1]")
        if self.max_emergency_rounds < 1:
            raise ConfigError("max_emergency_rounds must be >= 1")


@dataclass
class G1Config:
    """Garbage-First collector parameters (Figure 8 baseline)."""

    region_size: int = 32 * MB
    #: target fraction of the heap collected per mixed collection
    mixed_collection_fraction: float = 0.25
    #: concurrent marking pool divisor: ``ConcGCThreads = ParallelGCThreads
    #: / 4``, the paper's (and HotSpot's default) configuration.  The
    #: marking cycle runs on this narrower lane set racing mutator
    #: (``Bucket.OTHER``) progress; only marking that outruns the mutator
    #: lands in the pause.
    concurrent_divisor: int = 4
    #: fraction of the marking work redone at the stop-the-world remark
    #: pause closing a cycle (SATB buffer drain + re-scan of objects the
    #: mutator touched while marking ran)
    remark_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.concurrent_divisor < 1:
            raise ConfigError("concurrent_divisor must be >= 1")
        if not 0.0 <= self.remark_fraction < 1.0:
            raise ConfigError("remark_fraction must be in [0, 1)")


@dataclass
class PantheraConfig:
    """Panthera baseline layout (Section 7.5): young gen entirely in DRAM,
    old gen split between DRAM and NVM."""

    dram_old_size: int = 6 * GB
    nvm_old_size: int = 48 * GB
    #: objects larger than this are pretenured straight to the NVM old gen
    pretenure_threshold: int = 256 * KiB


@dataclass
class VMConfig:
    """Top-level JVM configuration."""

    heap_size: int = 64 * GB
    #: fraction of the heap given to the young generation (PS default ~1/3)
    young_fraction: float = 1.0 / 3.0
    #: eden : survivor ratio within the young generation (PS default 8:1:1)
    survivor_fraction: float = 0.1
    #: minor-GC survivals before promotion to the old generation
    tenuring_threshold: int = 2
    #: ps | ps11 | g1 | panthera | memmode (teraheap rides on ps)
    collector: str = "ps"
    gc_threads: int = 16
    #: task-based parallel GC engine (seed, trace, batch granularity)
    engine: GCEngineConfig = field(default_factory=GCEngineConfig)
    mutator_threads: int = 8
    #: H1 card segment size (vanilla JVM uses 512 B cards)
    card_segment_size: int = 512
    teraheap: TeraHeapConfig = field(default_factory=TeraHeapConfig)
    g1: G1Config = field(default_factory=G1Config)
    panthera: Optional[PantheraConfig] = None
    cost: CostModel = field(default_factory=CostModel)
    #: DRAM available to the OS page cache (the paper's DR2)
    page_cache_size: int = 16 * GB
    #: fault injection + H2 resilience parameters; ``None`` disables
    #: injection unless a process-global default is installed via
    #: :func:`repro.faults.set_default_fault_config`
    faults: Optional[FaultConfig] = None
    #: device-health watchdog + H2 governor; ``None`` disables the
    #: governor unless a process-global default is installed via
    #: :func:`repro.faults.set_default_governor_config`
    governor: Optional[GovernorConfig] = None
    #: post-GC invariant auditing: ``None`` (off), "cheap" or "full";
    #: overridable by the ``REPRO_AUDIT`` environment variable
    audit: Optional[str] = None

    def __post_init__(self) -> None:
        if self.heap_size <= 0:
            raise ConfigError("heap_size must be positive")
        if self.audit is not None and str(self.audit).lower() not in (
            "cheap",
            "full",
        ):
            raise ConfigError(
                f"unknown audit level {self.audit!r}; "
                "expected 'cheap' or 'full'"
            )
        if not 0.0 < self.young_fraction < 1.0:
            raise ConfigError("young_fraction must be in (0, 1)")
        if self.gc_threads < 1:
            raise ConfigError("gc_threads must be >= 1")
        if self.collector not in ("ps", "ps11", "g1", "panthera", "memmode"):
            raise ConfigError(f"unknown collector {self.collector!r}")
        if self.teraheap.enabled and self.collector not in ("ps", "ps11"):
            raise ConfigError(
                "TeraHeap extends the Parallel Scavenge collector; "
                f"collector={self.collector!r} is not supported"
            )

    @property
    def young_size(self) -> int:
        return int(self.heap_size * self.young_fraction)

    @property
    def old_size(self) -> int:
        return self.heap_size - self.young_size

    @property
    def eden_size(self) -> int:
        return self.young_size - 2 * self.survivor_size

    @property
    def survivor_size(self) -> int:
        return int(self.young_size * self.survivor_fraction)
