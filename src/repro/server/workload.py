"""A steppable cached-analytics workload for co-located tenants.

The server scheduler interleaves tenants at *step* granularity (one
batch of chunk allocations + compute + cache re-reads), so workloads
must expose incremental progress rather than a monolithic ``run()``.
The shape mirrors the paper's iterative cached analytics (Section 7):
each iteration materialises a working set, tags it for H2, re-reads a
window of the previous iteration's cache (device traffic once the data
moved to H2), and drops iterations older than the sliding window.
"""

from __future__ import annotations

from typing import Dict, List

from ..devices.base import AccessPattern
from ..heap.object_model import HeapObject
from ..units import KiB


class CachedAnalyticsWorkload:
    """Iterative job: materialise, cache on H2, re-read, slide window.

    Deterministic by construction — the re-read sample is a fixed
    stride over the previous iteration's chunk list, no RNG anywhere —
    so two runs of the same box produce byte-identical schedules.
    """

    def __init__(
        self,
        vm,
        name: str,
        dataset_bytes: int,
        chunk_size: int = 8 * KiB,
        iterations: int = 3,
        batch_chunks: int = 16,
        reread_fraction: float = 1.0,
        compute_ops_per_chunk: int = 16,
    ):
        self.vm = vm
        self.name = name
        self.chunk_size = chunk_size
        self.chunks_total = max(1, dataset_bytes // chunk_size)
        self.iterations = iterations
        self.batch_chunks = batch_chunks
        self.reread_fraction = reread_fraction
        self.compute_ops_per_chunk = compute_ops_per_chunk
        self._iteration = 0
        self._cursor = 0
        self._anchors: Dict[int, HeapObject] = {}
        self._cached: Dict[int, List[HeapObject]] = {}
        self.done = False
        self.processed_bytes = 0
        self.steps = 0

    # ------------------------------------------------------------------
    def _label(self, iteration: int) -> str:
        return f"{self.name}-it{iteration}"

    def _begin_iteration(self) -> None:
        vm = self.vm
        anchor = vm.allocate(64, name=self._label(self._iteration))
        vm.roots.add(anchor)
        vm.h2_tag_root(anchor, self._label(self._iteration))
        self._anchors[self._iteration] = anchor
        self._cached[self._iteration] = []

    def _end_iteration(self) -> None:
        vm = self.vm
        vm.h2_move(self._label(self._iteration))
        # Slide the cache window: iteration i-2 is no longer needed.
        stale = self._iteration - 2
        if stale in self._anchors:
            anchor = self._anchors.pop(stale)
            vm.roots.remove(anchor)
            self._cached.pop(stale, None)
        # Job boundary: a full GC moves the tagged working set to H2 and
        # reclaims the dropped iteration's regions (the explicit System.gc()
        # Spark jobs issue between stages when offheap caching is on).
        vm.major_gc()
        self._iteration += 1
        self._cursor = 0
        if self._iteration >= self.iterations:
            self.done = True

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process one batch; advances the tenant's clock."""
        if self.done:
            return
        vm = self.vm
        if self._cursor == 0:
            self._begin_iteration()
        anchor = self._anchors[self._iteration]
        cache = self._cached[self._iteration]
        batch = min(self.batch_chunks, self.chunks_total - self._cursor)
        vm.stall_for_capacity(batch * self.chunk_size)
        for _ in range(batch):
            obj = vm.allocate(self.chunk_size)
            vm.write_ref(anchor, obj)
            cache.append(obj)
        vm.compute(batch * self.compute_ops_per_chunk)
        # Re-read a window of the previous iteration's cache.  Once that
        # iteration moved to H2, these are device reads through the
        # shared page cache — the traffic the bandwidth arbiter carves.
        prev = self._cached.get(self._iteration - 1)
        if prev:
            rereads = max(1, int(batch * self.reread_fraction))
            for j in range(rereads):
                obj = prev[(self.steps * 7 + j * 13) % len(prev)]
                vm.read_object(obj, AccessPattern.RANDOM)
        self._cursor += batch
        self.processed_bytes += batch * self.chunk_size
        self.steps += 1
        if self._cursor >= self.chunks_total:
            self._end_iteration()
