"""Shared-device bandwidth arbitration and the global pressure arbiter.

Two cooperating controllers make co-location work:

1. The :class:`BandwidthArbiter` owns the physical device's bandwidth.
   Every tenant sees the device through a :class:`TenantDevice` facade
   whose effective bandwidth is ``nominal * share``; shares start at the
   guaranteed ``1/N`` and, in work-conserving mode, are recomputed each
   epoch so tenants that demonstrably need less than their guarantee
   lend the surplus to tenants that want more.  The no-arbiter control
   configuration (``work_conserving=False``) keeps the static ``1/N``
   partition forever — the strawman the serverscale experiment compares
   against.

2. The :class:`MemoryPressureArbiter` owns the box's memory budgets.
   It observes per-tenant GC-share and alloc-stall EWMAs at every epoch
   and re-carves three levers: the H2 device byte budget
   (:attr:`~repro.teraheap.h2_heap.H2Heap.byte_budget`), the DR2 page
   cache quota (:meth:`~repro.devices.page_cache.PageCache.resize`) and
   the H1 high/low watermarks (the mutable
   :class:`~repro.teraheap.thresholds.ThresholdPolicy` attributes).  H1
   itself cannot be resized live — space extents and card-table ranges
   are frozen at VM construction — so the watermark is the H1 lever: a
   pressured tenant is told to start offloading to H2 earlier, which
   frees H1 headroom without moving heap boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..devices.base import AccessPattern, Device


class TenantDevice(Device):
    """One tenant's view of a shared physical device.

    A plain :class:`Device` clone of the template, except that every
    transfer is charged at ``nominal_bw * share(tenant)`` and reported
    to the arbiter so the next epoch's shares reflect real demand.
    Latency is not scaled: queueing is folded into the bandwidth share,
    which is the contention effect the fair-share model captures.

    The facade survives :meth:`Device.rebind` (``copy.copy`` preserves
    the ``arbiter``/``tenant`` instance attributes), so handing it to a
    :class:`JavaVM` — which rebinds foreign-clock devices onto its own
    clock — keeps the arbitration link intact.
    """

    def __init__(self, template: Device, arbiter: "BandwidthArbiter", tenant: str):
        super().__init__(
            name=template.name,
            capacity=template.capacity,
            read_latency=template.read_latency,
            write_latency=template.write_latency,
            read_bw=template.read_bw,
            write_bw=template.write_bw,
            page_size=template.page_size,
            random_penalty=template.random_penalty,
        )
        self.arbiter = arbiter
        self.tenant = tenant
        arbiter.register(tenant)

    def read(
        self,
        nbytes: int,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        requests: int = 1,
    ) -> float:
        share = self.arbiter.share(self.tenant)
        base = self.read_bw
        self.read_bw = base * share
        try:
            cost = super().read(nbytes, pattern, requests)
        finally:
            self.read_bw = base
        self.arbiter.note(self.tenant, self._granular(nbytes), write=False)
        return cost

    def write(
        self,
        nbytes: int,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
        requests: int = 1,
    ) -> float:
        share = self.arbiter.share(self.tenant)
        base = self.write_bw
        self.write_bw = base * share
        try:
            cost = super().write(nbytes, pattern, requests)
        finally:
            self.write_bw = base
        self.arbiter.note(self.tenant, self._granular(nbytes), write=True)
        return cost


class _Link:
    """Arbiter-side state for one registered tenant."""

    __slots__ = (
        "share",
        "busy_ewma",
        "epoch_read",
        "epoch_written",
        "total_read",
        "total_written",
        "active",
    )

    def __init__(self) -> None:
        self.share: Optional[float] = None
        self.busy_ewma: Optional[float] = None
        self.epoch_read = 0
        self.epoch_written = 0
        self.total_read = 0
        self.total_written = 0
        self.active = True


class BandwidthArbiter:
    """Fair-share carve-up of one device's bandwidth across tenants.

    Each tenant is *guaranteed* ``1/N`` of the nominal bandwidth.  In
    work-conserving mode the arbiter measures each tenant's demanded
    busy fraction per epoch (bytes moved at nominal speed over the
    epoch length, smoothed by an EWMA), lets low-demand tenants keep
    only what they use (plus headroom), and hands the surplus to
    tenants whose demand exceeds their guarantee, proportional to their
    excess.  A retired (finished or crashed-for-good) tenant's demand
    drops to zero immediately, so its whole guarantee becomes surplus
    at the next epoch boundary.

    Shares never drop below ``min_share`` (a tenant can always make
    progress and re-grow its EWMA) and never exceed 1.0.
    """

    def __init__(
        self,
        read_bw: float,
        write_bw: float,
        work_conserving: bool = True,
        ewma_alpha: float = 0.5,
        headroom: float = 1.25,
        min_share: float = 0.05,
    ):
        self.read_bw = read_bw
        self.write_bw = write_bw
        self.work_conserving = work_conserving
        self.ewma_alpha = ewma_alpha
        self.headroom = headroom
        self.min_share = min_share
        #: insertion-ordered (= tenant boot order): iteration order is
        #: deterministic, which the double-run digest gate relies on
        self._links: Dict[str, _Link] = {}
        self.epochs = 0

    # ------------------------------------------------------------------
    def register(self, tenant: str) -> None:
        if tenant not in self._links:
            self._links[tenant] = _Link()

    def retire(self, tenant: str) -> None:
        """Tenant finished (or is gone for good): free its share."""
        link = self._links[tenant]
        link.active = False
        link.busy_ewma = 0.0

    def share(self, tenant: str) -> float:
        """Current bandwidth share in ``(0, 1]`` for ``tenant``."""
        link = self._links[tenant]
        if link.share is None:
            return 1.0 / max(1, len(self._links))
        return link.share

    def note(self, tenant: str, nbytes: int, write: bool) -> None:
        """A transfer completed: account it for demand estimation."""
        link = self._links[tenant]
        if write:
            link.epoch_written += nbytes
            link.total_written += nbytes
        else:
            link.epoch_read += nbytes
            link.total_read += nbytes

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(
            link.total_read + link.total_written
            for link in self._links.values()
        )

    def busy_seconds(self) -> float:
        """Device-busy seconds if all traffic ran at nominal speed."""
        return sum(
            link.total_read / self.read_bw
            + link.total_written / self.write_bw
            for link in self._links.values()
        )

    # ------------------------------------------------------------------
    def end_epoch(self, epoch_seconds: float) -> Dict[str, float]:
        """Close the epoch: fold demand EWMAs, recompute shares.

        Returns the new share map (name -> share) for the epoch record.
        """
        self.epochs += 1
        n = max(1, len(self._links))
        guarantee = 1.0 / n
        alpha = self.ewma_alpha
        for link in self._links.values():
            busy = (
                link.epoch_read / self.read_bw
                + link.epoch_written / self.write_bw
            ) / max(epoch_seconds, 1e-12)
            if link.busy_ewma is None:
                link.busy_ewma = busy
            else:
                link.busy_ewma = alpha * busy + (1.0 - alpha) * link.busy_ewma
            link.epoch_read = 0
            link.epoch_written = 0

        if not self.work_conserving:
            for link in self._links.values():
                link.share = guarantee
            return {name: guarantee for name in self._links}

        want: Dict[str, float] = {}
        for name, link in self._links.items():
            if not link.active:
                want[name] = 0.0
            else:
                want[name] = max(
                    (link.busy_ewma or 0.0) * self.headroom,
                    self.min_share,
                )
        # Surplus is what tenants demonstrably leave on the table — but
        # an active tenant is never *capped* at its demand: it keeps its
        # full guarantee (unused share is not a throttle), and only the
        # hungry draw from the donated headroom.  Shares may transiently
        # sum above 1.0 when a donor's demand spikes mid-epoch; the next
        # boundary re-converges, which is the fair-queueing trade-off.
        claimed = {name: min(guarantee, want[name]) for name in self._links}
        surplus = max(0.0, 1.0 - sum(claimed.values()))
        hunger = {
            name: want[name] - guarantee
            for name, link in self._links.items()
            if link.active and want[name] > guarantee
        }
        total_hunger = sum(hunger.values())
        shares: Dict[str, float] = {}
        for name, link in self._links.items():
            if not link.active:
                link.share = self.min_share
            else:
                extra = 0.0
                if total_hunger > 0.0 and name in hunger:
                    extra = surplus * hunger[name] / total_hunger
                link.share = min(1.0, guarantee + extra)
            shares[name] = link.share
        return shares


# ======================================================================
# Global memory-pressure arbitration
# ======================================================================
@dataclass
class TenantPressure:
    """One tenant's smoothed pressure signals, updated per epoch."""

    gc_share: float = 0.0
    stall_share: float = 0.0
    miss_rate: float = 0.0
    # snapshots of the monotone counters the deltas come from
    wall: float = 0.0
    gc_seconds: float = 0.0
    stall_seconds: float = 0.0
    misses: int = 0

    @property
    def pressure(self) -> float:
        return self.gc_share + self.stall_share


@dataclass
class EpochRecord:
    """One arbitration epoch's decisions, digest-stable."""

    epoch: int
    time: float
    shares: Dict[str, float] = field(default_factory=dict)
    watermarks: Dict[str, float] = field(default_factory=dict)
    h2_budgets: Dict[str, int] = field(default_factory=dict)
    cache_pages: Dict[str, int] = field(default_factory=dict)
    pressures: Dict[str, float] = field(default_factory=dict)

    def canonical(self) -> str:
        parts = [f"epoch={self.epoch}", f"t={self.time:.6f}"]
        for name in sorted(self.pressures):
            parts.append(
                "%s:p=%.6f,s=%.4f,hi=%.2f,h2=%d,pc=%d"
                % (
                    name,
                    self.pressures[name],
                    self.shares.get(name, 0.0),
                    self.watermarks.get(name, 0.0),
                    self.h2_budgets.get(name, 0),
                    self.cache_pages.get(name, 0),
                )
            )
        return "|".join(parts)


class MemoryPressureArbiter:
    """Epoch-driven reallocation of memory budgets across tenants.

    Every epoch the arbiter reads each live tenant's clock deltas and
    folds them into EWMAs of *GC share* (GC seconds per wall second),
    *alloc-stall share* and *page-cache miss rate*.  When enabled it
    then moves three levers, all bounded and all reversible:

    - **H1 watermarks.**  Tenants whose pressure EWMA sits above the
      active mean get their :class:`ThresholdPolicy` high watermark
      stepped down (earlier H2 offload, more H1 headroom); tenants
      below the mean relax back toward the configured value.  The low
      watermark follows at a fixed gap.
    - **H2 byte budgets.**  The shared device's capacity is re-carved:
      every active tenant keeps a floor of ``capacity / 2N`` and the
      rest is dealt proportionally to current H2 footprint, rounded
      down to region multiples.  Budgets are soft caps enforced at
      region allocation (``budget_denial`` — not a device failure).
    - **DR2 quotas.**  The box's page-cache budget is re-carved with a
      ``dr2 / 2N`` floor and the remainder proportional to miss-rate
      EWMAs; shrinking evicts immediately, durable state is untouched.

    With ``enabled=False`` the arbiter still observes (the serverscale
    experiment reports pressure curves for the control runs too) but
    never mutates — budgets stay at the static equal split the box set
    at boot.
    """

    #: watermark step per epoch and its floor
    WATERMARK_STEP = 0.05
    WATERMARK_FLOOR = 0.60
    #: dead-band around the mean pressure before we move anything
    DEAD_BAND = 0.02

    def __init__(
        self,
        h2_capacity: int,
        region_size: int,
        dr2_budget: int,
        page_size: int,
        enabled: bool = True,
        ewma_alpha: float = 0.5,
    ):
        self.h2_capacity = h2_capacity
        self.region_size = region_size
        self.dr2_budget = dr2_budget
        self.page_size = page_size
        self.enabled = enabled
        self.ewma_alpha = ewma_alpha
        self._pressure: Dict[str, TenantPressure] = {}
        #: per-tenant configured (relaxed) watermarks, captured at attach
        self._base_high: Dict[str, float] = {}
        self._base_gap: Dict[str, float] = {}
        self.records: List[EpochRecord] = []

    # ------------------------------------------------------------------
    def attach(self, name: str, vm) -> None:
        """Start observing ``vm`` under ``name``."""
        policy = vm.collector.policy
        self._pressure[name] = TenantPressure()
        self._base_high[name] = policy.high_threshold
        low = policy.low_threshold
        self._base_gap[name] = (
            policy.high_threshold - low if low is not None else 0.35
        )

    # ------------------------------------------------------------------
    def _observe(self, name: str, tenant) -> TenantPressure:
        from ..clock import Bucket

        vm = tenant.vm
        state = self._pressure[name]
        wall = vm.clock.now
        gc = vm.clock.total(Bucket.MINOR_GC) + vm.clock.total(Bucket.MAJOR_GC)
        stall = vm.clock.total(Bucket.ALLOC_STALL)
        misses = vm.h2.page_cache.misses if vm.h2 is not None else 0
        d_wall = wall - state.wall
        alpha = self.ewma_alpha
        if d_wall > 1e-12:
            gc_share = (gc - state.gc_seconds) / d_wall
            stall_share = (stall - state.stall_seconds) / d_wall
            miss_rate = (misses - state.misses) / d_wall
            state.gc_share = alpha * gc_share + (1 - alpha) * state.gc_share
            state.stall_share = (
                alpha * stall_share + (1 - alpha) * state.stall_share
            )
            state.miss_rate = alpha * miss_rate + (1 - alpha) * state.miss_rate
        state.wall = wall
        state.gc_seconds = gc
        state.stall_seconds = stall
        state.misses = misses
        return state

    # ------------------------------------------------------------------
    def epoch(self, box_time: float, tenants, shares: Dict[str, float]) -> EpochRecord:
        """Run one arbitration epoch over ``tenants`` (name -> Tenant)."""
        record = EpochRecord(
            epoch=len(self.records) + 1, time=box_time, shares=dict(shares)
        )
        active = {}
        for name, tenant in tenants.items():
            state = self._observe(name, tenant)
            record.pressures[name] = state.pressure
            if not tenant.finished:
                active[name] = tenant

        if active:
            if self.enabled:
                self._rebalance(active, record)
            else:
                for name, tenant in active.items():
                    policy = tenant.vm.collector.policy
                    record.watermarks[name] = policy.high_threshold
                    record.h2_budgets[name] = tenant.vm.h2.byte_budget or 0
                    record.cache_pages[name] = tenant.vm.h2.page_cache.max_pages
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    def _rebalance(self, active, record: EpochRecord) -> None:
        n = len(active)
        mean = sum(self._pressure[name].pressure for name in active) / n

        # --- H1 watermarks -------------------------------------------
        for name, tenant in active.items():
            policy = tenant.vm.collector.policy
            pressure = self._pressure[name].pressure
            high = policy.high_threshold
            if pressure > mean + self.DEAD_BAND:
                high = max(self.WATERMARK_FLOOR, high - self.WATERMARK_STEP)
            elif pressure < mean - self.DEAD_BAND:
                high = min(self._base_high[name], high + self.WATERMARK_STEP)
            policy.high_threshold = high
            if policy.low_threshold is not None:
                policy.low_threshold = max(
                    0.25, high - self._base_gap[name]
                )
            record.watermarks[name] = high

        # --- H2 byte budgets -----------------------------------------
        floor = self.h2_capacity // (2 * n)
        floor -= floor % self.region_size
        floor = max(floor, self.region_size)
        spare = self.h2_capacity - floor * n
        weights = {
            name: max(
                tenant.vm.h2.used_bytes() if tenant.vm.h2 else 0,
                self.region_size,
            )
            for name, tenant in active.items()
        }
        total_weight = sum(weights.values())
        for name, tenant in active.items():
            extra = int(spare * weights[name] / total_weight)
            budget = floor + extra - (floor + extra) % self.region_size
            tenant.vm.h2.byte_budget = budget
            record.h2_budgets[name] = budget

        # --- DR2 page-cache quotas -----------------------------------
        pc_floor = max(self.page_size, self.dr2_budget // (2 * n))
        pc_spare = max(0, self.dr2_budget - pc_floor * n)
        miss_weights = {
            name: max(self._pressure[name].miss_rate, 1e-9)
            for name in active
        }
        total_miss = sum(miss_weights.values())
        for name, tenant in active.items():
            quota = pc_floor + int(pc_spare * miss_weights[name] / total_miss)
            pages = tenant.vm.h2.page_cache.resize(quota)
            record.cache_pages[name] = pages
