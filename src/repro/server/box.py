"""The server box: N co-located tenant VMs over one device and one DRAM budget.

A :class:`ServerBox` is the unit the serverscale experiment sweeps: it
boots ``spec.tenants`` JavaVMs — each with a *private* heap store, its
own clock, and a :class:`TenantDevice` facade over the one shared NVMe
— wires them all to one shared :class:`DeviceHealthMonitor` and the two
arbiters, and interleaves their workloads under a deterministic
min-clock scheduler: the tenant whose virtual time is furthest behind
steps next (ties broken by boot order), so simulated time advances like
a discrete-event simulation and the interleaving is a pure function of
the spec.

Epoch boundaries live on *box* virtual time (the min over active
tenants); at each boundary the bandwidth arbiter refreshes fair shares
from demand EWMAs and the memory-pressure arbiter re-carves H2 byte
budgets, DR2 quotas and H1 watermarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..clock import Bucket, Clock
from ..config import GovernorConfig, TeraHeapConfig, VMConfig
from ..devices.health import DeviceHealthMonitor
from ..devices.nvme import NVMeSSD
from ..heap.store import HeapStore
from ..runtime import JavaVM
from ..units import KiB, gb
from .arbiter import BandwidthArbiter, MemoryPressureArbiter, TenantDevice
from .workload import CachedAnalyticsWorkload


@dataclass
class ServerSpec:
    """Everything that determines a box run (and hence its digest)."""

    tenants: int = 2
    #: mean per-tenant dataset; actual datasets spread around the mean
    mean_dataset_bytes: int = gb(1)
    #: heterogeneity: tenant i's dataset = mean * (1 + spread*(2i/(n-1)-1))
    spread: float = 0.6
    #: True = work-conserving bandwidth + pressure arbitration;
    #: False = static 1/N partition everywhere (the control)
    arbiter: bool = True
    epoch_seconds: float = 0.5
    #: shared H2 device byte capacity carved across tenants
    h2_capacity: int = gb(16)
    #: box-wide DR2 (page cache) budget carved across tenants
    dr2_budget: int = gb(1)
    iterations: int = 3
    chunk_size: int = 8 * KiB
    batch_chunks: int = 16
    #: per-tenant H1 = heap_factor * dataset: one iteration fits with
    #: headroom, two cached iterations do not — the previous iteration
    #: lives on H2 and its re-reads are device traffic
    heap_factor: float = 1.6

    def dataset_bytes(self, index: int) -> int:
        if self.tenants <= 1:
            weight = 1.0
        else:
            weight = 1.0 + self.spread * (
                2.0 * index / (self.tenants - 1) - 1.0
            )
        raw = int(self.mean_dataset_bytes * weight)
        return max(self.chunk_size, raw - raw % self.chunk_size)


class Tenant:
    """One co-located VM plus its monotone cross-incarnation timeline.

    ``now`` is ``base_time + vm.clock.now``: when a tenant's VM is
    replaced (crash restart), :meth:`attach_vm` folds the dead
    incarnation's elapsed time into ``base_time``, so the tenant's
    timeline never moves backwards even though each incarnation's clock
    starts at zero.
    """

    def __init__(
        self,
        name: str,
        index: int,
        vm: JavaVM,
        workload: Optional[CachedAnalyticsWorkload],
        dataset_bytes: int,
    ):
        self.name = name
        self.index = index
        self.vm = vm
        self.workload = workload
        self.dataset_bytes = dataset_bytes
        self.base_time = 0.0
        self.finished = False
        self.finish_time: Optional[float] = None

    @property
    def now(self) -> float:
        return self.base_time + self.vm.clock.now

    def attach_vm(self, vm: JavaVM) -> None:
        """Swap in a successor VM, preserving timeline monotonicity."""
        self.base_time += self.vm.clock.now
        self.vm = vm
        if self.workload is not None:
            self.workload.vm = vm

    def step(self) -> None:
        self.workload.step()


@dataclass
class TenantReport:
    name: str
    dataset_bytes: int
    processed_bytes: int
    finish_time: float
    gc_seconds: float
    stall_seconds: float
    alloc_stalls: int
    pauses: int
    p99_pause: float
    h2_moved_bytes: int
    cache_hit_ratio: float
    device_read: int
    device_written: int

    @property
    def velocity(self) -> float:
        """Bytes processed per second over the tenant's whole run."""
        if self.finish_time <= 0:
            return 0.0
        return self.processed_bytes / self.finish_time

    @property
    def progress_rate(self) -> float:
        """Dataset passes completed per second — the fairness unit.

        Each tenant's "job" is one pass over its own dataset, so passes
        per second is throughput normalised per unit of work: the
        multi-tenant fairness convention (normalised progress).  Heavy
        tenants are intrinsically the slowest here, and they are exactly
        whom work-conserving borrowing helps — so a fair arbiter narrows
        the box-wide max/min spread of this rate.
        """
        if self.finish_time <= 0 or self.dataset_bytes <= 0:
            return 0.0
        return self.processed_bytes / self.finish_time / self.dataset_bytes


@dataclass
class BoxReport:
    spec_tenants: int
    arbiter: bool
    tenants: List[TenantReport] = field(default_factory=list)
    makespan: float = 0.0
    aggregate_throughput: float = 0.0
    device_busy_fraction: float = 0.0
    epochs: int = 0
    epoch_log: List[str] = field(default_factory=list)

    @property
    def fairness_gap(self) -> float:
        """max/min per-tenant progress rate (1.0 = perfectly fair)."""
        rates = [t.progress_rate for t in self.tenants if t.progress_rate > 0]
        if not rates:
            return 1.0
        return max(rates) / min(rates)


def _p99(values: List[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(0.99 * len(ordered)))
    return ordered[rank]


class ServerBox:
    """Boot, arbitrate and run N co-located tenants deterministically."""

    def __init__(self, spec: ServerSpec):
        self.spec = spec
        #: box virtual time: the shared health monitor's timestamps and
        #: the epoch records live on this clock, advanced to the min of
        #: the active tenants' timelines at every epoch boundary
        self.clock = Clock()
        template = NVMeSSD(self.clock)
        self.bandwidth = BandwidthArbiter(
            read_bw=template.read_bw,
            write_bw=template.write_bw,
            work_conserving=spec.arbiter,
        )
        gov_cfg = GovernorConfig()
        #: one health monitor for the one physical device — a brownout
        #: is a single classification every tenant's governor consults
        self.health = DeviceHealthMonitor(self.clock, gov_cfg.health)
        region_size = TeraHeapConfig().region_size
        self.pressure = MemoryPressureArbiter(
            h2_capacity=spec.h2_capacity,
            region_size=region_size,
            dr2_budget=spec.dr2_budget,
            page_size=4 * KiB,
            enabled=spec.arbiter,
        )
        self.tenants: List[Tenant] = []
        n = spec.tenants
        for index in range(n):
            name = f"vm{index}"
            dataset = spec.dataset_bytes(index)
            heap = max(32 * spec.chunk_size, int(spec.heap_factor * dataset))
            config = VMConfig(
                heap_size=heap,
                teraheap=TeraHeapConfig(
                    enabled=True, h2_size=spec.h2_capacity
                ),
                page_cache_size=max(4 * KiB, spec.dr2_budget // n),
                governor=GovernorConfig(),
            )
            vm = JavaVM(
                config,
                h2_device=TenantDevice(template, self.bandwidth, name),
                store=HeapStore(),
                health=self.health,
            )
            # Static equal split until the first arbitration epoch (and
            # forever, in the no-arbiter control).
            budget = spec.h2_capacity // n
            vm.h2.byte_budget = budget - budget % region_size
            workload = CachedAnalyticsWorkload(
                vm,
                name,
                dataset,
                chunk_size=spec.chunk_size,
                iterations=spec.iterations,
                batch_chunks=spec.batch_chunks,
            )
            tenant = Tenant(name, index, vm, workload, dataset)
            self.tenants.append(tenant)
            self.pressure.attach(name, vm)

    # ------------------------------------------------------------------
    def _advance_clock(self, target: float) -> None:
        delta = target - self.clock.now
        if delta > 0:
            self.clock.charge(delta, Bucket.OTHER)

    def _run_epoch(self, boundary: float) -> None:
        self._advance_clock(boundary)
        shares = self.bandwidth.end_epoch(self.spec.epoch_seconds)
        by_name = {tenant.name: tenant for tenant in self.tenants}
        self.pressure.epoch(boundary, by_name, shares)

    # ------------------------------------------------------------------
    def run(self) -> BoxReport:
        next_epoch = self.spec.epoch_seconds
        while True:
            pending = [t for t in self.tenants if not t.finished]
            if not pending:
                break
            tenant = min(pending, key=lambda t: (t.now, t.index))
            if tenant.now >= next_epoch:
                self._run_epoch(next_epoch)
                next_epoch += self.spec.epoch_seconds
                continue
            tenant.step()
            if tenant.workload.done:
                tenant.finished = True
                tenant.finish_time = tenant.now
                self.bandwidth.retire(tenant.name)
        return self._report()

    # ------------------------------------------------------------------
    def _report(self) -> BoxReport:
        report = BoxReport(
            spec_tenants=self.spec.tenants, arbiter=self.spec.arbiter
        )
        total_processed = 0
        for tenant in self.tenants:
            vm = tenant.vm
            cycles = vm.collector.stats.cycles
            link = self.bandwidth._links[tenant.name]
            finish = tenant.finish_time or tenant.now
            total_processed += tenant.workload.processed_bytes
            report.tenants.append(
                TenantReport(
                    name=tenant.name,
                    dataset_bytes=tenant.dataset_bytes,
                    processed_bytes=tenant.workload.processed_bytes,
                    finish_time=finish,
                    gc_seconds=(
                        vm.clock.total(Bucket.MINOR_GC)
                        + vm.clock.total(Bucket.MAJOR_GC)
                    ),
                    stall_seconds=vm.clock.total(Bucket.ALLOC_STALL),
                    alloc_stalls=vm.alloc_stalls,
                    pauses=len(cycles),
                    p99_pause=_p99([c.duration for c in cycles]),
                    h2_moved_bytes=sum(c.moved_to_h2_bytes for c in cycles),
                    cache_hit_ratio=(
                        vm.h2.page_cache.hit_ratio if vm.h2 else 0.0
                    ),
                    device_read=link.total_read,
                    device_written=link.total_written,
                )
            )
        report.makespan = max(
            (t.finish_time or t.now) for t in self.tenants
        )
        if report.makespan > 0:
            report.aggregate_throughput = total_processed / report.makespan
            report.device_busy_fraction = min(
                1.0, self.bandwidth.busy_seconds() / report.makespan
            )
        report.epochs = len(self.pressure.records)
        report.epoch_log = [r.canonical() for r in self.pressure.records]
        return report
