"""Multi-tenant server layer: co-located VMs over shared devices.

The paper evaluates TeraHeap one JVM at a time, but its motivating
setting (Section 1: analytics clusters overprovisioning DRAM) is a
*server* running several executor JVMs against one NVMe device and one
DRAM budget.  This package models that box:

- :class:`~repro.server.arbiter.BandwidthArbiter` +
  :class:`~repro.server.arbiter.TenantDevice` — one shared device whose
  bandwidth is carved into per-tenant fair shares, with work-conserving
  borrowing of idle tenants' headroom.
- :class:`~repro.server.arbiter.MemoryPressureArbiter` — the global
  memory-pressure governor: per-tenant GC-share and alloc-stall EWMAs
  drive epoch-by-epoch reallocation of H2 byte budgets, DR2 page-cache
  quotas and H1 high/low watermarks.
- :class:`~repro.server.box.ServerBox` — boots N :class:`JavaVM`
  tenants (private heap stores, shared device-health monitor), runs
  their workloads under a deterministic min-clock scheduler, and
  reports aggregate throughput, fairness and device saturation.
"""

from .arbiter import (
    BandwidthArbiter,
    MemoryPressureArbiter,
    TenantDevice,
)
from .box import ServerBox, ServerSpec, Tenant
from .workload import CachedAnalyticsWorkload

__all__ = [
    "BandwidthArbiter",
    "CachedAnalyticsWorkload",
    "MemoryPressureArbiter",
    "ServerBox",
    "ServerSpec",
    "Tenant",
    "TenantDevice",
]
