"""Parallel Scavenge: copying minor GC + four-phase mark-compact major GC.

Models the OpenJDK8 PS collector the paper extends (Section 4):

- **Minor GC** scavenges eden + from-space, using the root set, dirty H1
  cards (old-to-young references) and — under TeraHeap — backward
  references found in the H2 card table.  Survivors copy to to-space or
  promote to the old generation.
- **Major GC** runs marking, pre-compaction (forwarding-address
  assignment), pointer adjustment and compaction.  TeraHeap extends every
  phase via the hook methods this class exposes.

Costs: CPU work is decomposed into tasks — root-set partitions,
dirty-card chunks, object-scan batches, copy batches, forwarding and
compaction batches — and scheduled on the task-based parallel GC engine
(:mod:`repro.gc.engine`): simulated worker threads pull from per-thread
deques with seeded work stealing, and the pause is charged the critical
path over the worker lanes.  Device I/O still charges the clock directly
(bandwidth is not divisible by threads).  OpenJDK8 PS collects the old
generation single-threaded (Section 6), so major-GC phases run on one
worker; the "ps11" flavour models the optimised jdk11 collector with
partial old-generation parallelism (ParallelOld).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..clock import Bucket, Clock
from ..config import VMConfig
from ..errors import OutOfMemoryError
from ..heap.heap import ManagedHeap
from ..heap.object_model import HeapObject, SpaceId
from ..heap.roots import RootSet
from .base import Collector, GCCycle
from .engine import (
    BatchController,
    GCTaskEngine,
    PhaseExecution,
    TaskBag,
    chunked_sweep,
)


class PromotionFailure(Exception):
    """Internal: a scavenge could not promote; the VM must run a full GC."""


class ParallelScavenge(Collector):
    """The PS collector over a :class:`ManagedHeap`."""

    name = "ps"

    def __init__(
        self,
        heap: ManagedHeap,
        roots: RootSet,
        clock: Clock,
        config: VMConfig,
    ):
        super().__init__()
        self.heap = heap
        self.roots = roots
        self.clock = clock
        self.config = config
        self.cost = config.cost
        self.engine = GCTaskEngine(
            clock,
            config.cost,
            workers=config.gc_threads,
            seed=config.engine.seed,
            trace=config.engine.trace,
            name=self.name,
            steal_policy=config.engine.steal_policy,
            numa_nodes=config.engine.numa_nodes,
        )
        self.batch = BatchController(config.engine)

    def major_workers(self) -> int:
        """GC threads collecting the old generation (jdk8 PS: one)."""
        return 1

    def _run_phase(
        self, bag: TaskBag, phase: str, workers: Optional[int] = None
    ) -> PhaseExecution:
        """Schedule one phase's task bag and record its execution."""
        execution = self.engine.run(bag, phase, workers=workers)
        self.note_execution(execution)
        return execution

    # ==================================================================
    # TeraHeap hook points (no-ops in plain PS)
    # ==================================================================
    def is_fenced(self, obj: HeapObject) -> bool:
        """True when traversal must not cross into ``obj`` (H2 residents)."""
        return obj.space in (SpaceId.H2, SpaceId.FREED)

    def on_mark_visit(self, obj: HeapObject) -> None:
        """Per-object hook during major marking (Panthera charges NVM I/O)."""

    def on_compact_move(self, obj: HeapObject) -> None:
        """Per-object hook during compaction (Panthera charges NVM I/O)."""

    def on_minor_copy(self, obj: HeapObject) -> None:
        """Per-object hook during scavenge copying (memory-mode charges)."""

    def on_forward_reference(self, target: HeapObject) -> None:
        """Called for each H1-to-H2 edge found during major marking."""

    def minor_h2_roots(self) -> List[HeapObject]:
        """Young H1 objects kept alive by H2 backward references."""
        return []

    def minor_h2_post_copy(self, relocated: Set[int]) -> None:
        """Reclassify/adjust H2 cards after the copy phase."""

    def pre_major_mark(self) -> None:
        """Reset H2 region live bits (start of marking)."""

    def major_h2_roots(self) -> List[HeapObject]:
        """H1 objects referenced from H2, via the H2 card table."""
        return []

    def select_h2_movers(
        self, live: List[HeapObject], live_bytes: int, epoch: int
    ) -> "List[Tuple[HeapObject, str]]":
        """Choose (object, label) pairs to transfer to H2 this GC."""
        return []

    def after_marking(self, epoch: int) -> None:
        """Free dead H2 regions (end of marking)."""

    def assign_h2_addresses(
        self, movers: "List[Tuple[HeapObject, str]]", epoch: int
    ) -> "List[Tuple[HeapObject, str]]":
        """Pre-compaction for movers: pick region + address per object.

        Returns the movers that actually received an H2 address; the
        rest stay in H1 and compact with the stayers.
        """
        return movers

    def adjust_mover_references(
        self, movers: "List[Tuple[HeapObject, str]]", stayers: Set[int]
    ) -> None:
        """Record new cross-region and backward references for movers."""

    def adjust_h2_backward_refs(self) -> None:
        """Rewrite H2-resident backward references to new H1 locations."""

    def compact_movers(self, movers: "List[Tuple[HeapObject, str]]") -> None:
        """Write movers to the device through promotion buffers."""

    def on_major_complete(self, epoch: int) -> None:
        """End-of-major-GC hook: TeraHeap commits its durable epoch here."""

    # ==================================================================
    # Minor GC
    # ==================================================================
    def minor_gc(self) -> GCCycle:
        heap = self.heap
        cost = self.cost
        eng_cfg = self.config.engine
        start = self.clock.now
        with self.clock.context(Bucket.MINOR_GC):
            epoch = self.next_epoch()
            self.begin_parallel_cycle()
            self.clock.charge(cost.gc_pause_overhead)

            # --- Roots: explicit roots + dirty-card old objects + H2 ----
            bag = TaskBag()
            roots: List[HeapObject] = []
            root_scan = bag.batcher("minor-roots", "root", 128)
            for obj in self.roots:
                root_scan.add(cost.gc_root_scan_cost)
                if obj.in_young:
                    roots.append(obj)
            root_scan.flush()
            scanned_cards: List[Tuple[int, List[HeapObject]]] = []
            card_work: Dict[int, float] = {}
            for card in heap.card_table.dirty_cards():
                lo, hi = heap.card_table.card_range(card)
                on_card = heap.old.objects_overlapping(lo, hi)
                scanned_cards.append((card, on_card))
                work = 0.0
                for old_obj in on_card:
                    work += cost.gc_visit_cost
                    work += cost.gc_ref_cost * len(old_obj.refs)
                    for ref in old_obj.refs:
                        if ref.in_young:
                            roots.append(ref)
                card_work[card] = work
            chunked_sweep(
                bag,
                "h1-cards",
                heap.card_table.num_cards,
                cost.card_check_cost,
                eng_cfg.card_chunk_cards,
                extra=card_work,
            )
            self._run_phase(bag, "minor-roots")
            h2_roots = self.minor_h2_roots()
            roots.extend(h2_roots)

            # --- Trace live young objects -------------------------------
            bag = TaskBag()
            scan = bag.batcher(
                "minor-scan", "scan", self.batch.scan_batch_objects
            )
            live_young: List[HeapObject] = []
            stack = [o for o in roots if o.in_young]
            while stack:
                obj = stack.pop()
                if obj.mark_epoch >= epoch:
                    continue
                obj.mark_epoch = epoch
                live_young.append(obj)
                scan.add(
                    cost.gc_visit_cost * obj.scan_factor
                    + cost.gc_ref_cost * len(obj.refs)
                )
                for ref in obj.refs:
                    if ref.in_young and ref.mark_epoch < epoch:
                        stack.append(ref)
                    # Old-gen and H2 targets are not traversed in a
                    # scavenge; H2 targets are additionally fenced.
            scan.flush()
            self._run_phase(bag, "minor-trace")

            # --- Copy phase ----------------------------------------------
            copy_bag = TaskBag()
            copier = copy_bag.batcher(
                "minor-copy", "copy", self.batch.copy_batch_objects
            )
            to_space = heap.survivor_to
            promote: List[HeapObject] = []
            survivors: List[HeapObject] = []
            planned_survivor_bytes = 0
            for obj in live_young:
                obj.age += 1
                if (
                    obj.age < self.config.tenuring_threshold
                    and planned_survivor_bytes + obj.size <= to_space.capacity
                ):
                    survivors.append(obj)
                    planned_survivor_bytes += obj.size
                else:
                    promote.append(obj)
            if sum(o.size for o in promote) > heap.old.free:
                # Promotion failure: abandon the scavenge, caller runs a
                # full collection instead.  Root and trace work is already
                # charged; no copying happened yet.
                raise PromotionFailure()

            dead = [
                o
                for o in heap.eden.objects + heap.survivor_from.objects
                if o.mark_epoch < epoch
            ]
            reclaimed = sum(o.size for o in dead)
            for obj in dead:
                obj.space = SpaceId.FREED

            heap.eden.reset()
            heap.survivor_from.reset()
            to_space.reset()
            relocated: Set[int] = set()
            for obj in survivors:
                if not to_space.allocate(obj):
                    promote.append(obj)
                    continue
                copier.add(obj.size / cost.gc_copy_bw)
                relocated.add(obj.oid)
                self.on_minor_copy(obj)
            promoted_bytes = 0
            for obj in promote:
                if not heap.old.allocate(obj):
                    copier.flush()
                    self._run_phase(copy_bag, "minor-copy")
                    raise PromotionFailure()
                copier.add(obj.size / cost.gc_copy_bw)
                promoted_bytes += obj.size
                relocated.add(obj.oid)
                self.on_minor_copy(obj)
            heap.swap_survivors()
            copier.flush()
            self._run_phase(copy_bag, "minor-copy")

            # --- Card maintenance ---------------------------------------
            # Precise cleaning: a scanned card stays dirty only if its
            # objects still reference young objects; promoted objects that
            # reference young survivors dirty their new cards.
            for card, on_card in scanned_cards:
                # A scanned card stays dirty while any object overlapping
                # it still references a young object (scans re-trace the
                # full reference set of every overlapping object, so the
                # card itself is the right thing to keep dirty — marking
                # the first object's header card instead would lose
                # coverage when objects span card boundaries).
                if any(
                    any(r.in_young for r in old_obj.refs)
                    for old_obj in on_card
                ):
                    continue
                heap.card_table.clear(card)
            for obj in promote:
                if any(r.in_young for r in obj.refs):
                    heap.card_table.mark(obj.address)

            self.minor_h2_post_copy(relocated)

            duration = self.clock.now - start
            cycle = GCCycle(
                kind="minor",
                start_time=start,
                duration=duration,
                live_bytes=sum(o.size for o in live_young),
                reclaimed_bytes=reclaimed,
                promoted_bytes=promoted_bytes,
                old_occupancy_after=heap.old.occupancy,
            )
            self.apply_parallel_stats(cycle, self.config.gc_threads)
            self.stats.record(cycle)
            self.clock.record_event("minor_gc", duration)
            return cycle

    # ==================================================================
    # Major GC
    # ==================================================================
    def major_gc(self) -> GCCycle:
        heap = self.heap
        cost = self.cost
        eng_cfg = self.config.engine
        workers = self.major_workers()
        start = self.clock.now
        phases: Dict[str, float] = {}
        with self.clock.context(Bucket.MAJOR_GC):
            epoch = self.next_epoch()
            self.begin_parallel_cycle()
            self.clock.charge(cost.gc_pause_overhead)

            # ---------------- Phase 1: marking --------------------------
            t0 = self.clock.now
            with self.clock.sub_context("marking"):
                bag = TaskBag()
                mark = bag.batcher(
                    "major-mark", "scan", self.batch.scan_batch_objects
                )
                self.pre_major_mark()
                stack: List[HeapObject] = []
                for obj in self.roots:
                    if obj.in_h1:
                        stack.append(obj)
                    elif self.is_fenced(obj):
                        # Stack/static roots referencing H2 directly count
                        # as forward references: they pin the region.
                        self.on_forward_reference(obj)
                stack.extend(self.major_h2_roots())
                live: List[HeapObject] = []
                while stack:
                    obj = stack.pop()
                    if obj.mark_epoch >= epoch or not obj.in_h1:
                        continue
                    obj.mark_epoch = epoch
                    live.append(obj)
                    mark.add(
                        cost.gc_visit_cost * obj.scan_factor
                        + cost.gc_ref_cost * len(obj.refs)
                    )
                    self.on_mark_visit(obj)
                    for ref in obj.refs:
                        if self.is_fenced(ref):
                            # Fence: never cross from H1 into H2.
                            self.on_forward_reference(ref)
                            continue
                        if ref.mark_epoch < epoch:
                            stack.append(ref)
                mark.flush()
                self._run_phase(bag, "major-mark", workers=workers)
                live_bytes = sum(o.size for o in live)
                movers = self.select_h2_movers(live, live_bytes, epoch)
                self.after_marking(epoch)
            phases["marking"] = self.clock.now - t0

            # ---------------- Phase 2: pre-compaction -------------------
            t0 = self.clock.now
            with self.clock.sub_context("precompact"):
                # H2 placement runs first: a mover can be denied an H2
                # address (device full, degraded H2) and must then be
                # treated as a stayer, so the stayer set is only known
                # after placement.
                movers = self.assign_h2_addresses(movers, epoch)
                mover_ids = {obj.oid for obj, _ in movers}
                # Sliding compaction: preserve address order so the
                # stable prefix of long-lived data (e.g. the cached
                # partitions at the bottom of the old gen) is not
                # rewritten every major GC.
                space_rank = {
                    SpaceId.OLD: 0,
                    SpaceId.EDEN: 1,
                    SpaceId.FROM: 2,
                    SpaceId.TO: 3,
                }
                stayers = sorted(
                    (o for o in live if o.oid not in mover_ids),
                    key=lambda o: (space_rank.get(o.space, 4), o.address),
                )
                bag = TaskBag()
                forward = bag.batcher(
                    "major-forward",
                    "precompact",
                    self.batch.precompact_batch_objects,
                )
                for _ in live:
                    forward.add(cost.gc_forward_cost)
                forward.flush()
                total_stay = sum(o.size for o in stayers)
                if total_stay > heap.old.capacity + heap.eden.capacity:
                    raise OutOfMemoryError(
                        "live data exceeds heap after full GC",
                        requested=total_stay,
                        available=heap.old.capacity + heap.eden.capacity,
                    )
                old_cursor = heap.old.base
                eden_cursor = heap.eden.base
                in_old: List[HeapObject] = []
                in_eden: List[HeapObject] = []
                for obj in stayers:
                    if old_cursor + obj.size <= heap.old.end:
                        obj.forward_address = old_cursor
                        obj.forward_space = SpaceId.OLD
                        old_cursor += obj.size
                        in_old.append(obj)
                    else:
                        obj.forward_address = eden_cursor
                        obj.forward_space = SpaceId.EDEN
                        eden_cursor += obj.size
                        in_eden.append(obj)
                self._run_phase(bag, "major-precompact", workers=workers)
            phases["precompact"] = self.clock.now - t0

            # ---------------- Phase 3: pointer adjustment ---------------
            t0 = self.clock.now
            with self.clock.sub_context("adjust"):
                bag = TaskBag()
                adjust = bag.batcher(
                    "major-adjust", "scan", self.batch.scan_batch_objects
                )
                for obj in live:
                    adjust.add(
                        cost.gc_visit_cost
                        + cost.gc_ref_cost * len(obj.refs)
                    )
                adjust.flush()
                stayer_ids = {o.oid for o in stayers}
                # Backward-reference maintenance first: it reclassifies the
                # cards scanned at marking time, and the mover adjustments
                # that follow may dirty those same cards with *new*
                # backward references that must not be clobbered.
                self.adjust_h2_backward_refs()
                self.adjust_mover_references(movers, stayer_ids)
                self._run_phase(bag, "major-adjust", workers=workers)
            phases["adjust"] = self.clock.now - t0

            # ---------------- Phase 4: compaction ------------------------
            t0 = self.clock.now
            with self.clock.sub_context("compact"):
                bag = TaskBag()
                compact = bag.batcher(
                    "major-compact", "compact", self.batch.copy_batch_objects
                )
                for obj in in_old:
                    moved = obj.address != obj.forward_address
                    obj.address = obj.forward_address
                    obj.space = SpaceId.OLD
                    obj.forward_address = -1
                    obj.forward_space = None
                    if moved:
                        compact.add(obj.size / cost.gc_copy_bw)
                        self.on_compact_move(obj)
                for obj in in_eden:
                    moved = obj.address != obj.forward_address
                    obj.address = obj.forward_address
                    obj.space = SpaceId.EDEN
                    obj.forward_address = -1
                    obj.forward_space = None
                    if moved:
                        compact.add(obj.size / cost.gc_copy_bw)
                compact.flush()
                self._run_phase(bag, "major-compact", workers=workers)
                self.compact_movers(movers)

                # Install post-compaction space contents.
                for space in (heap.eden, heap.survivor_from, heap.survivor_to):
                    for obj in space.objects:
                        if obj.mark_epoch < epoch:
                            obj.space = SpaceId.FREED
                dead_old = [
                    o for o in heap.old.objects if o.mark_epoch < epoch
                ]
                for obj in dead_old:
                    obj.space = SpaceId.FREED
                heap.eden.reset()
                heap.survivor_from.reset()
                heap.survivor_to.reset()
                heap.old.rebuild_after_compaction(in_old)
                heap.eden.objects = in_eden
                heap.eden.top = (
                    in_eden[-1].end_address() if in_eden else heap.eden.base
                )
                # Card table: after a full GC only old objects referencing
                # (overflowed) eden objects need dirty cards.
                heap.card_table.clear_all()
                if in_eden:
                    for obj in in_old:
                        if any(r.in_young for r in obj.refs):
                            heap.card_table.mark(obj.address)
            phases["compact"] = self.clock.now - t0

            self.on_major_complete(epoch)
            duration = self.clock.now - start
            moved_bytes = sum(o.size for o, _ in movers)
            cycle = GCCycle(
                kind="major",
                start_time=start,
                duration=duration,
                live_bytes=sum(o.size for o in live),
                moved_to_h2_bytes=moved_bytes,
                old_occupancy_after=heap.old.occupancy,
                phases=phases,
            )
            self.apply_parallel_stats(cycle, workers)
            self.stats.record(cycle)
            self.clock.record_event("major_gc", duration)
            return cycle


class ParallelScavengeJDK11(ParallelScavenge):
    """The optimised PS shipped with OpenJDK11 (Figure 8 baseline).

    jdk11's PS collects the old generation with parallel compaction
    (ParallelOld), which the paper's jdk8 configuration ran
    single-threaded; we model that as a small pool of old-gen workers.
    """

    name = "ps11"

    def major_workers(self) -> int:
        return min(self.config.gc_threads, 4)
