"""Parallel Scavenge: copying minor GC + four-phase mark-compact major GC.

Models the OpenJDK8 PS collector the paper extends (Section 4):

- **Minor GC** scavenges eden + from-space, using the root set, dirty H1
  cards (old-to-young references) and — under TeraHeap — backward
  references found in the H2 card table.  Survivors copy to to-space or
  promote to the old generation.
- **Major GC** runs marking, pre-compaction (forwarding-address
  assignment), pointer adjustment and compaction.  TeraHeap extends every
  phase via the hook methods this class exposes.

Costs: CPU work is decomposed into tasks — root-set partitions,
dirty-card chunks, object-scan batches, copy batches, forwarding and
compaction batches — and scheduled on the task-based parallel GC engine
(:mod:`repro.gc.engine`): simulated worker threads pull from per-thread
deques with seeded work stealing, and the pause is charged the critical
path over the worker lanes.  Device I/O still charges the clock directly
(bandwidth is not divisible by threads).  OpenJDK8 PS collects the old
generation single-threaded (Section 6), so major-GC phases run on one
worker; the "ps11" flavour models the optimised jdk11 collector with
partial old-generation parallelism (ParallelOld).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..clock import Bucket, Clock
from ..config import VMConfig
from ..errors import OutOfMemoryError
from ..heap.heap import ManagedHeap
from ..heap.object_model import HeapObject, SpaceId
from ..heap.roots import RootSet
from ..heap.store import (
    NO_SPACE,
    SPACE_EDEN,
    SPACE_FREED,
    SPACE_OLD,
    SPACE_TO,
)
from .base import Collector, GCCycle
from .engine import (
    BatchController,
    GCTaskEngine,
    PhaseExecution,
    TaskBag,
    chunked_sweep,
)


# Sliding-compaction sort rank by space code (EDEN, FROM, TO, OLD, H2,
# FREED): old-gen residents keep their address order ahead of any young
# survivors caught by a full GC.
_SPACE_RANK = (1, 2, 3, 0, 4, 4)


class PromotionFailure(Exception):
    """Internal: a scavenge could not promote; the VM must run a full GC."""


class ParallelScavenge(Collector):
    """The PS collector over a :class:`ManagedHeap`."""

    name = "ps"

    def __init__(
        self,
        heap: ManagedHeap,
        roots: RootSet,
        clock: Clock,
        config: VMConfig,
    ):
        super().__init__()
        self.heap = heap
        self.roots = roots
        self.clock = clock
        self.config = config
        self.cost = config.cost
        self.engine = GCTaskEngine(
            clock,
            config.cost,
            workers=config.gc_threads,
            seed=config.engine.seed,
            trace=config.engine.trace,
            name=self.name,
            steal_policy=config.engine.steal_policy,
            numa_nodes=config.engine.numa_nodes,
        )
        self.batch = BatchController(config.engine)

    def major_workers(self) -> int:
        """GC threads collecting the old generation (jdk8 PS: one)."""
        return 1

    def _run_phase(
        self, bag: TaskBag, phase: str, workers: Optional[int] = None
    ) -> PhaseExecution:
        """Schedule one phase's task bag and record its execution."""
        execution = self.engine.run(bag, phase, workers=workers)
        self.note_execution(execution)
        return execution

    # ==================================================================
    # TeraHeap hook points (no-ops in plain PS)
    # ==================================================================
    def is_fenced(self, obj: HeapObject) -> bool:
        """True when traversal must not cross into ``obj`` (H2 residents)."""
        return obj.space in (SpaceId.H2, SpaceId.FREED)

    def on_mark_visit(self, obj: HeapObject) -> None:
        """Per-object hook during major marking (Panthera charges NVM I/O)."""

    def on_compact_move(self, obj: HeapObject) -> None:
        """Per-object hook during compaction (Panthera charges NVM I/O)."""

    def on_minor_copy(self, obj: HeapObject) -> None:
        """Per-object hook during scavenge copying (memory-mode charges)."""

    def on_forward_reference(self, target: HeapObject) -> None:
        """Called for each H1-to-H2 edge found during major marking."""

    def minor_h2_roots(self) -> List[int]:
        """Oids of young H1 objects kept alive by H2 backward references."""
        return []

    def minor_h2_post_copy(self, relocated: Set[int]) -> None:
        """Reclassify/adjust H2 cards after the copy phase."""

    def pre_major_mark(self) -> None:
        """Reset H2 region live bits (start of marking)."""

    def major_h2_roots(self) -> List[int]:
        """Oids of H1 objects referenced from H2, via the H2 card table."""
        return []

    def select_h2_movers(
        self, live_oids: List[int], live_bytes: int, epoch: int
    ) -> "List[Tuple[HeapObject, str]]":
        """Choose (object, label) pairs to transfer to H2 this GC."""
        return []

    def after_marking(self, epoch: int) -> None:
        """Free dead H2 regions (end of marking)."""

    def assign_h2_addresses(
        self, movers: "List[Tuple[HeapObject, str]]", epoch: int
    ) -> "List[Tuple[HeapObject, str]]":
        """Pre-compaction for movers: pick region + address per object.

        Returns the movers that actually received an H2 address; the
        rest stay in H1 and compact with the stayers.
        """
        return movers

    def adjust_mover_references(
        self, movers: "List[Tuple[HeapObject, str]]", stayers: Set[int]
    ) -> None:
        """Record new cross-region and backward references for movers."""

    def adjust_h2_backward_refs(self) -> None:
        """Rewrite H2-resident backward references to new H1 locations."""

    def compact_movers(self, movers: "List[Tuple[HeapObject, str]]") -> None:
        """Write movers to the device through promotion buffers."""

    def on_major_complete(self, epoch: int) -> None:
        """End-of-major-GC hook: TeraHeap commits its durable epoch here."""

    # ==================================================================
    # Minor GC
    # ==================================================================
    def minor_gc(self) -> GCCycle:
        heap = self.heap
        cost = self.cost
        eng_cfg = self.config.engine
        # Hot columns of the object store: the trace/copy loops below run
        # over raw oids and these flat arrays instead of object handles.
        st = self.store
        space_arr = st.space
        epoch_arr = st.mark_epoch
        refs_arr = st.refs
        size_arr = st.size
        sf_arr = st.scan_factor
        age_arr = st.age
        addr_arr = st.address
        visit_cost = cost.gc_visit_cost
        ref_cost = cost.gc_ref_cost
        start = self.clock.now
        with self.clock.context(Bucket.MINOR_GC):
            epoch = self.next_epoch()
            self.begin_parallel_cycle()
            self.clock.charge(cost.gc_pause_overhead)

            # --- Roots: explicit roots + dirty-card old objects + H2 ----
            bag = TaskBag()
            root_oids: List[int] = []
            root_scan = bag.batcher("minor-roots", "root", 128)
            for obj in self.roots:
                root_scan.add(cost.gc_root_scan_cost)
                if space_arr[obj.oid] <= SPACE_TO:
                    root_oids.append(obj.oid)
            root_scan.flush()
            scanned_cards: List[Tuple[int, List[int]]] = []
            card_work: Dict[int, float] = {}
            for card in heap.card_table.dirty_cards():
                lo, hi = heap.card_table.card_range(card)
                on_card = [
                    o.oid for o in heap.old.objects_overlapping(lo, hi)
                ]
                scanned_cards.append((card, on_card))
                work = 0.0
                for old_oid in on_card:
                    targets = refs_arr[old_oid]
                    work += visit_cost
                    work += ref_cost * len(targets)
                    for t in targets:
                        if space_arr[t] <= SPACE_TO:
                            root_oids.append(t)
                card_work[card] = work
            chunked_sweep(
                bag,
                "h1-cards",
                heap.card_table.num_cards,
                cost.card_check_cost,
                eng_cfg.card_chunk_cards,
                extra=card_work,
            )
            self._run_phase(bag, "minor-roots")
            root_oids.extend(self.minor_h2_roots())

            # --- Trace live young objects -------------------------------
            # Order-preserving DFS kernel: exact stack-pop order of the
            # old per-object traversal, because the scan batcher folds
            # per-visit costs into engine tasks *in visit order* and the
            # determinism digests gate on the resulting schedule.
            bag = TaskBag()
            scan = bag.batcher(
                "minor-scan", "scan", self.batch.scan_batch_objects
            )
            live_young: List[int] = []
            stack = [oid for oid in root_oids if space_arr[oid] <= SPACE_TO]
            while stack:
                oid = stack.pop()
                if epoch_arr[oid] >= epoch:
                    continue
                epoch_arr[oid] = epoch
                live_young.append(oid)
                targets = refs_arr[oid]
                scan.add(
                    visit_cost * sf_arr[oid] + ref_cost * len(targets)
                )
                for t in targets:
                    if space_arr[t] <= SPACE_TO and epoch_arr[t] < epoch:
                        stack.append(t)
                    # Old-gen and H2 targets are not traversed in a
                    # scavenge; H2 targets are additionally fenced.
            scan.flush()
            self._run_phase(bag, "minor-trace")

            # --- Copy phase ----------------------------------------------
            copy_bag = TaskBag()
            copier = copy_bag.batcher(
                "minor-copy", "copy", self.batch.copy_batch_objects
            )
            to_space = heap.survivor_to
            promote: List[int] = []
            survivors: List[int] = []
            planned_survivor_bytes = 0
            tenuring = self.config.tenuring_threshold
            for oid in live_young:
                age_arr[oid] += 1
                size = size_arr[oid]
                if (
                    age_arr[oid] < tenuring
                    and planned_survivor_bytes + size <= to_space.capacity
                ):
                    survivors.append(oid)
                    planned_survivor_bytes += size
                else:
                    promote.append(oid)
            if st.sum_sizes(promote) > heap.old.free:
                # Promotion failure: abandon the scavenge, caller runs a
                # full collection instead.  Root and trace work is already
                # charged; no copying happened yet.
                raise PromotionFailure()

            # Vectorized dead sweep: everything in eden/from not marked
            # this epoch is garbage.
            young_oids = np.concatenate(
                (heap.eden.oid_array(), heap.survivor_from.oid_array())
            )
            dead = young_oids[~st.live_mask(young_oids, epoch)]
            reclaimed = st.sum_sizes(dead)
            st.set_space_batch(dead, SPACE_FREED)

            heap.eden.reset()
            heap.survivor_from.reset()
            to_space.reset()
            copy_hook = (
                None
                if type(self).on_minor_copy
                is ParallelScavenge.on_minor_copy
                else self.on_minor_copy
            )
            relocated: Set[int] = set()
            handle = st.handle
            for oid in survivors:
                if not to_space.allocate(handle(oid)):
                    promote.append(oid)
                    continue
                copier.add(size_arr[oid] / cost.gc_copy_bw)
                relocated.add(oid)
                if copy_hook is not None:
                    copy_hook(handle(oid))
            promoted_bytes = 0
            for oid in promote:
                if not heap.old.allocate(handle(oid)):
                    copier.flush()
                    self._run_phase(copy_bag, "minor-copy")
                    raise PromotionFailure()
                copier.add(size_arr[oid] / cost.gc_copy_bw)
                promoted_bytes += size_arr[oid]
                relocated.add(oid)
                if copy_hook is not None:
                    copy_hook(handle(oid))
            heap.swap_survivors()
            copier.flush()
            self._run_phase(copy_bag, "minor-copy")

            # --- Card maintenance ---------------------------------------
            # Precise cleaning: a scanned card stays dirty only if its
            # objects still reference young objects; promoted objects that
            # reference young survivors dirty their new cards.
            for card, on_card in scanned_cards:
                # A scanned card stays dirty while any object overlapping
                # it still references a young object (scans re-trace the
                # full reference set of every overlapping object, so the
                # card itself is the right thing to keep dirty — marking
                # the first object's header card instead would lose
                # coverage when objects span card boundaries).
                if any(
                    space_arr[t] <= SPACE_TO
                    for old_oid in on_card
                    for t in refs_arr[old_oid]
                ):
                    continue
                heap.card_table.clear(card)
            for oid in promote:
                if any(space_arr[t] <= SPACE_TO for t in refs_arr[oid]):
                    heap.card_table.mark(addr_arr[oid])

            self.minor_h2_post_copy(relocated)

            duration = self.clock.now - start
            cycle = GCCycle(
                kind="minor",
                start_time=start,
                duration=duration,
                live_bytes=st.sum_sizes(live_young),
                reclaimed_bytes=reclaimed,
                promoted_bytes=promoted_bytes,
                old_occupancy_after=heap.old.occupancy,
            )
            self.apply_parallel_stats(cycle, self.config.gc_threads)
            self.stats.record(cycle)
            self.clock.record_event("minor_gc", duration)
            return cycle

    # ==================================================================
    # Major GC
    # ==================================================================
    def major_gc(self) -> GCCycle:
        heap = self.heap
        cost = self.cost
        eng_cfg = self.config.engine
        workers = self.major_workers()
        start = self.clock.now
        phases: Dict[str, float] = {}
        with self.clock.context(Bucket.MAJOR_GC):
            epoch = self.next_epoch()
            self.begin_parallel_cycle()
            self.clock.charge(cost.gc_pause_overhead)

            # ---------------- Phase 1: marking --------------------------
            t0 = self.clock.now
            with self.clock.sub_context("marking"):
                st = self.store
                space_arr = st.space
                epoch_arr = st.mark_epoch
                refs_arr = st.refs
                sf_arr = st.scan_factor
                visit_cost = cost.gc_visit_cost
                ref_cost = cost.gc_ref_cost
                handle = st.handle
                # Hook dispatch: hoisting the no-op defaults out of the
                # trace loop saves a handle lookup per visit; subclasses
                # that override (Panthera NVM charges, TeraHeap fences)
                # still see every object they used to.
                visit_hook = (
                    None
                    if type(self).on_mark_visit
                    is ParallelScavenge.on_mark_visit
                    else self.on_mark_visit
                )
                fwd_hook = (
                    None
                    if type(self).on_forward_reference
                    is ParallelScavenge.on_forward_reference
                    else self.on_forward_reference
                )
                bag = TaskBag()
                mark = bag.batcher(
                    "major-mark", "scan", self.batch.scan_batch_objects
                )
                self.pre_major_mark()
                stack: List[int] = []
                for obj in self.roots:
                    if obj.in_h1:
                        stack.append(obj.oid)
                    elif self.is_fenced(obj):
                        # Stack/static roots referencing H2 directly count
                        # as forward references: they pin the region.
                        self.on_forward_reference(obj)
                stack.extend(self.major_h2_roots())
                # Order-preserving DFS kernel over the store's columns:
                # identical stack-pop visit order (and therefore batch
                # boundaries and engine schedules) to the old per-object
                # traversal.  The fence check is inlined: H2/FREED codes
                # sort above every H1 code.
                live: List[int] = []
                while stack:
                    oid = stack.pop()
                    if epoch_arr[oid] >= epoch or space_arr[oid] > SPACE_OLD:
                        continue
                    epoch_arr[oid] = epoch
                    live.append(oid)
                    targets = refs_arr[oid]
                    mark.add(
                        visit_cost * sf_arr[oid] + ref_cost * len(targets)
                    )
                    if visit_hook is not None:
                        visit_hook(handle(oid))
                    for t in targets:
                        if space_arr[t] > SPACE_OLD:
                            # Fence: never cross from H1 into H2.
                            if fwd_hook is not None:
                                fwd_hook(handle(t))
                            continue
                        if epoch_arr[t] < epoch:
                            stack.append(t)
                mark.flush()
                self._run_phase(bag, "major-mark", workers=workers)
                live_bytes = st.sum_sizes(live)
                movers = self.select_h2_movers(live, live_bytes, epoch)
                self.after_marking(epoch)
            phases["marking"] = self.clock.now - t0

            # ---------------- Phase 2: pre-compaction -------------------
            t0 = self.clock.now
            with self.clock.sub_context("precompact"):
                # H2 placement runs first: a mover can be denied an H2
                # address (device full, degraded H2) and must then be
                # treated as a stayer, so the stayer set is only known
                # after placement.
                movers = self.assign_h2_addresses(movers, epoch)
                mover_ids = {obj.oid for obj, _ in movers}
                # Sliding compaction: preserve address order so the
                # stable prefix of long-lived data (e.g. the cached
                # partitions at the bottom of the old gen) is not
                # rewritten every major GC.  Rank by space code:
                # OLD first, then EDEN/FROM/TO.
                size_arr = st.size
                addr_arr = st.address
                fwd_addr_arr = st.forward_address
                fwd_space_arr = st.forward_space
                space_rank = _SPACE_RANK
                stayers = sorted(
                    (oid for oid in live if oid not in mover_ids),
                    key=lambda oid: (
                        space_rank[space_arr[oid]],
                        addr_arr[oid],
                    ),
                )
                bag = TaskBag()
                forward = bag.batcher(
                    "major-forward",
                    "precompact",
                    self.batch.precompact_batch_objects,
                )
                for _ in live:
                    forward.add(cost.gc_forward_cost)
                forward.flush()
                total_stay = st.sum_sizes(stayers)
                if total_stay > heap.old.capacity + heap.eden.capacity:
                    raise OutOfMemoryError(
                        "live data exceeds heap after full GC",
                        requested=total_stay,
                        available=heap.old.capacity + heap.eden.capacity,
                    )
                old_cursor = heap.old.base
                eden_cursor = heap.eden.base
                in_old: List[int] = []
                in_eden: List[int] = []
                old_end = heap.old.end
                for oid in stayers:
                    size = size_arr[oid]
                    if old_cursor + size <= old_end:
                        fwd_addr_arr[oid] = old_cursor
                        fwd_space_arr[oid] = SPACE_OLD
                        old_cursor += size
                        in_old.append(oid)
                    else:
                        fwd_addr_arr[oid] = eden_cursor
                        fwd_space_arr[oid] = SPACE_EDEN
                        eden_cursor += size
                        in_eden.append(oid)
                self._run_phase(bag, "major-precompact", workers=workers)
            phases["precompact"] = self.clock.now - t0

            # ---------------- Phase 3: pointer adjustment ---------------
            t0 = self.clock.now
            with self.clock.sub_context("adjust"):
                bag = TaskBag()
                adjust = bag.batcher(
                    "major-adjust", "scan", self.batch.scan_batch_objects
                )
                for oid in live:
                    adjust.add(visit_cost + ref_cost * len(refs_arr[oid]))
                adjust.flush()
                stayer_ids = set(stayers)
                # Backward-reference maintenance first: it reclassifies the
                # cards scanned at marking time, and the mover adjustments
                # that follow may dirty those same cards with *new*
                # backward references that must not be clobbered.
                self.adjust_h2_backward_refs()
                self.adjust_mover_references(movers, stayer_ids)
                self._run_phase(bag, "major-adjust", workers=workers)
            phases["adjust"] = self.clock.now - t0

            # ---------------- Phase 4: compaction ------------------------
            t0 = self.clock.now
            with self.clock.sub_context("compact"):
                bag = TaskBag()
                compact = bag.batcher(
                    "major-compact", "compact", self.batch.copy_batch_objects
                )
                move_hook = (
                    None
                    if type(self).on_compact_move
                    is ParallelScavenge.on_compact_move
                    else self.on_compact_move
                )
                copy_bw = cost.gc_copy_bw
                for oid in in_old:
                    fwd = fwd_addr_arr[oid]
                    moved = addr_arr[oid] != fwd
                    addr_arr[oid] = fwd
                    space_arr[oid] = SPACE_OLD
                    fwd_addr_arr[oid] = -1
                    fwd_space_arr[oid] = NO_SPACE
                    if moved:
                        compact.add(size_arr[oid] / copy_bw)
                        if move_hook is not None:
                            move_hook(handle(oid))
                for oid in in_eden:
                    fwd = fwd_addr_arr[oid]
                    moved = addr_arr[oid] != fwd
                    addr_arr[oid] = fwd
                    space_arr[oid] = SPACE_EDEN
                    fwd_addr_arr[oid] = -1
                    fwd_space_arr[oid] = NO_SPACE
                    if moved:
                        compact.add(size_arr[oid] / copy_bw)
                compact.flush()
                self._run_phase(bag, "major-compact", workers=workers)
                self.compact_movers(movers)

                # Install post-compaction space contents.  Dead sweeps are
                # vectorized: order does not matter for bulk space flips.
                for space in (
                    heap.eden,
                    heap.survivor_from,
                    heap.survivor_to,
                    heap.old,
                ):
                    oids = space.oid_array()
                    dead = oids[~st.live_mask(oids, epoch)]
                    st.set_space_batch(dead, SPACE_FREED)
                heap.eden.reset()
                heap.survivor_from.reset()
                heap.survivor_to.reset()
                heap.old.rebuild_after_compaction(
                    [handle(oid) for oid in in_old]
                )
                heap.eden.objects = [handle(oid) for oid in in_eden]
                heap.eden.top = (
                    addr_arr[in_eden[-1]] + size_arr[in_eden[-1]]
                    if in_eden
                    else heap.eden.base
                )
                # Card table: after a full GC only old objects referencing
                # (overflowed) eden objects need dirty cards.
                heap.card_table.clear_all()
                if in_eden:
                    for oid in in_old:
                        if any(
                            space_arr[t] <= SPACE_TO for t in refs_arr[oid]
                        ):
                            heap.card_table.mark(addr_arr[oid])
            phases["compact"] = self.clock.now - t0

            self.on_major_complete(epoch)
            duration = self.clock.now - start
            moved_bytes = sum(o.size for o, _ in movers)
            cycle = GCCycle(
                kind="major",
                start_time=start,
                duration=duration,
                live_bytes=live_bytes,
                moved_to_h2_bytes=moved_bytes,
                old_occupancy_after=heap.old.occupancy,
                phases=phases,
            )
            self.apply_parallel_stats(cycle, workers)
            self.stats.record(cycle)
            self.clock.record_event("major_gc", duration)
            return cycle


class ParallelScavengeJDK11(ParallelScavenge):
    """The optimised PS shipped with OpenJDK11 (Figure 8 baseline).

    jdk11's PS collects the old generation with parallel compaction
    (ParallelOld), which the paper's jdk8 configuration ran
    single-threaded; we model that as a small pool of old-gen workers.
    """

    name = "ps11"

    def major_workers(self) -> int:
        return min(self.config.gc_threads, 4)
