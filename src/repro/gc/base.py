"""Collector interface and GC statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class GCCycle:
    """One GC cycle's record, feeding Figures 7 and 11(b)."""

    kind: str  # "minor" | "major"
    start_time: float
    duration: float
    live_bytes: int = 0
    reclaimed_bytes: int = 0
    promoted_bytes: int = 0
    moved_to_h2_bytes: int = 0
    old_occupancy_after: float = 0.0
    #: major-GC phase durations: marking / precompact / adjust / compact
    phases: Dict[str, float] = field(default_factory=dict)

    # --- task-based parallel engine observability ----------------------
    #: configured GC worker threads for this cycle
    gc_threads: int = 1
    #: engine tasks executed across the cycle's parallel phases
    tasks_executed: int = 0
    #: successful work steals across the cycle
    steals: int = 0
    #: steals that crossed NUMA nodes (paid the remote premium)
    remote_steals: int = 0
    #: summed per-worker idle time (gap to the critical path)
    idle_seconds: float = 0.0
    #: critical path over mean active lane time (1.0 = balanced)
    imbalance: float = 1.0
    #: sum of raw task costs — what one worker would have executed
    parallel_serial_seconds: float = 0.0
    #: summed critical paths — the engine's schedule length (concurrent
    #: phases may hide part of this behind the mutator, see
    #: ``concurrent_hidden``)
    parallel_seconds: float = 0.0
    #: critical-path seconds hidden behind mutator overlap: concurrent
    #: marking work that raced ``Bucket.OTHER`` progress and charged
    #: nothing to the pause
    concurrent_hidden: float = 0.0
    #: the stop-the-world remark pause closing a concurrent marking
    #: cycle (G1 only; 0 for collectors without concurrent phases)
    remark_pause: float = 0.0
    worker_busy: List[float] = field(default_factory=list)
    worker_idle: List[float] = field(default_factory=list)
    worker_steals: List[int] = field(default_factory=list)
    #: per-phase engine stat records (PhaseExecution.stat_record dicts)
    engine_phases: List[Dict] = field(default_factory=list)
    #: batch-controller scale in effect while this cycle ran
    batch_scale: float = 1.0
    #: controller action taken after observing this cycle
    batch_action: str = "hold"

    @property
    def parallel_speedup(self) -> float:
        """Emergent speedup of this cycle's engine-scheduled work."""
        if self.parallel_seconds <= 0.0:
            return 1.0
        return self.parallel_serial_seconds / self.parallel_seconds


@dataclass
class GCStats:
    """Aggregated collector statistics."""

    cycles: List[GCCycle] = field(default_factory=list)

    def record(self, cycle: GCCycle) -> None:
        self.cycles.append(cycle)

    def count(self, kind: str) -> int:
        return sum(1 for c in self.cycles if c.kind == kind)

    def total_time(self, kind: str) -> float:
        return sum(c.duration for c in self.cycles if c.kind == kind)

    def mean_time(self, kind: str) -> float:
        n = self.count(kind)
        return self.total_time(kind) / n if n else 0.0

    def phase_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for cycle in self.cycles:
            for phase, duration in cycle.phases.items():
                totals[phase] = totals.get(phase, 0.0) + duration
        return totals

    # --- parallel-engine aggregates ------------------------------------
    def total_tasks(self, kind: str = "") -> int:
        return sum(
            c.tasks_executed
            for c in self.cycles
            if not kind or c.kind == kind
        )

    def total_steals(self, kind: str = "") -> int:
        return sum(
            c.steals for c in self.cycles if not kind or c.kind == kind
        )

    def total_remote_steals(self, kind: str = "") -> int:
        return sum(
            c.remote_steals
            for c in self.cycles
            if not kind or c.kind == kind
        )

    def batch_scale_series(self) -> List[float]:
        """Per-cycle batch-controller scale, in cycle order."""
        return [c.batch_scale for c in self.cycles]

    def batch_controller_summary(self) -> Dict[str, float]:
        """Controller trajectory: final/min scale and action counts."""
        scales = self.batch_scale_series()
        return {
            "final_scale": scales[-1] if scales else 1.0,
            "min_scale": min(scales) if scales else 1.0,
            "shrinks": sum(
                1 for c in self.cycles if c.batch_action == "shrink"
            ),
            "grows": sum(1 for c in self.cycles if c.batch_action == "grow"),
        }

    def total_concurrent_hidden(self, kind: str = "") -> float:
        """Marking seconds hidden behind the mutator across cycles."""
        return sum(
            c.concurrent_hidden
            for c in self.cycles
            if not kind or c.kind == kind
        )

    def total_remark_pause(self, kind: str = "") -> float:
        return sum(
            c.remark_pause
            for c in self.cycles
            if not kind or c.kind == kind
        )

    def total_idle(self, kind: str = "") -> float:
        return sum(
            c.idle_seconds
            for c in self.cycles
            if not kind or c.kind == kind
        )

    def mean_imbalance(self, kind: str = "") -> float:
        """Parallel-time-weighted mean imbalance over cycles with tasks."""
        weight = 0.0
        acc = 0.0
        for c in self.cycles:
            if (kind and c.kind != kind) or c.parallel_seconds <= 0.0:
                continue
            acc += c.imbalance * c.parallel_seconds
            weight += c.parallel_seconds
        return acc / weight if weight > 0.0 else 1.0

    def parallel_efficiency(self, kind: str = "") -> float:
        """serial / (threads * parallel) over the engine-scheduled work."""
        serial = 0.0
        bound = 0.0
        for c in self.cycles:
            if kind and c.kind != kind:
                continue
            serial += c.parallel_serial_seconds
            bound += c.gc_threads * c.parallel_seconds
        return serial / bound if bound > 0.0 else 1.0

    @property
    def minor_count(self) -> int:
        return self.count("minor")

    @property
    def major_count(self) -> int:
        return self.count("major")


class Collector:
    """Base collector: subclasses implement ``minor_gc`` and ``major_gc``.

    The VM calls ``minor_gc`` when eden fills and ``major_gc`` when the
    heap cannot satisfy promotion or allocation.
    """

    name = "collector"

    def __init__(self) -> None:
        from ..heap.store import get_store

        self.stats = GCStats()
        #: the struct-of-arrays store backing this VM's objects; trace
        #: kernels index its flat columns instead of chasing handles.
        #: Defaults to the process-wide store; a JavaVM built with a
        #: private store re-attaches this right after construction.
        self.store = get_store()
        self.mark_epoch = 0
        #: engine phase executions of the in-flight cycle
        self._cycle_execs: list = []
        #: adaptive batch-size controller; collectors that schedule on
        #: the engine install a BatchController here
        self.batch = None

    def next_epoch(self) -> int:
        self.mark_epoch += 1
        return self.mark_epoch

    # -- parallel-engine plumbing --------------------------------------
    def begin_parallel_cycle(self) -> None:
        self._cycle_execs = []

    def note_execution(self, execution) -> None:
        self._cycle_execs.append(execution)

    def apply_parallel_stats(self, cycle: GCCycle, workers: int) -> None:
        """Fold the cycle's engine executions into its GCCycle record."""
        from .engine import summarize_executions

        summary = summarize_executions(self._cycle_execs, workers)
        cycle.gc_threads = workers
        cycle.tasks_executed = summary.tasks
        cycle.steals = summary.steals
        cycle.remote_steals = summary.remote_steals
        cycle.idle_seconds = summary.idle_seconds
        cycle.imbalance = summary.imbalance
        cycle.parallel_serial_seconds = summary.serial_seconds
        cycle.parallel_seconds = summary.parallel_seconds
        cycle.concurrent_hidden = summary.hidden_seconds
        cycle.worker_busy = summary.worker_busy
        cycle.worker_idle = summary.worker_idle
        cycle.worker_steals = summary.worker_steals
        cycle.engine_phases = [e.stat_record() for e in self._cycle_execs]
        if self.batch is not None:
            # Record the scale this cycle ran under, then feed the cycle
            # back so the next one can adapt.
            cycle.batch_scale = self.batch.scale
            cycle.batch_action = self.batch.observe(summary)
        self._cycle_execs = []

    # -- interface ------------------------------------------------------
    def minor_gc(self) -> GCCycle:  # pragma: no cover - interface
        raise NotImplementedError

    def major_gc(self) -> GCCycle:  # pragma: no cover - interface
        raise NotImplementedError
