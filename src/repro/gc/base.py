"""Collector interface and GC statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class GCCycle:
    """One GC cycle's record, feeding Figures 7 and 11(b)."""

    kind: str  # "minor" | "major"
    start_time: float
    duration: float
    live_bytes: int = 0
    reclaimed_bytes: int = 0
    promoted_bytes: int = 0
    moved_to_h2_bytes: int = 0
    old_occupancy_after: float = 0.0
    #: major-GC phase durations: marking / precompact / adjust / compact
    phases: Dict[str, float] = field(default_factory=dict)


@dataclass
class GCStats:
    """Aggregated collector statistics."""

    cycles: List[GCCycle] = field(default_factory=list)

    def record(self, cycle: GCCycle) -> None:
        self.cycles.append(cycle)

    def count(self, kind: str) -> int:
        return sum(1 for c in self.cycles if c.kind == kind)

    def total_time(self, kind: str) -> float:
        return sum(c.duration for c in self.cycles if c.kind == kind)

    def mean_time(self, kind: str) -> float:
        n = self.count(kind)
        return self.total_time(kind) / n if n else 0.0

    def phase_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for cycle in self.cycles:
            for phase, duration in cycle.phases.items():
                totals[phase] = totals.get(phase, 0.0) + duration
        return totals

    @property
    def minor_count(self) -> int:
        return self.count("minor")

    @property
    def major_count(self) -> int:
        return self.count("major")


class Collector:
    """Base collector: subclasses implement ``minor_gc`` and ``major_gc``.

    The VM calls ``minor_gc`` when eden fills and ``major_gc`` when the
    heap cannot satisfy promotion or allocation.
    """

    name = "collector"

    def __init__(self) -> None:
        self.stats = GCStats()
        self.mark_epoch = 0

    def next_epoch(self) -> int:
        self.mark_epoch += 1
        return self.mark_epoch

    # -- interface ------------------------------------------------------
    def minor_gc(self) -> GCCycle:  # pragma: no cover - interface
        raise NotImplementedError

    def major_gc(self) -> GCCycle:  # pragma: no cover - interface
        raise NotImplementedError
