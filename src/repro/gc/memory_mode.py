"""Spark-MO baseline: the whole heap on NVM in Memory mode (Section 7.5).

Intel Optane Memory mode makes NVM the main memory with DRAM acting as a
hardware-managed, placement-agnostic cache.  The JVM heap — including the
young generation — lands on NVM, so the collector pays NVM latency on GC
scans and copies whenever the DRAM cache misses.  The paper measures
minor GC +36% vs Spark-SD and 5.3x/11.8x more NVM reads/writes than
TeraHeap — the price of leaving placement to the memory controller.
"""

from __future__ import annotations

from ..clock import Clock
from ..config import VMConfig
from ..devices.base import AccessPattern
from ..devices.nvm import NVMMemoryMode
from ..heap.heap import ManagedHeap
from ..heap.object_model import HeapObject
from ..heap.roots import RootSet
from .parallel_scavenge import ParallelScavenge

#: bytes a marking visit touches (header + reference fields)
MARK_TOUCH_BYTES = 64


class MemoryModeCollector(ParallelScavenge):
    """PS with every heap access blended through the NVM memory-mode cache."""

    name = "ps-memmode"

    def __init__(
        self,
        heap: ManagedHeap,
        roots: RootSet,
        clock: Clock,
        config: VMConfig,
        device: NVMMemoryMode,
    ):
        super().__init__(heap, roots, clock, config)
        self.device = device

    def _refresh_working_set(self) -> None:
        # The DRAM cache competes with everything resident on the heap.
        self.device.working_set = self.heap.used()

    def on_mark_visit(self, obj: HeapObject) -> None:
        # Pointer chasing through every record of the coarse object pays
        # the blended latency per paper-scale record.
        records = max(1, obj.size // 2)
        self.device.gc_read(obj.size // 4, requests=records)

    def on_compact_move(self, obj: HeapObject) -> None:
        self.device.gc_read(obj.size, AccessPattern.SEQUENTIAL)
        self.device.gc_write(obj.size, AccessPattern.SEQUENTIAL)

    def on_minor_copy(self, obj: HeapObject) -> None:
        # Young objects live on NVM too: scavenge copies pay the blend.
        self.device.gc_read(obj.size)
        self.device.gc_write(obj.size)

    def minor_gc(self):
        self._refresh_working_set()
        return super().minor_gc()

    def major_gc(self):
        self._refresh_working_set()
        return super().major_gc()
