"""Panthera baseline: the managed heap extended over DRAM + NVM.

Panthera (Wang et al., PLDI '19) places the young generation in DRAM and
splits the old generation between DRAM and NVM, pretenuring large
long-lived objects straight to the NVM component.  Crucially — and this is
why TeraHeap beats it by 7-69% (Section 7.5) — *every major GC still scans
and compacts all old-generation objects, including the NVM-resident
ones*, paying NVM latency per object, and mutators read/update
NVM-resident data directly.
"""

from __future__ import annotations

from typing import Optional

from ..clock import Clock
from ..config import VMConfig
from ..devices.base import AccessPattern, Device
from ..heap.heap import ManagedHeap
from ..heap.object_model import HeapObject, SpaceId
from ..heap.roots import RootSet
from .parallel_scavenge import ParallelScavenge

#: bytes a marking visit touches on NVM (header + reference fields)
MARK_TOUCH_BYTES = 64


class PantheraCollector(ParallelScavenge):
    """PS with the old generation split across DRAM and NVM."""

    name = "panthera"

    def __init__(
        self,
        heap: ManagedHeap,
        roots: RootSet,
        clock: Clock,
        config: VMConfig,
        nvm: Optional[Device] = None,
    ):
        super().__init__(heap, roots, clock, config)
        if config.panthera is None:
            raise ValueError("Panthera requires config.panthera")
        self.panthera = config.panthera
        self.nvm = nvm
        #: old-generation addresses at or beyond this sit on NVM
        self.nvm_boundary = heap.old.base + self.panthera.dram_old_size
        self.nvm_objects_scanned = 0
        self.nvm_objects_moved = 0

    # ------------------------------------------------------------------
    def on_nvm(self, obj: HeapObject) -> bool:
        return obj.space is SpaceId.OLD and obj.address >= self.nvm_boundary

    def on_mark_visit(self, obj: HeapObject) -> None:
        if self.nvm is not None and self.on_nvm(obj):
            # Marking chases headers and reference fields through every
            # record in the (coarse) simulated object, paying NVM latency
            # per paper-scale record — pointer chasing has no locality.
            records = max(1, obj.size // 2)
            self.nvm.read(
                obj.size // 4, AccessPattern.RANDOM, requests=records
            )
            self.nvm_objects_scanned += 1

    def on_compact_move(self, obj: HeapObject) -> None:
        if self.nvm is None:
            return
        src_nvm = obj.forward_address == -1 and self.on_nvm(obj)
        dst_nvm = obj.address >= self.nvm_boundary
        if dst_nvm or src_nvm:
            # Compaction traffic touching the NVM component.
            self.nvm.read(obj.size, AccessPattern.SEQUENTIAL)
            self.nvm.write(obj.size, AccessPattern.SEQUENTIAL)
            self.nvm_objects_moved += 1
