"""Deterministic simulated GC thread pool with work stealing.

Workers pull tasks from per-thread deques (owners from the front,
thieves from the back), steal from a seeded-RNG-chosen victim when their
own deque drains, and run a termination protocol once no work remains.
Time advances on the multi-lane clock: each worker has its own lane and
the mutator pause is the critical path, so thread-scaling behaviour —
speedup, load imbalance, steal and termination overhead — is an output
of the simulation instead of a ``threads ** 0.8`` assumption.

Two steal policies are modelled.  ``steal-one`` takes a single task off
the back of the victim's deque per steal.  ``steal-half`` — the real
Parallel Scavenge policy — transfers half the victim's deque in one
grab, paying a size-dependent transfer cost, so thieves re-arm with a
run of work instead of returning to the victim after every task.

The pool is block-partitioned over ``numa_nodes`` simulated NUMA nodes:
victim selection prefers deques on the thief's own node, and a steal
that does cross nodes pays the remote-access premium on top of the base
steal cost.

Determinism: the only randomness is victim selection, drawn from a
:class:`random.Random` seeded from ``VMConfig.engine.seed``.  Two runs
of the same workload produce byte-identical schedules and traces.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ...clock import Clock
from .tasks import GCTask


@dataclass
class WorkerStats:
    """One worker's accounting for a phase (or an aggregated cycle)."""

    index: int
    tasks: int = 0
    steals: int = 0
    #: steals whose victim lane lived on another NUMA node
    remote_steals: int = 0
    #: tasks acquired through stealing (> steals under steal-half)
    tasks_stolen: int = 0
    busy_seconds: float = 0.0
    steal_seconds: float = 0.0
    overhead_seconds: float = 0.0
    idle_seconds: float = 0.0

    @property
    def active_seconds(self) -> float:
        return self.busy_seconds + self.steal_seconds + self.overhead_seconds


@dataclass
class PhaseExecution:
    """Result of running one task bag on the engine."""

    phase: str
    workers: int
    tasks: int
    #: sum of raw task costs — what a single worker would execute
    serial_seconds: float
    #: max lane time — what the mutator pause was actually charged
    critical_path: float
    steals: int
    idle_seconds: float
    imbalance: float
    remote_steals: int = 0
    stolen_tasks: int = 0
    #: critical-path seconds hidden behind mutator overlap (concurrent
    #: phases only; stop-the-world phases leave this at 0)
    hidden_seconds: float = 0.0
    per_worker: List[WorkerStats] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        if self.critical_path <= 0.0:
            return 1.0
        return self.serial_seconds / self.critical_path

    @property
    def charged_seconds(self) -> float:
        """What the pause actually paid: critical path minus overlap."""
        return self.critical_path - self.hidden_seconds

    def stat_record(self) -> Dict[str, Any]:
        """Compact per-phase stats for trace exporters and CSVs."""
        return {
            "phase": self.phase,
            "workers": self.workers,
            "tasks": self.tasks,
            "steals": self.steals,
            "remote_steals": self.remote_steals,
            "serial_s": round(self.serial_seconds, 9),
            "critical_s": round(self.critical_path, 9),
            "hidden_s": round(self.hidden_seconds, 9),
            "idle_s": round(self.idle_seconds, 9),
            "imbalance": round(self.imbalance, 6),
        }


@dataclass
class ParallelCycleSummary:
    """Per-GC-cycle aggregate over all of the cycle's engine phases."""

    workers: int = 1
    tasks: int = 0
    steals: int = 0
    remote_steals: int = 0
    serial_seconds: float = 0.0
    parallel_seconds: float = 0.0
    #: summed concurrent overlap — critical-path time never charged
    hidden_seconds: float = 0.0
    idle_seconds: float = 0.0
    overhead_seconds: float = 0.0
    imbalance: float = 1.0
    worker_busy: List[float] = field(default_factory=list)
    worker_idle: List[float] = field(default_factory=list)
    worker_steals: List[int] = field(default_factory=list)


def summarize_executions(
    execs: Iterable[PhaseExecution], workers: int
) -> ParallelCycleSummary:
    """Fold a cycle's phase executions into one summary record."""
    execs = list(execs)
    summary = ParallelCycleSummary(workers=workers)
    lanes = max([workers] + [e.workers for e in execs])
    busy = [0.0] * lanes
    idle = [0.0] * lanes
    steals = [0] * lanes
    # Cycle-wide mean active lane time is per-phase-weighted: each phase
    # contributes its active time divided by *its own* worker count, so a
    # cycle mixing 1-worker majors with 4-worker minors does not divide
    # single-lane phases by the widest pool (which understated the mean
    # and overstated imbalance).
    mean_active = 0.0
    for ex in execs:
        summary.tasks += ex.tasks
        summary.steals += ex.steals
        summary.remote_steals += ex.remote_steals
        summary.serial_seconds += ex.serial_seconds
        summary.parallel_seconds += ex.critical_path
        summary.hidden_seconds += ex.hidden_seconds
        summary.idle_seconds += ex.idle_seconds
        phase_active = 0.0
        for ws in ex.per_worker:
            busy[ws.index] += ws.busy_seconds
            idle[ws.index] += ws.idle_seconds
            steals[ws.index] += ws.steals
            phase_active += ws.active_seconds
            summary.overhead_seconds += ws.overhead_seconds
        mean_active += phase_active / max(1, ex.workers)
    summary.worker_busy = busy
    summary.worker_idle = idle
    summary.worker_steals = steals
    if mean_active > 0.0 and summary.parallel_seconds > 0.0:
        # Summed critical paths over summed per-phase mean lane times.
        summary.imbalance = summary.parallel_seconds / mean_active
    return summary


class GCTaskEngine:
    """Simulated pool of GC worker threads over per-thread deques."""

    def __init__(
        self,
        clock: Clock,
        cost: Any,
        workers: int,
        seed: int,
        trace: bool = False,
        name: str = "gc",
        steal_policy: str = "steal-one",
        numa_nodes: int = 1,
    ):
        if workers < 1:
            raise ValueError(f"engine needs >=1 worker, got {workers}")
        if steal_policy not in ("steal-one", "steal-half"):
            raise ValueError(f"unknown steal policy {steal_policy!r}")
        if numa_nodes < 1:
            raise ValueError(f"engine needs >=1 NUMA node, got {numa_nodes}")
        self.clock = clock
        self.cost = cost
        self.workers = workers
        self.rng = random.Random(seed)
        self.trace = trace
        self.name = name
        self.steal_policy = steal_policy
        self.numa_nodes = min(numa_nodes, workers)
        #: Chrome-trace (chrome://tracing) events, populated when tracing
        self.trace_events: List[Dict[str, Any]] = []
        #: per-phase stat records, in execution order (chrome-trace
        #: ``otherData`` and pause-phase attribution)
        self.phase_log: List[Dict[str, Any]] = []
        # Lifetime counters (across all phases run on this engine).
        self.total_tasks = 0
        self.total_steals = 0
        self.total_remote_steals = 0
        self.total_phases = 0
        self.total_hidden_seconds = 0.0

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Iterable[GCTask],
        phase: str,
        workers: Optional[int] = None,
        concurrent_budget: Optional[float] = None,
    ) -> PhaseExecution:
        """Execute ``tasks`` on ``workers`` lanes; charge the critical path.

        The caller's current bucket/sub-bucket context receives the
        charge, exactly like a scalar ``clock.charge`` would.  An
        explicit ``workers=`` request is clamped to the engine's pool
        size: a phase can narrow its parallelism (stripe ownership,
        single-threaded old gen) but never run on more lanes than the
        engine has threads.

        With ``concurrent_budget`` set, the phase runs on a *concurrent*
        lane set (:meth:`Clock.concurrent`): its critical path races the
        given seconds of already-elapsed mutator time, only the overrun
        is charged to the pause, and the hidden part is reported as
        ``PhaseExecution.hidden_seconds``.
        """
        task_list = list(tasks)
        requested = (
            self.workers if workers is None else min(workers, self.workers)
        )
        n = max(1, min(requested, max(1, len(task_list))))
        if not task_list:
            return PhaseExecution(
                phase=phase,
                workers=n,
                tasks=0,
                serial_seconds=0.0,
                critical_path=0.0,
                steals=0,
                idle_seconds=0.0,
                imbalance=1.0,
            )

        # Distribute: affinity-carrying tasks go to their owner's deque
        # (stripe ownership); the rest round-robin.
        deques: List[deque] = [deque() for _ in range(n)]
        rr = 0
        for task in task_list:
            if task.affinity is not None:
                deques[task.affinity % n].append(task)
            else:
                deques[rr % n].append(task)
                rr += 1

        stats = [WorkerStats(i) for i in range(n)]
        dispatch = self.cost.gc_task_dispatch_cost
        steal_cost = self.cost.gc_steal_cost
        transfer_cost = getattr(self.cost, "gc_steal_transfer_cost", 0.0)
        remote_premium = getattr(self.cost, "gc_numa_remote_premium", 0.0)
        steal_half = self.steal_policy == "steal-half"
        t0 = self.clock.now
        if concurrent_budget is None:
            region = self.clock.parallel(n, nodes=self.numa_nodes)
        else:
            region = self.clock.concurrent(
                n, nodes=self.numa_nodes, budget=concurrent_budget
            )
        with region as lanes:
            remaining = len(task_list)
            while remaining:
                w = min(range(n), key=lambda i: (lanes.lane_time(i), i))
                if not deques[w]:
                    victims = [i for i in range(n) if deques[i]]
                    # NUMA affinity: steal from the thief's own node when
                    # any same-node deque has work; go remote otherwise.
                    local = [
                        i
                        for i in victims
                        if lanes.node_of(i) == lanes.node_of(w)
                    ]
                    pool = local or victims
                    victim = pool[self.rng.randrange(len(pool))]
                    grab = (
                        max(1, len(deques[victim]) // 2) if steal_half else 1
                    )
                    for _ in range(grab):
                        deques[w].append(deques[victim].pop())
                    charge = steal_cost + (grab - 1) * transfer_cost
                    if lanes.node_of(victim) != lanes.node_of(w):
                        charge += remote_premium
                        stats[w].remote_steals += 1
                    lanes.advance(w, charge, kind="steal")
                    stats[w].steals += 1
                    stats[w].tasks_stolen += grab
                task = deques[w].popleft()
                start = lanes.lane_time(w)
                lanes.advance(w, dispatch, kind="overhead")
                lanes.advance(w, task.cost, kind="busy")
                stats[w].tasks += 1
                remaining -= 1
                if self.trace:
                    self.trace_events.append(
                        {
                            "name": task.name,
                            "cat": phase,
                            "ph": "X",
                            "ts": round((t0 + start) * 1e6, 3),
                            "dur": round(
                                (lanes.lane_time(w) - start) * 1e6, 3
                            ),
                            "pid": 1,
                            "tid": w,
                            "args": {"kind": task.kind},
                        }
                    )
            if n > 1:
                # Termination protocol: every worker spins/offers before
                # the pause can end (single-threaded GCs skip it).
                for i in range(n):
                    lanes.advance(
                        i, self.cost.gc_termination_cost, kind="overhead"
                    )
            critical = lanes.critical_path
            for i in range(n):
                stats[i].busy_seconds = lanes.busy[i]
                stats[i].steal_seconds = lanes.steal[i]
                stats[i].overhead_seconds = lanes.overhead[i]
                stats[i].idle_seconds = lanes.idle(i)
            imbalance = lanes.imbalance
            total_idle = lanes.total_idle

        execution = PhaseExecution(
            phase=phase,
            workers=n,
            tasks=len(task_list),
            serial_seconds=sum(t.cost for t in task_list),
            critical_path=critical,
            steals=sum(s.steals for s in stats),
            idle_seconds=total_idle,
            imbalance=imbalance,
            remote_steals=sum(s.remote_steals for s in stats),
            stolen_tasks=sum(s.tasks_stolen for s in stats),
            hidden_seconds=lanes.hidden,
            per_worker=stats,
        )
        self.total_tasks += execution.tasks
        self.total_steals += execution.steals
        self.total_remote_steals += execution.remote_steals
        self.total_phases += 1
        self.total_hidden_seconds += execution.hidden_seconds
        self.phase_log.append(execution.stat_record())
        return execution
