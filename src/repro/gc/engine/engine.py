"""Deterministic simulated GC thread pool with work stealing.

Workers pull tasks from per-thread deques (owners from the front,
thieves from the back), steal from a seeded-RNG-chosen victim when their
own deque drains, and run a termination protocol once no work remains.
Time advances on the multi-lane clock: each worker has its own lane and
the mutator pause is the critical path, so thread-scaling behaviour —
speedup, load imbalance, steal and termination overhead — is an output
of the simulation instead of a ``threads ** 0.8`` assumption.

Determinism: the only randomness is victim selection, drawn from a
:class:`random.Random` seeded from ``VMConfig.engine.seed``.  Two runs
of the same workload produce byte-identical schedules and traces.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ...clock import Clock
from .tasks import GCTask


@dataclass
class WorkerStats:
    """One worker's accounting for a phase (or an aggregated cycle)."""

    index: int
    tasks: int = 0
    steals: int = 0
    busy_seconds: float = 0.0
    steal_seconds: float = 0.0
    overhead_seconds: float = 0.0
    idle_seconds: float = 0.0

    @property
    def active_seconds(self) -> float:
        return self.busy_seconds + self.steal_seconds + self.overhead_seconds


@dataclass
class PhaseExecution:
    """Result of running one task bag on the engine."""

    phase: str
    workers: int
    tasks: int
    #: sum of raw task costs — what a single worker would execute
    serial_seconds: float
    #: max lane time — what the mutator pause was actually charged
    critical_path: float
    steals: int
    idle_seconds: float
    imbalance: float
    per_worker: List[WorkerStats] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        if self.critical_path <= 0.0:
            return 1.0
        return self.serial_seconds / self.critical_path


@dataclass
class ParallelCycleSummary:
    """Per-GC-cycle aggregate over all of the cycle's engine phases."""

    workers: int = 1
    tasks: int = 0
    steals: int = 0
    serial_seconds: float = 0.0
    parallel_seconds: float = 0.0
    idle_seconds: float = 0.0
    imbalance: float = 1.0
    worker_busy: List[float] = field(default_factory=list)
    worker_idle: List[float] = field(default_factory=list)
    worker_steals: List[int] = field(default_factory=list)


def summarize_executions(
    execs: Iterable[PhaseExecution], workers: int
) -> ParallelCycleSummary:
    """Fold a cycle's phase executions into one summary record."""
    execs = list(execs)
    summary = ParallelCycleSummary(workers=workers)
    lanes = max([workers] + [e.workers for e in execs])
    busy = [0.0] * lanes
    idle = [0.0] * lanes
    steals = [0] * lanes
    active_total = 0.0
    for ex in execs:
        summary.tasks += ex.tasks
        summary.steals += ex.steals
        summary.serial_seconds += ex.serial_seconds
        summary.parallel_seconds += ex.critical_path
        summary.idle_seconds += ex.idle_seconds
        for ws in ex.per_worker:
            busy[ws.index] += ws.busy_seconds
            idle[ws.index] += ws.idle_seconds
            steals[ws.index] += ws.steals
            active_total += ws.active_seconds
    summary.worker_busy = busy
    summary.worker_idle = idle
    summary.worker_steals = steals
    if active_total > 0.0 and summary.parallel_seconds > 0.0:
        # Critical path over mean active lane time, cycle-wide.
        summary.imbalance = summary.parallel_seconds / (active_total / lanes)
    return summary


class GCTaskEngine:
    """Simulated pool of GC worker threads over per-thread deques."""

    def __init__(
        self,
        clock: Clock,
        cost: Any,
        workers: int,
        seed: int,
        trace: bool = False,
        name: str = "gc",
    ):
        if workers < 1:
            raise ValueError(f"engine needs >=1 worker, got {workers}")
        self.clock = clock
        self.cost = cost
        self.workers = workers
        self.rng = random.Random(seed)
        self.trace = trace
        self.name = name
        #: Chrome-trace (chrome://tracing) events, populated when tracing
        self.trace_events: List[Dict[str, Any]] = []
        # Lifetime counters (across all phases run on this engine).
        self.total_tasks = 0
        self.total_steals = 0
        self.total_phases = 0

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Iterable[GCTask],
        phase: str,
        workers: Optional[int] = None,
    ) -> PhaseExecution:
        """Execute ``tasks`` on ``workers`` lanes; charge the critical path.

        The caller's current bucket/sub-bucket context receives the
        charge, exactly like a scalar ``clock.charge`` would.
        """
        task_list = list(tasks)
        n = max(1, min(self.workers if workers is None else workers,
                       max(1, len(task_list))))
        if not task_list:
            return PhaseExecution(
                phase=phase,
                workers=n,
                tasks=0,
                serial_seconds=0.0,
                critical_path=0.0,
                steals=0,
                idle_seconds=0.0,
                imbalance=1.0,
            )

        # Distribute: affinity-carrying tasks go to their owner's deque
        # (stripe ownership); the rest round-robin.
        deques: List[deque] = [deque() for _ in range(n)]
        rr = 0
        for task in task_list:
            if task.affinity is not None:
                deques[task.affinity % n].append(task)
            else:
                deques[rr % n].append(task)
                rr += 1

        stats = [WorkerStats(i) for i in range(n)]
        dispatch = self.cost.gc_task_dispatch_cost
        steal_cost = self.cost.gc_steal_cost
        t0 = self.clock.now
        with self.clock.parallel(n) as lanes:
            remaining = len(task_list)
            while remaining:
                w = min(range(n), key=lambda i: (lanes.lane_time(i), i))
                if deques[w]:
                    task = deques[w].popleft()
                else:
                    victims = [i for i in range(n) if deques[i]]
                    victim = victims[self.rng.randrange(len(victims))]
                    task = deques[victim].pop()
                    lanes.advance(w, steal_cost, kind="steal")
                    stats[w].steals += 1
                start = lanes.lane_time(w)
                lanes.advance(w, dispatch, kind="overhead")
                lanes.advance(w, task.cost, kind="busy")
                stats[w].tasks += 1
                remaining -= 1
                if self.trace:
                    self.trace_events.append(
                        {
                            "name": task.name,
                            "cat": phase,
                            "ph": "X",
                            "ts": round((t0 + start) * 1e6, 3),
                            "dur": round(
                                (lanes.lane_time(w) - start) * 1e6, 3
                            ),
                            "pid": 1,
                            "tid": w,
                            "args": {"kind": task.kind},
                        }
                    )
            if n > 1:
                # Termination protocol: every worker spins/offers before
                # the pause can end (single-threaded GCs skip it).
                for i in range(n):
                    lanes.advance(
                        i, self.cost.gc_termination_cost, kind="overhead"
                    )
            critical = lanes.critical_path
            for i in range(n):
                stats[i].busy_seconds = lanes.busy[i]
                stats[i].steal_seconds = lanes.steal[i]
                stats[i].overhead_seconds = lanes.overhead[i]
                stats[i].idle_seconds = lanes.idle(i)
            imbalance = lanes.imbalance
            total_idle = lanes.total_idle

        execution = PhaseExecution(
            phase=phase,
            workers=n,
            tasks=len(task_list),
            serial_seconds=sum(t.cost for t in task_list),
            critical_path=critical,
            steals=sum(s.steals for s in stats),
            idle_seconds=total_idle,
            imbalance=imbalance,
            per_worker=stats,
        )
        self.total_tasks += execution.tasks
        self.total_steals += execution.steals
        self.total_phases += 1
        return execution
