"""Per-cycle feedback controller for GC task granularity.

Static batch sizes are a compromise: chunky batches keep dispatch
overhead low but balance poorly across wide pools, fine batches balance
well but tax every task with claim overhead.  The controller closes the
loop: after each GC cycle it inspects the cycle's engine summary and
multiplies the configured scan/copy/precompact batch sizes by a scale in
``[min_batch_scale, 1.0]`` — halving it when the cycle's imbalance
exceeded the shrink threshold, doubling it back when dispatch overhead
dominated the scheduled work.  The configured sizes are the ceiling; the
controller only ever refines below them.

The controller is pure feedback over deterministic summaries, so runs
stay byte-identical: same workload, same seed, same scale trajectory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...config import GCEngineConfig
    from .engine import ParallelCycleSummary


class BatchController:
    """Adapts engine batch sizes from per-cycle scheduling feedback.

    When ``adaptive_batching`` is off the controller is inert: the scale
    is pinned at 1.0 and the properties return the configured sizes, so
    collectors can read batch sizes through it unconditionally.
    """

    def __init__(self, config: "GCEngineConfig"):
        self.config = config
        self.scale = 1.0
        self.shrinks = 0
        self.grows = 0
        self.last_action = "hold"

    @property
    def enabled(self) -> bool:
        return self.config.adaptive_batching

    def _scaled(self, base: int) -> int:
        return max(1, round(base * self.scale))

    @property
    def scan_batch_objects(self) -> int:
        return self._scaled(self.config.scan_batch_objects)

    @property
    def copy_batch_objects(self) -> int:
        return self._scaled(self.config.copy_batch_objects)

    @property
    def precompact_batch_objects(self) -> int:
        return self._scaled(self.config.precompact_batch_objects)

    # ------------------------------------------------------------------
    def observe(self, summary: "ParallelCycleSummary") -> str:
        """Feed one finished cycle's summary; returns the action taken.

        Actions: ``"shrink"`` (imbalance above threshold — halve the
        scale), ``"grow"`` (dispatch overhead dominates — double it back
        toward 1.0), ``"hold"`` (neither, or the controller is off).
        """
        cfg = self.config
        if (
            not self.enabled
            or summary.parallel_seconds <= 0.0
            or summary.tasks == 0
        ):
            self.last_action = "hold"
            return self.last_action
        scheduled = summary.serial_seconds + summary.overhead_seconds
        overhead_share = (
            summary.overhead_seconds / scheduled if scheduled > 0.0 else 0.0
        )
        if (
            summary.workers > 1
            and summary.imbalance > cfg.imbalance_shrink_threshold
            and self.scale > cfg.min_batch_scale
        ):
            self.scale = max(cfg.min_batch_scale, self.scale / 2.0)
            self.shrinks += 1
            self.last_action = "shrink"
        elif overhead_share > cfg.overhead_grow_threshold and self.scale < 1.0:
            self.scale = min(1.0, self.scale * 2.0)
            self.grows += 1
            self.last_action = "grow"
        else:
            self.last_action = "hold"
        return self.last_action
