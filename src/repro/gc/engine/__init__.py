"""Task-based parallel GC engine: simulated worker threads over deques.

The engine replaces the old scalar ``parallel_factor(threads)`` fudge.
Collectors decompose each GC phase into a :class:`TaskBag` of costed
tasks, and :class:`GCTaskEngine` schedules them over simulated worker
lanes with seeded work stealing; the pause charged to the mutator is the
critical path over the lanes.
"""

from .adaptive import BatchController
from .engine import (
    GCTaskEngine,
    ParallelCycleSummary,
    PhaseExecution,
    WorkerStats,
    summarize_executions,
)
from .tasks import BatchBuilder, GCTask, TaskBag, chunked_sweep

__all__ = [
    "BatchBuilder",
    "BatchController",
    "GCTask",
    "GCTaskEngine",
    "ParallelCycleSummary",
    "PhaseExecution",
    "TaskBag",
    "WorkerStats",
    "chunked_sweep",
    "summarize_executions",
]
