"""GC task decomposition: the units of work GC workers claim.

A GC cycle is broken into :class:`GCTask` items — root-set partitions,
dirty-card chunks, H2 card slices, object-scan batches, copy batches and
compaction regions — each carrying a cost computed from the existing
cost model.  The decomposition mirrors Parallel Scavenge's task queues
(``GCTaskQueue``) and TeraHeap's striped H2 card table: tasks that model
stripe-owned work carry an *affinity* so they start on the owning
worker's deque and only migrate by stealing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass
class GCTask:
    """One schedulable unit of GC work."""

    name: str
    cost: float  # simulated seconds of CPU work
    kind: str = "scan"
    #: preferred worker (stripe/chunk ownership); ``None`` = round-robin
    affinity: Optional[int] = None


class TaskBag:
    """Accumulates the tasks of one parallel GC phase."""

    def __init__(self) -> None:
        self.tasks: List[GCTask] = []

    def add(
        self,
        name: str,
        cost: float,
        kind: str = "scan",
        affinity: Optional[int] = None,
    ) -> None:
        if cost < 0:
            raise ValueError(f"task {name!r} has negative cost {cost}")
        self.tasks.append(GCTask(name, cost, kind, affinity))

    def batcher(
        self, name: str, kind: str, batch_items: int
    ) -> "BatchBuilder":
        return BatchBuilder(self, name, kind, batch_items)

    @property
    def serial_seconds(self) -> float:
        return sum(t.cost for t in self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __bool__(self) -> bool:
        return bool(self.tasks)

    def __iter__(self) -> Iterator[GCTask]:
        return iter(self.tasks)


class BatchBuilder:
    """Folds per-object costs into fixed-size batch tasks.

    Object scanning and copying are too fine-grained to schedule one
    object at a time; real collectors claim them in chunks (promotion
    buffers, PLAB-sized copy batches).  ``add`` accumulates cost and
    emits one task every ``batch_items`` objects; call ``flush`` at the
    end of the phase for the partial tail batch.
    """

    def __init__(self, bag: TaskBag, name: str, kind: str, batch_items: int):
        if batch_items < 1:
            raise ValueError(f"batch size must be >=1, got {batch_items}")
        self.bag = bag
        self.name = name
        self.kind = kind
        self.batch_items = batch_items
        self._cost = 0.0
        self._count = 0
        self._index = 0

    def add(self, cost: float) -> None:
        self._cost += cost
        self._count += 1
        if self._count >= self.batch_items:
            self.flush()

    def flush(self) -> None:
        if self._count == 0:
            return
        self.bag.add(f"{self.name}-{self._index}", self._cost, self.kind)
        self._index += 1
        self._cost = 0.0
        self._count = 0


def chunked_sweep(
    bag: TaskBag,
    name: str,
    num_items: int,
    per_item_cost: float,
    chunk_items: int,
    kind: str = "cards",
    extra: Optional[Dict[int, float]] = None,
) -> None:
    """Decompose a conceptual-table sweep into chunk tasks.

    One task per ``chunk_items`` entries, each costing the flat per-entry
    sweep plus any ``extra`` cost attributed to entries in that chunk
    (e.g. scanning the objects of a dirty card).  Chunk index doubles as
    worker affinity, modelling striped table ownership.
    """
    if num_items <= 0:
        return
    if chunk_items < 1:
        raise ValueError(f"chunk size must be >=1, got {chunk_items}")
    extra_by_chunk: Dict[int, float] = {}
    if extra:
        for idx, cost in extra.items():
            cid = idx // chunk_items
            extra_by_chunk[cid] = extra_by_chunk.get(cid, 0.0) + cost
    num_chunks = (num_items + chunk_items - 1) // chunk_items
    for cid in range(num_chunks):
        items = min(chunk_items, num_items - cid * chunk_items)
        cost = items * per_item_cost + extra_by_chunk.get(cid, 0.0)
        bag.add(f"{name}-{cid}", cost, kind=kind, affinity=cid)
