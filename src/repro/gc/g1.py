"""Garbage-First (G1) collector model — the OpenJDK17 baseline of Figure 8.

G1 divides the heap into equal regions and collects the regions with the
least live data first.  Young collections evacuate eden/survivor regions;
mixed collections additionally evacuate the emptiest old regions after a
(mostly concurrent) marking cycle.

Humongous objects — larger than half a region — are allocated in
contiguous runs of dedicated regions, one object per run, and are never
moved.  The slack between the object's end and its last region's end is
wasted, and the contiguity requirement fragments the region space; the
paper observes SVM, BC and RL failing with OOM for exactly this reason
(Section 7.1).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set

from ..clock import Bucket, Clock
from ..config import VMConfig
from ..errors import OutOfMemoryError
from ..heap.heap import H1_BASE
from ..heap.object_model import HeapObject, SpaceId
from ..heap.roots import RootSet
from ..heap.store import SPACE_EDEN, SPACE_FREED, SPACE_OLD, SPACE_TO
from .base import Collector, GCCycle
from .engine import BatchController, GCTaskEngine, PhaseExecution, TaskBag


class RegionState(enum.Enum):
    FREE = "free"
    EDEN = "eden"
    SURVIVOR = "survivor"
    OLD = "old"
    HUMONGOUS_START = "humongous_start"
    HUMONGOUS_CONT = "humongous_cont"

_YOUNG_STATES = (RegionState.EDEN, RegionState.SURVIVOR)


class G1Region:
    """One G1 heap region."""

    __slots__ = ("index", "base", "size", "state", "top", "objects")

    def __init__(self, index: int, base: int, size: int):
        self.index = index
        self.base = base
        self.size = size
        self.state = RegionState.FREE
        self.top = base
        self.objects: List[HeapObject] = []

    @property
    def used(self) -> int:
        return self.top - self.base

    @property
    def free_space(self) -> int:
        return self.size - self.used

    def allocate(self, obj: HeapObject) -> bool:
        if obj.size > self.free_space:
            return False
        obj.address = self.top
        obj.region_id = self.index
        self.top += obj.size
        self.objects.append(obj)
        return True

    def reset(self) -> None:
        self.state = RegionState.FREE
        self.top = self.base
        self.objects = []


class G1Heap:
    """Region-structured heap with humongous allocation."""

    def __init__(self, config: VMConfig):
        self.config = config
        self.region_size = config.g1.region_size
        self.num_regions = max(config.heap_size // self.region_size, 4)
        self.regions = [
            G1Region(i, H1_BASE + i * self.region_size, self.region_size)
            for i in range(self.num_regions)
        ]
        self.young_target = max(2, int(self.num_regions * config.young_fraction))
        self._current_eden: Optional[G1Region] = None
        self.allocated_objects = 0
        self.allocated_bytes = 0
        self.humongous_allocations = 0
        self.humongous_waste = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.num_regions * self.region_size

    def used(self) -> int:
        return sum(
            r.size if r.state is RegionState.HUMONGOUS_CONT else r.used
            for r in self.regions
            if r.state is not RegionState.FREE
        )

    def free_regions(self) -> List[G1Region]:
        return [r for r in self.regions if r.state is RegionState.FREE]

    def young_regions(self) -> List[G1Region]:
        return [r for r in self.regions if r.state in _YOUNG_STATES]

    def old_regions(self) -> List[G1Region]:
        return [r for r in self.regions if r.state is RegionState.OLD]

    def take_free_region(self, state: RegionState) -> Optional[G1Region]:
        for region in self.regions:
            if region.state is RegionState.FREE:
                region.state = state
                return region
        return None

    def is_humongous(self, size: int) -> bool:
        return size > self.region_size // 2

    # ------------------------------------------------------------------
    def try_allocate(self, obj: HeapObject) -> bool:
        if self.is_humongous(obj.size):
            return self._allocate_humongous(obj)
        region = self._current_eden
        if region is None or not region.allocate(obj):
            # The eden budget counts eden regions only; survivor regions
            # are sized by the previous collection's survivors.
            eden_count = sum(
                1 for r in self.regions if r.state is RegionState.EDEN
            )
            if eden_count >= self.young_target:
                return False
            region = self.take_free_region(RegionState.EDEN)
            if region is None:
                return False
            self._current_eden = region
            if not region.allocate(obj):
                return False
        obj.space = SpaceId.EDEN
        self.allocated_objects += 1
        self.allocated_bytes += obj.size
        return True

    def _allocate_humongous(self, obj: HeapObject) -> bool:
        """First-fit contiguous run of free regions; never relocated.

        Each humongous object owns its whole run: the final region's slack
        is unusable — the fragmentation source behind the paper's G1 OOMs.
        """
        needed = -(-obj.size // self.region_size)
        run_start = None
        run_len = 0
        for region in self.regions:
            if region.state is RegionState.FREE:
                if run_start is None:
                    run_start = region.index
                run_len += 1
                if run_len == needed:
                    break
            else:
                run_start = None
                run_len = 0
        if run_start is None or run_len < needed:
            return False
        head = self.regions[run_start]
        head.state = RegionState.HUMONGOUS_START
        head.objects = [obj]
        head.top = head.base + min(obj.size, head.size)
        for i in range(run_start + 1, run_start + needed):
            cont = self.regions[i]
            cont.state = RegionState.HUMONGOUS_CONT
            cont.top = cont.base + cont.size
        obj.address = head.base
        obj.region_id = head.index
        obj.space = SpaceId.OLD
        self.humongous_allocations += 1
        self.humongous_waste += needed * self.region_size - obj.size
        self.allocated_objects += 1
        self.allocated_bytes += obj.size
        return True

    def free_humongous_run(self, head: G1Region) -> None:
        obj = head.objects[0] if head.objects else None
        needed = (
            -(-obj.size // self.region_size) if obj is not None else 1
        )
        for i in range(head.index, head.index + needed):
            self.regions[i].reset()

    def all_objects(self) -> List[HeapObject]:
        out: List[HeapObject] = []
        for region in self.regions:
            out.extend(region.objects)
        return out


class G1WriteBarrier:
    """G1's post-write barrier: dirties the source's remembered-set entry.

    G1's barrier is substantially heavier than PS's card mark (it filters,
    enqueues and refines); we model it as 3x the PS barrier cost.
    """

    def __init__(self, collector: "G1Collector", clock: Clock, cost):
        self.collector = collector
        self.clock = clock
        self.cost = cost
        self.barrier_count = 0

    def on_reference_store(self, src: HeapObject, target) -> None:
        self.barrier_count += 1
        self.clock.charge(self.cost.barrier_cost * 3)
        if src.space is SpaceId.OLD and target is not None and target.in_young:
            self.collector.remset_sources.add(src.oid)
            self.collector.remset_objects[src.oid] = src


class G1Collector(Collector):
    """Young + mixed collections with a full-GC fallback."""

    name = "g1"

    def __init__(
        self, heap: G1Heap, roots: RootSet, clock: Clock, config: VMConfig
    ):
        super().__init__()
        self.heap = heap
        self.roots = roots
        self.clock = clock
        self.config = config
        self.cost = config.cost
        #: approximate remembered set: old objects that gained young refs
        self.remset_sources: Set[int] = set()
        self.remset_objects: Dict[int, HeapObject] = {}
        # G1 parallel GC threads (the paper configures 8).
        self._workers = min(config.gc_threads, 8)
        # Concurrent marking pool: ConcGCThreads = ParallelGCThreads / 4
        # (the paper's configuration; HotSpot's default).
        self._concurrent_workers = max(
            1, self._workers // config.g1.concurrent_divisor
        )
        #: Bucket.OTHER total at the end of the last concurrent marking
        #: cycle — the start of the next cycle's overlap window.  Each
        #: mutator second can hide at most one cycle's marking.
        self._concurrent_baseline = 0.0
        self._last_remark_pause = 0.0
        self.engine = GCTaskEngine(
            clock,
            config.cost,
            workers=self._workers,
            seed=config.engine.seed,
            trace=config.engine.trace,
            name=self.name,
            steal_policy=config.engine.steal_policy,
            numa_nodes=config.engine.numa_nodes,
        )
        self.batch = BatchController(config.engine)
        self.full_collections = 0

    def _run_phase(self, bag: TaskBag, phase: str) -> PhaseExecution:
        execution = self.engine.run(bag, phase)
        self.note_execution(execution)
        return execution

    # ------------------------------------------------------------------
    def _trace_young(self, epoch: int) -> List[int]:
        cost = self.cost
        st = self.store
        space_arr = st.space
        epoch_arr = st.mark_epoch
        refs_arr = st.refs
        sf_arr = st.scan_factor
        visit_cost = cost.gc_visit_cost
        ref_cost = cost.gc_ref_cost
        batch = self.batch.scan_batch_objects
        bag = TaskBag()
        remset_scan = bag.batcher("g1-remset", "root", batch)
        stack = [o.oid for o in self.roots if space_arr[o.oid] <= SPACE_TO]
        for oid in list(self.remset_sources):
            src = self.remset_objects.get(oid)
            if src is None or space_arr[oid] != SPACE_OLD:
                self.remset_sources.discard(oid)
                self.remset_objects.pop(oid, None)
                continue
            targets = refs_arr[oid]
            remset_scan.add(visit_cost + ref_cost * len(targets))
            has_young = False
            for t in targets:
                if space_arr[t] <= SPACE_TO:
                    has_young = True
                    stack.append(t)
            if not has_young:
                # Precise cleaning: the entry carries no young refs.
                self.remset_sources.discard(oid)
                self.remset_objects.pop(oid, None)
        remset_scan.flush()
        scan = bag.batcher("g1-young-scan", "scan", batch)
        # Order-preserving DFS over the store columns: identical
        # stack-pop order to the old handle traversal, so scan-batch
        # boundaries and the engine schedule are unchanged.
        live: List[int] = []
        while stack:
            oid = stack.pop()
            if epoch_arr[oid] >= epoch or space_arr[oid] > SPACE_TO:
                continue
            epoch_arr[oid] = epoch
            live.append(oid)
            targets = refs_arr[oid]
            scan.add(visit_cost * sf_arr[oid] + ref_cost * len(targets))
            for t in targets:
                if space_arr[t] <= SPACE_TO and epoch_arr[t] < epoch:
                    stack.append(t)
        scan.flush()
        self._run_phase(bag, "g1-young-trace")
        return live

    def _evacuate(self, oids: List[int], state: RegionState) -> bool:
        """Copy the objects in ``oids`` into fresh regions of ``state``."""
        cost = self.cost
        st = self.store
        space_arr = st.space
        size_arr = st.size
        handle = st.handle
        dest_code = SPACE_EDEN if state in _YOUNG_STATES else SPACE_OLD
        target = self.heap.take_free_region(state)
        if target is None and oids:
            return False
        bag = TaskBag()
        copier = bag.batcher(
            "g1-copy", "copy", self.batch.copy_batch_objects
        )
        for oid in oids:
            obj = handle(oid)
            while target is not None and not target.allocate(obj):
                target = self.heap.take_free_region(state)
            if target is None:
                copier.flush()
                self._run_phase(bag, "g1-evacuate")
                return False
            space_arr[oid] = dest_code
            copier.add(size_arr[oid] / cost.gc_copy_bw)
        copier.flush()
        self._run_phase(bag, "g1-evacuate")
        return True

    # ------------------------------------------------------------------
    def minor_gc(self) -> GCCycle:
        heap = self.heap
        start = self.clock.now
        with self.clock.context(Bucket.MINOR_GC):
            epoch = self.next_epoch()
            self.begin_parallel_cycle()
            st = self.store
            space_arr = st.space
            epoch_arr = st.mark_epoch
            refs_arr = st.refs
            age_arr = st.age
            live = self._trace_young(epoch)
            young = heap.young_regions()
            for region in young:
                for obj in region.objects:
                    if epoch_arr[obj.oid] < epoch:
                        space_arr[obj.oid] = SPACE_FREED
                region.reset()
            heap._current_eden = None
            tenuring = self.config.tenuring_threshold
            survivors = [o for o in live if age_arr[o] + 1 < tenuring]
            promoted = [o for o in live if age_arr[o] + 1 >= tenuring]
            for oid in live:
                age_arr[oid] += 1
            # Both evacuations run even if the first fails: real G1
            # keeps copying into whatever regions remain (and pays the
            # copy cost) before declaring the scavenge failed.
            survivors_ok = self._evacuate(survivors, RegionState.SURVIVOR)
            promoted_ok = self._evacuate(promoted, RegionState.OLD)
            # Promotion creates old-to-young references no barrier saw;
            # real G1 updates remembered sets during evacuation.
            for oid in promoted:
                if any(space_arr[t] <= SPACE_TO for t in refs_arr[oid]):
                    self.remset_sources.add(oid)
                    self.remset_objects[oid] = st.handle(oid)
            full_duration = 0.0
            if not (survivors_ok and promoted_ok):
                # Evacuation failure: fall back to a full collection.
                # The fallback is major-GC work — it must not inflate
                # the scavenge pause or the MINOR_GC bucket.
                self.clock.record_event("evacuation_failure", 0.0)
                full_start = self.clock.now
                with self.clock.context(Bucket.MAJOR_GC):
                    self._full_collection()
                full_duration = self.clock.now - full_start
                self.clock.record_event("full_gc", full_duration)
            duration = self.clock.now - start - full_duration
            cycle = GCCycle(
                kind="minor",
                start_time=start,
                duration=duration,
                live_bytes=st.sum_sizes(live),
                promoted_bytes=st.sum_sizes(promoted),
            )
            self.apply_parallel_stats(cycle, self._workers)
            self.stats.record(cycle)
            self.clock.record_event("minor_gc", duration)
            return cycle

    # ------------------------------------------------------------------
    def _mark_all(self, epoch: int) -> List[int]:
        """Concurrent marking racing the mutator, closed by a STW remark.

        The marking scan is decomposed at *full* per-object cost and
        scheduled on the concurrent lane set (``ConcGCThreads =
        ParallelGCThreads / concurrent_divisor``, the paper's
        configuration).  The lanes race the ``Bucket.OTHER`` time the
        mutator accrued since the previous cycle ended: marking up to
        that overlap charges nothing to the pause, and only the
        remainder — marking that outruns the mutator — lands in
        ``Bucket.MAJOR_GC``.  The final remark (SATB drain plus root
        re-scan) is a stop-the-world phase on the full worker pool.
        """
        cost = self.cost
        st = self.store
        space_arr = st.space
        epoch_arr = st.mark_epoch
        refs_arr = st.refs
        sf_arr = st.scan_factor
        visit_cost = cost.gc_visit_cost
        ref_cost = cost.gc_ref_cost
        bag = TaskBag()
        mark = bag.batcher(
            "g1-mark", "scan", self.batch.scan_batch_objects
        )
        stack = [
            o.oid for o in self.roots if space_arr[o.oid] != SPACE_FREED
        ]
        live: List[int] = []
        while stack:
            oid = stack.pop()
            if epoch_arr[oid] >= epoch:
                continue
            epoch_arr[oid] = epoch
            live.append(oid)
            targets = refs_arr[oid]
            mark.add(visit_cost * sf_arr[oid] + ref_cost * len(targets))
            for t in targets:
                if epoch_arr[t] < epoch:
                    stack.append(t)
        mark.flush()
        other_now = self.clock.total(Bucket.OTHER)
        budget = max(0.0, other_now - self._concurrent_baseline)
        execution = self.engine.run(
            bag,
            "g1-concurrent-mark",
            workers=self._concurrent_workers,
            concurrent_budget=budget,
        )
        self.note_execution(execution)
        # Consume the overlap window: the next cycle only hides behind
        # mutator progress made after this one.
        self._concurrent_baseline = other_now

        # STW remark: re-examine the roots and drain the SATB-logged
        # fraction of the marking work on the full (paused) pool.
        remark_bag = TaskBag()
        rescan = remark_bag.batcher(
            "g1-remark-roots", "root", self.batch.scan_batch_objects
        )
        for _ in self.roots:
            rescan.add(cost.gc_root_scan_cost)
        rescan.flush()
        fraction = self.config.g1.remark_fraction
        if fraction > 0.0:
            satb = remark_bag.batcher(
                "g1-remark-satb", "scan", self.batch.scan_batch_objects
            )
            for oid in live:
                satb.add(
                    fraction
                    * (
                        visit_cost * sf_arr[oid]
                        + ref_cost * len(refs_arr[oid])
                    )
                )
            satb.flush()
        remark = self._run_phase(remark_bag, "g1-remark")
        self._last_remark_pause = remark.critical_path
        return live

    def major_gc(self) -> GCCycle:
        """A marking cycle followed by mixed evacuation."""
        heap = self.heap
        start = self.clock.now
        with self.clock.context(Bucket.MAJOR_GC):
            epoch = self.next_epoch()
            self.begin_parallel_cycle()
            st = self.store
            space_arr = st.space
            epoch_arr = st.mark_epoch
            live = self._mark_all(epoch)
            live_bytes = st.sum_sizes(live)

            # Free dead humongous runs eagerly (no copying needed).
            for region in heap.regions:
                if region.state is RegionState.HUMONGOUS_START:
                    oid = region.objects[0].oid
                    if epoch_arr[oid] < epoch:
                        space_arr[oid] = SPACE_FREED
                        heap.free_humongous_run(region)

            # Garbage-first: evacuate the old regions with least live data.
            candidates = []
            for region in heap.old_regions():
                region_live = [
                    o.oid
                    for o in region.objects
                    if epoch_arr[o.oid] >= epoch
                ]
                candidates.append(
                    (st.sum_sizes(region_live), region, region_live)
                )
            candidates.sort(key=lambda item: item[0])
            budget = int(
                heap.capacity * self.config.g1.mixed_collection_fraction
            )
            taken = 0
            for region_live_bytes, region, region_live in candidates:
                if taken >= budget:
                    break
                taken += region.size
                for obj in region.objects:
                    if epoch_arr[obj.oid] < epoch:
                        space_arr[obj.oid] = SPACE_FREED
                region.reset()
                if not self._evacuate(region_live, RegionState.OLD):
                    self._full_collection()
                    break
            duration = self.clock.now - start
            cycle = GCCycle(
                kind="major",
                start_time=start,
                duration=duration,
                live_bytes=live_bytes,
            )
            self.apply_parallel_stats(cycle, self._workers)
            cycle.remark_pause = self._last_remark_pause
            self.stats.record(cycle)
            self.clock.record_event("major_gc", duration)
            return cycle

    # ------------------------------------------------------------------
    def _full_collection(self) -> None:
        """Last-resort full compaction (humongous objects still unmovable)."""
        heap = self.heap
        self.full_collections += 1
        epoch = self.next_epoch()
        cost = self.cost
        st = self.store
        space_arr = st.space
        epoch_arr = st.mark_epoch
        refs_arr = st.refs
        sf_arr = st.scan_factor
        size_arr = st.size
        visit_cost = cost.gc_visit_cost
        ref_cost = cost.gc_ref_cost
        bag = TaskBag()
        mark = bag.batcher(
            "g1-full-mark", "scan", self.batch.scan_batch_objects
        )
        stack = [
            o.oid for o in self.roots if space_arr[o.oid] != SPACE_FREED
        ]
        while stack:
            oid = stack.pop()
            if epoch_arr[oid] >= epoch:
                continue
            epoch_arr[oid] = epoch
            targets = refs_arr[oid]
            # Scan cost honours the object's scan factor, consistent
            # with _trace_young and _mark_all: full GCs must not
            # under-charge scan-heavy objects.
            mark.add(visit_cost * sf_arr[oid] + ref_cost * len(targets))
            stack.extend(t for t in targets if epoch_arr[t] < epoch)
        mark.flush()
        # Compact every non-humongous live object into fresh old regions.
        movable: List[int] = []
        for region in heap.regions:
            if region.state in (
                RegionState.HUMONGOUS_START,
                RegionState.HUMONGOUS_CONT,
            ):
                if (
                    region.state is RegionState.HUMONGOUS_START
                    and region.objects
                    and epoch_arr[region.objects[0].oid] < epoch
                ):
                    space_arr[region.objects[0].oid] = SPACE_FREED
                    heap.free_humongous_run(region)
                continue
            for obj in region.objects:
                if epoch_arr[obj.oid] >= epoch:
                    movable.append(obj.oid)
                else:
                    space_arr[obj.oid] = SPACE_FREED
            region.reset()
        heap._current_eden = None
        # Sliding the survivors out of their regions before re-placement
        # (the subsequent evacuation pays the copy into fresh regions).
        compact = bag.batcher(
            "g1-full-compact",
            "compact",
            self.batch.copy_batch_objects,
        )
        for oid in movable:
            compact.add(size_arr[oid] / cost.gc_copy_bw)
        compact.flush()
        self._run_phase(bag, "g1-full-mark")
        if not self._evacuate(movable, RegionState.OLD):
            raise OutOfMemoryError(
                "G1 full collection cannot fit live data "
                "(humongous fragmentation)",
                requested=st.sum_sizes(movable),
            )
        self.remset_sources.clear()
        self.remset_objects.clear()
