"""Garbage collectors.

- :mod:`.parallel_scavenge` — Parallel Scavenge (the collector TeraHeap
  extends; Section 4), with a jdk8 flavour (single-threaded old-gen
  collection) and the optimised jdk11 flavour used in Figure 8.
- :mod:`.g1` — a Garbage-First model with humongous-object fragmentation,
  the OpenJDK17 baseline of Figure 8.
- :mod:`.panthera` — the hybrid DRAM/NVM collector baseline of
  Figure 12(c).
"""

from .base import Collector, GCCycle, GCStats
from .g1 import G1Collector
from .panthera import PantheraCollector
from .parallel_scavenge import ParallelScavenge

__all__ = [
    "Collector",
    "G1Collector",
    "GCCycle",
    "GCStats",
    "PantheraCollector",
    "ParallelScavenge",
]
