"""Simulated execution clock with the paper's time breakdown.

Every component of the simulator charges its cost here.  The paper reports
execution time split into four stacks (Figures 6, 8, 12): *other* (mutator
work, including I/O wait on H2 page faults for TeraHeap), *S/D + I/O*
(serialization, deserialization and the device traffic they cause),
*minor GC* and *major GC*.

Charges carry a :class:`Bucket`.  Device models do not know why they are
being accessed, so they charge to the clock's *current context*: callers
wrap work in ``with clock.context(Bucket.MAJOR_GC): ...`` and any device
time lands in that bucket.  Sub-buckets (e.g. major-GC phases) are tracked
separately for Figure 11(b).
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple


class Bucket(enum.Enum):
    """Top-level execution-time categories, matching the paper's stacks."""

    OTHER = "other"
    SD_IO = "sd_io"
    MINOR_GC = "minor_gc"
    MAJOR_GC = "major_gc"


class Clock:
    """Accumulates simulated seconds per bucket and sub-bucket."""

    def __init__(self) -> None:
        self._totals: Dict[Bucket, float] = {b: 0.0 for b in Bucket}
        self._sub: Dict[str, float] = {}
        self._context: List[Bucket] = [Bucket.OTHER]
        self._sub_context: List[str] = []
        # Timeline of (simulated time, event name, duration) tuples used by
        # the Figure 7 GC-timeline experiment.
        self.events: List[Tuple[float, str, float]] = []

    # ------------------------------------------------------------------
    # Context management
    # ------------------------------------------------------------------
    @property
    def current(self) -> Bucket:
        """Bucket that untagged charges currently land in."""
        return self._context[-1]

    @contextmanager
    def context(self, bucket: Bucket) -> Iterator[None]:
        """Route untagged charges to ``bucket`` for the duration."""
        self._context.append(bucket)
        try:
            yield
        finally:
            self._context.pop()

    @contextmanager
    def sub_context(self, name: str) -> Iterator[None]:
        """Additionally attribute charges to a named sub-bucket."""
        self._sub_context.append(name)
        try:
            yield
        finally:
            self._sub_context.pop()

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge(self, seconds: float, bucket: Bucket = None) -> None:
        """Add ``seconds`` to ``bucket`` (default: current context)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        target = bucket if bucket is not None else self.current
        self._totals[target] += seconds
        if self._sub_context:
            name = self._sub_context[-1]
            self._sub[name] = self._sub.get(name, 0.0) + seconds

    def record_event(self, name: str, duration: float) -> None:
        """Log a timeline event (e.g. one GC cycle) at the current time."""
        self.events.append((self.now, name, duration))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Total simulated seconds elapsed."""
        return sum(self._totals.values())

    def total(self, bucket: Bucket) -> float:
        return self._totals[bucket]

    def sub_total(self, name: str) -> float:
        return self._sub.get(name, 0.0)

    def breakdown(self) -> Dict[str, float]:
        """The paper's four-way split, keyed by bucket value."""
        return {b.value: self._totals[b] for b in Bucket}

    def sub_breakdown(self) -> Dict[str, float]:
        return dict(self._sub)

    def snapshot(self) -> "ClockSnapshot":
        return ClockSnapshot(dict(self._totals), dict(self._sub))


class ClockSnapshot:
    """Immutable copy of clock totals, used to compute deltas."""

    def __init__(self, totals: Dict[Bucket, float], sub: Dict[str, float]):
        self._totals = totals
        self._sub = sub

    def delta(self, clock: Clock) -> Dict[str, float]:
        """Per-bucket seconds elapsed on ``clock`` since this snapshot."""
        return {
            b.value: clock.total(b) - self._totals.get(b, 0.0) for b in Bucket
        }

    def sub_delta(self, clock: Clock, name: str) -> float:
        return clock.sub_total(name) - self._sub.get(name, 0.0)
