"""Simulated execution clock with the paper's time breakdown.

Every component of the simulator charges its cost here.  The paper reports
execution time split into four stacks (Figures 6, 8, 12): *other* (mutator
work, including I/O wait on H2 page faults for TeraHeap), *S/D + I/O*
(serialization, deserialization and the device traffic they cause),
*minor GC* and *major GC*.

Charges carry a :class:`Bucket`.  Device models do not know why they are
being accessed, so they charge to the clock's *current context*: callers
wrap work in ``with clock.context(Bucket.MAJOR_GC): ...`` and any device
time lands in that bucket.  Sub-buckets (e.g. major-GC phases) are tracked
separately for Figure 11(b).

Parallel GC phases use the *multi-lane* extension: ``clock.parallel(n)``
opens a :class:`LaneSet` with one time lane per simulated GC worker.
Lanes advance independently while the region is open, and on exit the
mutator is charged the **critical path** — the maximum lane time — so
parallel speedup, load imbalance and steal overhead are emergent rather
than assumed.

``clock.concurrent(lanes, budget=...)`` is the overlap variant: the
lane set races mutator progress that already elapsed, so only the part
of the critical path exceeding ``budget`` lands in the pause — the
substrate for G1's concurrent marking cycle.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple


class Bucket(enum.Enum):
    """Top-level execution-time categories, matching the paper's stacks."""

    OTHER = "other"
    SD_IO = "sd_io"
    MINOR_GC = "minor_gc"
    MAJOR_GC = "major_gc"
    #: mutator allocation stalls under emergency backpressure — the wait
    #: a thread spends parked while the VM sheds cache and runs
    #: emergency full GCs instead of dying with an OOM
    ALLOC_STALL = "alloc_stall"


class LaneSet:
    """Per-worker time lanes inside one parallel region.

    Each lane accumulates *busy* (task execution), *steal* (work-stealing
    transfer) and *overhead* (dispatch/termination protocol) seconds.
    Idle time is not advanced explicitly: a lane is idle for whatever gap
    remains between its own time and the critical path.

    Lanes carry a NUMA node id: the pool is block-partitioned over
    ``nodes`` (lane ``i`` lives on node ``i * nodes // lanes``), so a
    scheduler can tell same-node from cross-node steals and charge the
    remote-access premium accordingly.

    ``hidden`` is filled in by :meth:`Clock.concurrent` on clean exit:
    the part of the critical path that overlapped already-elapsed
    mutator time and was therefore never charged.  Plain
    :meth:`Clock.parallel` regions leave it at 0.
    """

    __slots__ = ("num_lanes", "busy", "steal", "overhead", "node", "hidden")

    KINDS = ("busy", "steal", "overhead")

    def __init__(self, lanes: int, nodes: int = 1):
        if lanes < 1:
            raise ValueError(f"a parallel region needs >=1 lane, got {lanes}")
        if nodes < 1:
            raise ValueError(f"a lane set needs >=1 NUMA node, got {nodes}")
        nodes = min(nodes, lanes)
        self.num_lanes = lanes
        self.busy = [0.0] * lanes
        self.steal = [0.0] * lanes
        self.overhead = [0.0] * lanes
        self.node = [i * nodes // lanes for i in range(lanes)]
        self.hidden = 0.0

    def node_of(self, lane: int) -> int:
        """NUMA node that ``lane`` is pinned to."""
        return self.node[lane]

    def advance(self, lane: int, seconds: float, kind: str = "busy") -> None:
        """Move ``lane``'s local time forward by ``seconds``."""
        if seconds < 0:
            raise ValueError(f"cannot advance a lane by {seconds}")
        if kind == "busy":
            self.busy[lane] += seconds
        elif kind == "steal":
            self.steal[lane] += seconds
        elif kind == "overhead":
            self.overhead[lane] += seconds
        else:
            raise ValueError(
                f"unknown lane charge kind {kind!r}; expected one of "
                f"{self.KINDS}"
            )

    def lane_time(self, lane: int) -> float:
        return self.busy[lane] + self.steal[lane] + self.overhead[lane]

    @property
    def critical_path(self) -> float:
        """The pause the mutator observes: the slowest lane."""
        return max(self.lane_time(i) for i in range(self.num_lanes))

    def idle(self, lane: int) -> float:
        return self.critical_path - self.lane_time(lane)

    @property
    def total_idle(self) -> float:
        return sum(self.idle(i) for i in range(self.num_lanes))

    @property
    def imbalance(self) -> float:
        """Critical path over mean lane time (1.0 = perfectly balanced)."""
        total = sum(self.lane_time(i) for i in range(self.num_lanes))
        if total <= 0.0:
            return 1.0
        return self.critical_path * self.num_lanes / total


class Clock:
    """Accumulates simulated seconds per bucket and sub-bucket."""

    def __init__(self) -> None:
        self._totals: Dict[Bucket, float] = {b: 0.0 for b in Bucket}
        self._sub: Dict[str, float] = {}
        self._context: List[Bucket] = [Bucket.OTHER]
        self._sub_context: List[str] = []
        # Timeline of (simulated time, event name, duration) tuples used by
        # the Figure 7 GC-timeline experiment.
        self.events: List[Tuple[float, str, float]] = []

    # ------------------------------------------------------------------
    # Context management
    # ------------------------------------------------------------------
    @property
    def current(self) -> Bucket:
        """Bucket that untagged charges currently land in."""
        return self._context[-1]

    @contextmanager
    def context(self, bucket: Bucket) -> Iterator[None]:
        """Route untagged charges to ``bucket`` for the duration."""
        self._context.append(bucket)
        try:
            yield
        finally:
            self._context.pop()

    @contextmanager
    def sub_context(self, name: str) -> Iterator[None]:
        """Additionally attribute charges to a named sub-bucket."""
        self._sub_context.append(name)
        try:
            yield
        finally:
            self._sub_context.pop()

    @contextmanager
    def parallel(self, lanes: int, nodes: int = 1) -> Iterator[LaneSet]:
        """Open a multi-lane parallel region with ``lanes`` worker lanes.

        Lanes advance independently inside the block; on clean exit the
        clock is charged the critical path (max over lanes) in the
        current bucket/sub-bucket context.  A region aborted by an
        exception (e.g. a :class:`~repro.errors.SimulatedCrash` fired
        mid-phase) charges nothing: the phase never completed, and
        counting partially-executed lane time would skew the pre-crash
        clock that crash-recovery reconciliation compares against.
        """
        lane_set = LaneSet(lanes, nodes)
        yield lane_set
        self.charge(lane_set.critical_path)

    @contextmanager
    def concurrent(
        self, lanes: int, nodes: int = 1, budget: float = 0.0
    ) -> Iterator[LaneSet]:
        """Open a parallel region racing already-elapsed mutator time.

        Concurrent GC phases (G1's marking cycle) run while the
        application executes, so their cost is invisible to the mutator
        up to the mutator progress they overlap.  ``budget`` is that
        overlap window — the ``Bucket.OTHER`` seconds accrued since the
        phase conceptually started.  On clean exit only the part of the
        critical path that *outruns* the budget is charged to the
        current bucket/sub-bucket context; the hidden remainder is
        recorded on the lane set (``lane_set.hidden``) so schedulers
        can report it.  A region aborted by an exception charges
        nothing, exactly like :meth:`parallel`.
        """
        if budget < 0:
            raise ValueError(
                f"concurrent budget must be >= 0, got {budget}"
            )
        lane_set = LaneSet(lanes, nodes)
        yield lane_set
        critical = lane_set.critical_path
        lane_set.hidden = min(critical, budget)
        self.charge(critical - lane_set.hidden)

    def overlap(self, seconds: float, budget: float) -> float:
        """Charge ``seconds`` of work racing already-elapsed mutator time.

        The scalar sibling of :meth:`concurrent`, for single-lane
        overlapped work (a streaming pipeline stage running in its own
        execution slot, an asynchronous spill): up to ``budget`` seconds
        of the work hide behind mutator progress that already elapsed,
        and only the overrun is charged to the current bucket/sub-bucket
        context.  Returns the hidden share so callers can report it.
        """
        if seconds < 0:
            raise ValueError(f"cannot overlap negative time: {seconds}")
        if budget < 0:
            raise ValueError(f"overlap budget must be >= 0, got {budget}")
        hidden = min(seconds, budget)
        self.charge(seconds - hidden)
        return hidden

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge(self, seconds: float, bucket: Optional[Bucket] = None) -> None:
        """Add ``seconds`` to ``bucket`` (default: current context)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        if bucket is None:
            target = self.current
        elif isinstance(bucket, Bucket):
            target = bucket
        else:
            raise ValueError(
                f"unknown clock bucket {bucket!r}; expected a "
                f"repro.clock.Bucket member or None"
            )
        self._totals[target] += seconds
        if self._sub_context:
            name = self._sub_context[-1]
            self._sub[name] = self._sub.get(name, 0.0) + seconds

    def record_event(self, name: str, duration: float) -> None:
        """Log a timeline event (e.g. one GC cycle) at the current time."""
        self.events.append((self.now, name, duration))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Total simulated seconds elapsed."""
        return sum(self._totals.values())

    def total(self, bucket: Bucket) -> float:
        return self._totals[bucket]

    def sub_total(self, name: str) -> float:
        return self._sub.get(name, 0.0)

    def breakdown(self) -> Dict[str, float]:
        """The paper's four-way split, keyed by bucket value."""
        return {b.value: self._totals[b] for b in Bucket}

    def sub_breakdown(self) -> Dict[str, float]:
        return dict(self._sub)

    def snapshot(self) -> "ClockSnapshot":
        return ClockSnapshot(dict(self._totals), dict(self._sub))


class ClockSnapshot:
    """Immutable copy of clock totals, used to compute deltas."""

    def __init__(self, totals: Dict[Bucket, float], sub: Dict[str, float]):
        self._totals = totals
        self._sub = sub

    def delta(self, clock: Clock) -> Dict[str, float]:
        """Per-bucket seconds elapsed on ``clock`` since this snapshot."""
        return {
            b.value: clock.total(b) - self._totals.get(b, 0.0) for b in Bucket
        }

    def sub_delta(self, clock: Clock, name: str) -> float:
        return clock.sub_total(name) - self._sub.get(name, 0.0)
