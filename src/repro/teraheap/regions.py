"""H2 regions and their DRAM-resident metadata (Section 3.3, Figure 2).

H2 is organised in virtual memory as fixed-size regions, each hosting an
object group with a similar lifetime.  All region metadata lives in DRAM:
a region array with start/top pointers and a live bit, plus a per-region
dependency list whose nodes each point at a (different) region referenced
by this region's objects.  Space is reclaimed *lazily*, a whole region at
a time — no object is ever compacted on the device.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from ..errors import ConfigError
from ..heap.object_model import HeapObject, SpaceId
from ..heap.store import SPACE_FREED
from ..units import TiB

# Figure 2 metadata, sized per region (measured on the authors' struct
# layout so that Table 5 reproduces exactly):
#   region array entry: head/start/top pointers + live bit + padding  = 64 B
#   allocator state: label hash, object/byte counters, buffer pointer = 89 B
#   dependency list: ~10 nodes on average (Section 3.3) x 24 B        = 240 B
#   promotion-buffer descriptor                                       = 24 B
PER_REGION_METADATA_BYTES = 64 + 89 + 10 * 24 + 24  # = 417


def metadata_bytes_per_tb(region_size: int) -> int:
    """DRAM metadata per TB of H2 for a given region size (Table 5).

    ``region_size`` is given in *real* bytes (e.g. ``1 * MiB``); the result
    is the metadata footprint for one TiB of H2 space.
    """
    if region_size <= 0:
        raise ConfigError("region size must be positive")
    regions_per_tb = TiB // region_size
    return regions_per_tb * PER_REGION_METADATA_BYTES


class Region:
    """One H2 region plus its DRAM metadata entry."""

    __slots__ = (
        "index",
        "start",
        "capacity",
        "top",
        "live",
        "label",
        "deps",
        "objects",
        "allocated_epoch",
        "_addr_cache",
        "_oid_cache",
    )

    def __init__(self, index: int, start: int, capacity: int):
        self.index = index
        #: start pointer (Figure 2)
        self.start = start
        self.capacity = capacity
        #: top (allocation) pointer; reset to ``start`` frees the region
        self.top = start
        #: live bit: region reachable from H1 this major GC (Section 3.3)
        self.live = False
        #: label of the object group placed here (regions are label-homogeneous
        #: so whole groups die together)
        self.label: Optional[str] = None
        #: dependency list: indices of regions referenced by objects here.
        #: The paper keeps direction — this set holds *outgoing* edges.
        self.deps: Set[int] = set()
        self.objects: List[HeapObject] = []
        self.allocated_epoch = 0
        self._addr_cache: Optional[List[int]] = None
        self._oid_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def used(self) -> int:
        return self.top - self.start

    @property
    def free_space(self) -> int:
        return self.capacity - self.used

    @property
    def end(self) -> int:
        return self.start + self.capacity

    @property
    def is_empty(self) -> bool:
        return self.top == self.start

    def contains_address(self, address: int) -> bool:
        return self.start <= address < self.end

    def has_room(self, size: int) -> bool:
        return self.free_space >= size

    # ------------------------------------------------------------------
    def allocate(self, obj: HeapObject) -> bool:
        """Append-only placement; objects never span regions (Section 3.4)."""
        if not self.has_room(obj.size):
            return False
        obj.address = self.top
        obj.space = SpaceId.H2
        obj.region_id = self.index
        self.top += obj.size
        self.objects.append(obj)
        self._addr_cache = None
        self._oid_cache = None
        return True

    def oid_array(self) -> np.ndarray:
        """The region's oids in allocation (= address) order."""
        if self._oid_cache is None:
            self._oid_cache = np.fromiter(
                (o.oid for o in self.objects),
                dtype=np.int64,
                count=len(self.objects),
            )
        return self._oid_cache

    def live_object_stats(self, mark_epoch: int) -> "RegionLiveness":
        """Live-object and live-space fractions (Figure 10 inputs).

        An H2 object counts as live when its region was reached this epoch;
        at the statistics level we use per-object reachability recorded by
        the collector (``mark_epoch``) to measure intra-region garbage the
        way the paper's Figure 10 does.
        """
        total = len(self.objects)
        if total:
            store = self.objects[0]._store
            oids = self.oid_array()
            mask = store.epoch_view()[oids] >= mark_epoch
            live = int(mask.sum())
            live_bytes = int(store.size_view()[oids][mask].sum())
        else:
            live = 0
            live_bytes = 0
        return RegionLiveness(
            total_objects=total,
            live_objects=live,
            used_bytes=self.used,
            live_bytes=live_bytes,
            capacity=self.capacity,
        )

    def reclaim(self) -> List[HeapObject]:
        """Free the region in bulk: zero the allocation pointer, delete the
        dependency list (Section 3.3).  Returns the dropped objects."""
        dropped = self.objects
        if dropped:
            store = dropped[0]._store
            oids = self.oid_array()
            store.set_space_batch(oids, SPACE_FREED)
            store.region_view()[oids] = -1
        self.objects = []
        self.top = self.start
        self.live = False
        self.label = None
        self.deps = set()
        self._addr_cache = None
        self._oid_cache = None
        return dropped

    # ------------------------------------------------------------------
    def objects_overlapping(self, lo: int, hi: int) -> List[HeapObject]:
        """Objects intersecting [lo, hi) — used by card-segment scans."""
        from bisect import bisect_left, bisect_right

        if self._addr_cache is None:
            self._addr_cache = [o.address for o in self.objects]
        addrs = self._addr_cache
        start = max(bisect_right(addrs, lo) - 1, 0)
        stop = bisect_left(addrs, hi) + 1
        return [
            obj
            for obj in self.objects[start:stop]
            if obj.address < hi and obj.end_address() > lo
        ]


class RegionLiveness:
    """Per-region liveness statistics for the Figure 10 CDFs."""

    __slots__ = (
        "total_objects",
        "live_objects",
        "used_bytes",
        "live_bytes",
        "capacity",
    )

    def __init__(
        self,
        total_objects: int,
        live_objects: int,
        used_bytes: int,
        live_bytes: int,
        capacity: int,
    ):
        self.total_objects = total_objects
        self.live_objects = live_objects
        self.used_bytes = used_bytes
        self.live_bytes = live_bytes
        self.capacity = capacity

    @property
    def live_object_fraction(self) -> float:
        return self.live_objects / self.total_objects if self.total_objects else 0.0

    @property
    def live_space_fraction(self) -> float:
        return self.live_bytes / self.capacity if self.capacity else 0.0

    @property
    def unused_fraction(self) -> float:
        return 1.0 - self.used_bytes / self.capacity if self.capacity else 0.0
