"""High/low threshold policy for hint-less transfers (Section 3.2).

Delaying movement until ``h2_move`` risks out-of-memory: H1 may fill
first.  TeraHeap monitors live occupancy at the end of each major GC; above
the *high* threshold it moves marked objects without waiting for the hint.
Moving *all* marked objects then would flood the device with objects that
are still being updated, so a *low* threshold bounds the transfer: move
only enough marked bytes to bring H1 occupancy back down to the low mark.
Figure 9(b) shows the low threshold improving SSSP by up to 44%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class TransferDecision:
    """What the policy decided for this major GC."""

    #: move groups whose h2_move() hint has arrived
    move_hinted: bool
    #: additionally move unhinted marked objects (pressure response)
    move_unhinted: bool
    #: byte budget for unhinted movement (None = unlimited)
    unhinted_budget: Optional[int]
    reason: str
    #: byte budget for hinted movement (None = unlimited); only the H2
    #: governor ever caps hinted moves, and only with the circuit open
    hinted_budget: Optional[int] = None


class ThresholdPolicy:
    """Decides how much marked data a major GC transfers to H2."""

    def __init__(
        self,
        heap_capacity: int,
        high_threshold: float = 0.85,
        low_threshold: Optional[float] = 0.50,
        use_move_hint: bool = True,
        governor=None,
    ):
        if not 0.0 < high_threshold <= 1.0:
            raise ValueError("high threshold must be in (0, 1]")
        if low_threshold is not None and not 0.0 < low_threshold < high_threshold:
            raise ValueError("low threshold must fall below the high one")
        self.heap_capacity = heap_capacity
        self.high_threshold = high_threshold
        self.low_threshold = low_threshold
        self.use_move_hint = use_move_hint
        #: optional :class:`~repro.teraheap.governor.H2Governor` whose
        #: circuit state overrides pressure decisions
        self.governor = governor
        self.pressure_transfers = 0
        #: pressure transfers the governor halted (circuit open)
        self.governor_halts = 0

    def decide(self, live_bytes: int) -> TransferDecision:
        """Pick the transfer plan given the live bytes found by marking."""
        occupancy = live_bytes / self.heap_capacity
        if occupancy <= self.high_threshold:
            # No pressure: honour hints only (or nothing, in the no-hint
            # ablation, where *only* pressure ever moves objects).
            return self._govern(
                TransferDecision(
                    move_hinted=self.use_move_hint,
                    move_unhinted=False,
                    unhinted_budget=None,
                    reason="below high threshold",
                )
            )
        # High pressure: move marked objects without waiting for h2_move().
        self.pressure_transfers += 1
        if self.low_threshold is None:
            return self._govern(
                TransferDecision(
                    move_hinted=True,
                    move_unhinted=True,
                    unhinted_budget=None,
                    reason="high threshold exceeded (no low threshold)",
                )
            )
        target_bytes = int(self.low_threshold * self.heap_capacity)
        budget = max(live_bytes - target_bytes, 0)
        return self._govern(
            TransferDecision(
                move_hinted=True,
                move_unhinted=True,
                unhinted_budget=budget,
                reason=(
                    f"high threshold exceeded; moving down to "
                    f"{self.low_threshold:.0%} occupancy"
                ),
            )
        )

    def _govern(self, decision: TransferDecision) -> TransferDecision:
        """Apply the H2 governor's circuit caps to a raw decision.

        An OPEN circuit halts unhinted (pressure) transfers outright and
        caps hinted moves; a DEGRADED circuit shrinks the unhinted
        budget.  Pressure the governor suppresses is still *pressure* —
        the backpressure path in the VM deals with the memory the
        transfer would have freed.
        """
        if self.governor is None:
            return decision
        allow_unhinted, budget_scale, hinted_budget = (
            self.governor.transfer_caps()
        )
        if hinted_budget is not None:
            decision.hinted_budget = hinted_budget
        if decision.move_unhinted and not allow_unhinted:
            decision.move_unhinted = False
            decision.unhinted_budget = 0
            decision.reason += "; governor halted pressure transfer (circuit open)"
            self.governor_halts += 1
        elif (
            decision.move_unhinted
            and budget_scale < 1.0
            and decision.unhinted_budget is not None
        ):
            decision.unhinted_budget = int(
                decision.unhinted_budget * budget_scale
            )
            decision.reason += (
                f"; governor scaled unhinted budget x{budget_scale:g}"
            )
        return decision


class AdaptiveThresholdPolicy(ThresholdPolicy):
    """Dynamic high/low thresholds — the paper's stated future work (§7.2).

    The static policy must be hand-tuned per workload.  This variant
    adapts between major GCs:

    - repeated pressure transfers mean the high threshold is too lax for
      the allocation rate: lower both thresholds so transfers start
      earlier and move more;
    - sustained pressure-free GCs mean H1 has headroom: relax the
      thresholds back toward their configured values, keeping objects in
      DRAM longer (deferring device traffic for still-mutable data).
    """

    #: multiplicative step applied to the thresholds per adaptation
    STEP = 0.05
    #: consecutive pressure GCs before tightening (a single spike — e.g.
    #: graph loading — should not permanently lower the thresholds)
    PRESSURE_WINDOW = 2
    #: consecutive calm GCs before relaxing
    CALM_WINDOW = 3
    #: floor for the adaptive high threshold
    MIN_HIGH = 0.50

    def __init__(
        self,
        heap_capacity: int,
        high_threshold: float = 0.85,
        low_threshold: Optional[float] = 0.50,
        use_move_hint: bool = True,
        governor=None,
    ):
        super().__init__(
            heap_capacity, high_threshold, low_threshold, use_move_hint,
            governor=governor,
        )
        self.configured_high = high_threshold
        self.configured_low = low_threshold
        self._calm_streak = 0
        self._pressure_streak = 0
        self.adaptations = 0

    def decide(self, live_bytes: int) -> TransferDecision:
        decision = super().decide(live_bytes)
        if decision.move_unhinted:
            # Pressure fired; tighten only on *sustained* pressure so a
            # one-off spike does not force mutable data out early.
            self._calm_streak = 0
            self._pressure_streak += 1
            if self._pressure_streak >= self.PRESSURE_WINDOW:
                new_high = max(
                    self.MIN_HIGH, self.high_threshold - self.STEP
                )
                if new_high != self.high_threshold:
                    self.high_threshold = new_high
                    self.adaptations += 1
                if self.low_threshold is not None:
                    self.low_threshold = max(
                        0.20, min(self.low_threshold - self.STEP,
                                  self.high_threshold - 0.05)
                    )
        else:
            self._pressure_streak = 0
            self._calm_streak += 1
            if (
                self._calm_streak >= self.CALM_WINDOW
                and self.high_threshold < self.configured_high
            ):
                # Sustained calm: relax back toward the configured values.
                self.high_threshold = min(
                    self.configured_high, self.high_threshold + self.STEP
                )
                if (
                    self.low_threshold is not None
                    and self.configured_low is not None
                ):
                    self.low_threshold = min(
                        self.configured_low, self.low_threshold + self.STEP
                    )
                self._calm_streak = 0
                self.adaptations += 1
        return decision
