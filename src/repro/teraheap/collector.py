"""TeraHeap's extension of the Parallel Scavenge collector (Section 4).

Minor GC gains two tasks: fencing the scavenge from crossing into H2, and
scanning the H2 card table for backward references (dirty + youngGen
cards) so H1 survivors referenced from H2 are kept alive and the
references adjusted.

Major GC extends all four PS phases:

- *marking*: reset region live bits; treat H1 objects referenced from H2
  as roots; fence H1-to-H2 edges while setting region live bits (with
  dependency-list propagation); compute the transitive closure of tagged
  root key-objects; free dead regions at the end.
- *pre-compaction*: assign H2 addresses (region by label) to movers.
- *adjustment*: adjust backward references, record new cross-region
  references, and mark new backward references dirty.
- *compaction*: write movers to the device through promotion buffers.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..clock import Clock
from ..config import VMConfig
from ..errors import DeviceFullError, SegmentationFault, SimulatedCrash
from ..gc.engine import TaskBag, chunked_sweep
from ..gc.parallel_scavenge import ParallelScavenge
from ..heap.heap import ManagedHeap
from ..heap.object_model import HeapObject, SpaceId
from ..heap.roots import RootSet
from ..heap.store import (
    FLAG_H2_CANDIDATE,
    FLAG_METADATA,
    FLAG_REFERENCE,
    NO_SPACE,
    SPACE_FREED,
    SPACE_H2,
    SPACE_OLD,
    SPACE_TO,
)
from .h2_card_table import CardState
from .h2_heap import H2Heap
from .hints import HintInterface
from .promotion import DIRECT_WRITE_THRESHOLD
from .thresholds import AdaptiveThresholdPolicy, ThresholdPolicy


class TeraHeapCollector(ParallelScavenge):
    """Parallel Scavenge + TeraHeap (the paper's system)."""

    name = "teraheap"

    def __init__(
        self,
        heap: ManagedHeap,
        roots: RootSet,
        clock: Clock,
        config: VMConfig,
        h2: H2Heap,
        hints: HintInterface,
        governor=None,
    ):
        super().__init__(heap, roots, clock, config)
        self.h2 = h2
        self.hints = hints
        #: optional :class:`~repro.teraheap.governor.H2Governor`
        self.governor = governor
        policy_cls = (
            AdaptiveThresholdPolicy
            if config.teraheap.adaptive_thresholds
            else ThresholdPolicy
        )
        self.policy = policy_cls(
            heap_capacity=config.heap_size,
            high_threshold=config.teraheap.high_threshold,
            low_threshold=config.teraheap.low_threshold,
            use_move_hint=config.teraheap.use_move_hint,
            governor=governor,
        )
        self.four_state = config.teraheap.four_state_cards
        #: forward (H1->H2) references fenced per GC, Section 7.4 metric
        self.forward_refs_fenced = 0
        #: backward-reference card segments scanned during minor GC
        self.h2_cards_scanned_minor = 0
        #: movers denied an H2 address (device full / degraded H2)
        self.h2_transfers_denied = 0
        #: scanned H2 cards as (card, resident oids) pairs
        self._minor_scanned: List[Tuple[int, List[int]]] = []
        self._major_scanned: List[Tuple[int, List[int]]] = []
        self._moved_labels: Set[str] = set()
        #: per-cycle placement outcome, reported to the governor at the
        #: end of every major GC
        self._cycle_denied = 0
        self._cycle_placed_bytes = 0

    # ==================================================================
    # Card scanning helpers
    # ==================================================================
    def _scan_h2_cards(
        self, major: bool
    ) -> Tuple[List[int], List[Tuple[int, List[int]]]]:
        """Scan the H2 card table; return (H1 roots, scanned cards).

        Checking the conceptual table costs one check per card (the table
        is a DRAM byte array); each to-scan card additionally loads its
        segment's objects from the device and inspects their references.
        The sweep and the per-card scans are decomposed into engine tasks
        — sweep chunks plus stripe-owned card slices — and scheduled over
        at most ``scan_parallelism`` workers, so stripe ownership bounds
        the parallelism exactly as in the striped table design (§3.4).
        Device reads (``scan_load``) stay serial: bandwidth is not
        divisible by GC threads.
        """
        table = self.h2.card_table
        cost = self.cost
        eng_cfg = self.config.engine
        parallelism = table.scan_parallelism(self.config.gc_threads)
        bag = TaskBag()
        chunked_sweep(
            bag,
            "h2-sweep",
            table.num_cards,
            cost.card_check_cost,
            eng_cfg.h2_sweep_chunk_cards,
        )
        cards = table.cards_to_scan(major=major)
        if not self.four_state and not major:
            # Two-state ablation: oldGen knowledge is unavailable, so
            # minor GC must also rescan segments that only reference the
            # old generation.
            extra = [
                idx
                for idx, st in table.iter_states()
                if st is CardState.OLD_GEN
            ]
            cards = sorted(set(cards) | set(extra))
        st = self.store
        space_arr = st.space
        refs_arr = st.refs
        region_arr = st.region_id
        visit_cost = cost.gc_visit_cost
        ref_cost = cost.gc_ref_cost
        roots: List[int] = []
        scanned: List[Tuple[int, List[int]]] = []
        slice_work: Dict[int, float] = {}
        for card in cards:
            lo, hi = table.card_range(card)
            region = self.h2.region_at(lo)
            if region is None or region.is_empty:
                table.set_state(card, CardState.CLEAN)
                continue
            on_card = [
                o.oid for o in region.objects_overlapping(lo, hi)
            ]
            # Reading device-resident objects to inspect their references.
            self.h2.scan_load(lo, hi - lo)
            card_work = 0.0
            for oid in on_card:
                targets = refs_arr[oid]
                card_work += visit_cost + ref_cost * len(targets)
                own_region = region_arr[oid]
                for t in targets:
                    code = space_arr[t]
                    if code <= SPACE_OLD:
                        if major or code <= SPACE_TO:
                            roots.append(t)
                    elif (
                        code == SPACE_H2
                        and region_arr[t] != own_region
                    ):
                        # A mutator created this cross-region reference
                        # after the move; install the dependency edge
                        # before the card can be cleaned, so region
                        # liveness propagates correctly.
                        self.h2.record_cross_region_ref(
                            own_region, region_arr[t]
                        )
            # Scanned cards become stripe-owned slice tasks: a slice
            # starts on its owning worker's deque and only migrates to
            # another worker by stealing.
            group = table.stripe_of_card(card) % eng_cfg.h2_slice_groups
            slice_work[group] = slice_work.get(group, 0.0) + card_work
            scanned.append((card, on_card))
        for group in sorted(slice_work):
            bag.add(
                f"h2-slice-{group}",
                slice_work[group],
                kind="h2scan",
                affinity=group,
            )
        phase = "h2-major-scan" if major else "h2-minor-scan"
        self._run_phase(bag, phase, workers=parallelism)
        return roots, scanned

    def _classify_card(self, oids: List[int]) -> CardState:
        """Post-scan card state from the segment's backward references."""
        space_arr = self.store.space
        refs_arr = self.store.refs
        has_young = False
        has_old = False
        for oid in oids:
            for t in refs_arr[oid]:
                code = space_arr[t]
                if code <= SPACE_TO:
                    has_young = True
                elif code == SPACE_OLD:
                    has_old = True
        if has_young:
            return CardState.YOUNG_GEN
        if has_old:
            if self.four_state:
                return CardState.OLD_GEN
            return CardState.DIRTY
        return CardState.CLEAN

    # ==================================================================
    # Minor GC hooks
    # ==================================================================
    def minor_h2_roots(self) -> List[int]:
        with self.clock.sub_context("h2_minor_scan"):
            roots, self._minor_scanned = self._scan_h2_cards(major=False)
        self.h2_cards_scanned_minor += len(self._minor_scanned)
        space_arr = self.store.space
        return [r for r in roots if space_arr[r] <= SPACE_TO]

    def minor_h2_post_copy(self, relocated: Set[int]) -> None:
        """Adjust backward references to relocated survivors and install
        the new card states."""
        table = self.h2.card_table
        refs_arr = self.store.refs
        with self.clock.sub_context("h2_minor_scan"):
            for card, oids in self._minor_scanned:
                lo, hi = table.card_range(card)
                needs_adjust = any(
                    t in relocated
                    for oid in oids
                    for t in refs_arr[oid]
                )
                if needs_adjust:
                    # Rewriting pointers inside device-resident objects.
                    self.h2.scan_store(lo, hi - lo)
                table.set_state(card, self._classify_card(oids))
        self._minor_scanned = []
        if self.config.teraheap.writeback_policy == "flush":
            # Eager durability: mutator stores to H2 become durable at
            # every minor GC instead of waiting for the next commit.
            with self.clock.sub_context("h2_writeback"):
                self.h2._io("h2_msync", self.h2.mapping.msync)

    # ==================================================================
    # Major GC hooks
    # ==================================================================
    def pre_major_mark(self) -> None:
        self.h2.reset_live_bits()

    def major_h2_roots(self) -> List[int]:
        roots, self._major_scanned = self._scan_h2_cards(major=True)
        return roots

    def on_forward_reference(self, target: HeapObject) -> None:
        if target.space is SpaceId.FREED:
            raise SegmentationFault(
                f"live H1 object references reclaimed H2 object #{target.oid}"
            )
        self.forward_refs_fenced += 1
        if target.region_id >= 0:
            self.h2.mark_region_live(target.region_id)

    def select_h2_movers(
        self, live_oids: List[int], live_bytes: int, epoch: int
    ) -> List[Tuple[HeapObject, str]]:
        if (
            self.h2.resilience is not None
            and self.h2.resilience.degraded
        ):
            # Graceful degradation: H2 transfers are disabled, objects
            # stay in H1 (the serialization-fallback baseline).  Tagged
            # candidates keep their labels in case H2 recovers in a
            # future configuration.
            return []
        cost = self.cost
        st = self.store
        space_arr = st.space
        epoch_arr = st.mark_epoch
        refs_arr = st.refs
        flags_arr = st.flags
        label_list = st.label
        handle = st.handle
        visit_cost = cost.gc_visit_cost
        ref_cost = cost.gc_ref_cost
        # --- transitive closure of tagged root key-objects --------------
        # Order-preserving DFS over the store columns: same stack-pop
        # order (and batch boundaries) as the old per-handle traversal.
        groups: Dict[str, List[HeapObject]] = {}
        bag = TaskBag()
        closure = bag.batcher(
            "h2-closure", "scan", self.batch.scan_batch_objects
        )
        for root in self.hints.tagged_roots():
            root_oid = root.oid
            if epoch_arr[root_oid] < epoch or space_arr[root_oid] > SPACE_OLD:
                continue  # dead or already-moved roots do not transfer
            label = label_list[root_oid]
            members = groups.setdefault(label, [])
            stack = [root_oid]
            while stack:
                oid = stack.pop()
                if space_arr[oid] > SPACE_OLD:
                    continue
                flags = flags_arr[oid]
                if (
                    label_list[oid] == label
                    and oid != root_oid
                    and flags & FLAG_H2_CANDIDATE
                ):
                    continue
                if flags & (FLAG_METADATA | FLAG_REFERENCE):
                    # JVM metadata and java.lang.ref.Reference objects are
                    # excluded from the closure (Section 3.2).
                    continue
                if label_list[oid] is not None and label_list[oid] != label:
                    continue  # claimed by another group first
                if flags & FLAG_H2_CANDIDATE:
                    continue
                label_list[oid] = label
                flags_arr[oid] = flags | FLAG_H2_CANDIDATE
                members.append(handle(oid))
                targets = refs_arr[oid]
                closure.add(visit_cost + ref_cost * len(targets))
                for t in targets:
                    if space_arr[t] <= SPACE_OLD and not (
                        flags_arr[t] & FLAG_H2_CANDIDATE
                    ):
                        stack.append(t)
        closure.flush()
        self._run_phase(bag, "h2-closure", workers=self.major_workers())

        # Include groups tagged in earlier GCs but not yet transferred.
        grouped_oids = {
            o.oid for members in groups.values() for o in members
        }
        for oid in live_oids:
            if (
                flags_arr[oid] & FLAG_H2_CANDIDATE
                and label_list[oid] is not None
                and oid not in grouped_oids
            ):
                groups.setdefault(label_list[oid], []).append(handle(oid))
                grouped_oids.add(oid)

        # --- transfer decision ------------------------------------------
        decision = self.policy.decide(live_bytes)
        movers: List[Tuple[HeapObject, str]] = []
        moved_labels: Set[str] = set()
        if decision.move_hinted:
            # The governor may cap hinted bytes (circuit open / half-open
            # probe); None means unlimited, the normal case.
            hinted_budget = decision.hinted_budget
            for label in list(groups):
                if hinted_budget is not None and hinted_budget <= 0:
                    break
                if self.hints.is_move_pending(label):
                    members = groups.pop(label)
                    if hinted_budget is None:
                        movers.extend((o, label) for o in members)
                        moved_labels.add(label)
                        continue
                    taken = []
                    for obj in members:
                        if hinted_budget <= 0:
                            break
                        taken.append(obj)
                        hinted_budget -= obj.size
                    movers.extend((o, label) for o in taken)
                    if len(taken) == len(members):
                        moved_labels.add(label)
                    # A partially-moved hinted label keeps its pending
                    # hint and candidate tags; the rest follows once the
                    # circuit allows it.
        if decision.move_unhinted and groups:
            # Pressure transfer: move marked objects oldest-label-first
            # until the byte budget runs out (the low threshold, §3.2).
            # Later labels — typically the still-mutable current message
            # store — stay in H1 until their own hint arrives.
            budget = decision.unhinted_budget
            for label in list(groups):
                if budget is not None and budget <= 0:
                    break
                members = groups.pop(label)
                taken = []
                for obj in members:
                    if budget is not None and budget <= 0:
                        break
                    taken.append(obj)
                    if budget is not None:
                        budget -= obj.size
                movers.extend((o, label) for o in taken)
                if len(taken) == len(members):
                    moved_labels.add(label)
                # Untaken members keep their candidate tag and move at a
                # later GC (or with their h2_move hint).
        self._moved_labels = moved_labels
        # Whatever was not selected keeps its candidate tag and waits for
        # its h2_move() or for heap pressure.
        return [(o, lbl) for o, lbl in movers if o.mark_epoch >= epoch]

    def after_marking(self, epoch: int) -> None:
        self.h2.reclaim_dead_regions(epoch)

    def assign_h2_addresses(
        self, movers: List[Tuple[HeapObject, str]], epoch: int
    ) -> List[Tuple[HeapObject, str]]:
        """Place movers in H2; returns the subset that actually got an
        address.

        A mover denied by a device-full condition keeps its candidate
        tag and falls back to H1 compaction this cycle; the denial is
        charged against the resilience failure budget (device-full is
        not retryable), so repeated denials degrade H2 gracefully
        instead of aborting the collection.
        """
        placed: List[Tuple[HeapObject, str]] = []
        res = self.h2.resilience
        denied = 0
        abort = False
        for obj, label in movers:
            if abort or (res is not None and res.degraded):
                denied += 1
                continue
            try:
                self.h2.assign_address(obj, label, epoch)
            except DeviceFullError as exc:
                denied += 1
                if self.governor is not None:
                    # Circuit-breaker fail-fast: one denial is evidence
                    # enough.  Skipping the cycle's remaining movers
                    # (they keep their candidate tags) protects the
                    # legacy failure budget the governor supersedes and
                    # lets the circuit trip before the budget burns.
                    abort = True
                if getattr(exc, "budget_denial", False):
                    # An arbiter-imposed byte budget, not a sick device:
                    # the movers fall back to H1 this cycle, but the
                    # denial must not burn the resilience failure budget
                    # — the quota may well grow back next epoch.
                    abort = True
                    continue
                if res is not None:
                    res.note_failure("h2_assign_address", exc)
                    continue
                raise
            obj.h2_candidate = False
            placed.append((obj, label))
        self.h2_transfers_denied += denied
        self._cycle_denied = denied
        self._cycle_placed_bytes = sum(o.size for o, _ in placed)
        return placed

    def adjust_mover_references(
        self, movers: List[Tuple[HeapObject, str]], stayers: Set[int]
    ) -> None:
        table = self.h2.card_table
        st = self.store
        space_arr = st.space
        refs_arr = st.refs
        region_arr = st.region_id
        addr_arr = st.address
        for obj, _ in movers:
            oid = obj.oid
            own_region = region_arr[oid]
            for t in refs_arr[oid]:
                if space_arr[t] == SPACE_H2 and region_arr[t] != own_region:
                    self.h2.record_cross_region_ref(
                        own_region, region_arr[t]
                    )
                elif t in stayers:
                    # New backward (H2 -> H1) reference.
                    table.mark_dirty(addr_arr[oid])

    def adjust_h2_backward_refs(self) -> None:
        """Rewrite backward references to compacted H1 locations and
        reclassify the scanned cards."""
        table = self.h2.card_table
        st = self.store
        space_arr = st.space
        refs_arr = st.refs
        region_arr = st.region_id
        fwd_space_arr = st.forward_space
        for card, _ in self._major_scanned:
            lo, hi = table.card_range(card)
            region = self.h2.region_at(lo)
            if region is None or region.is_empty:
                # The segment's region was reclaimed during marking.
                table.set_state(card, CardState.CLEAN)
                continue
            # Recompute the segment's contents: pre-compaction may have
            # placed fresh movers into this card since the marking scan.
            oids = [o.oid for o in region.objects_overlapping(lo, hi)]
            has_backward = any(
                space_arr[t] <= SPACE_OLD or fwd_space_arr[t] != NO_SPACE
                for oid in oids
                for t in refs_arr[oid]
            )
            if has_backward:
                self.h2.scan_store(lo, hi - lo)
            # A backward-referenced H1 object may itself have moved to H2
            # this cycle: the reference is now cross-region and must enter
            # the dependency lists before its tracking card goes clean.
            for oid in oids:
                if space_arr[oid] != SPACE_H2:
                    continue
                own_region = region_arr[oid]
                for t in refs_arr[oid]:
                    if (
                        space_arr[t] == SPACE_H2
                        and region_arr[t] != own_region
                    ):
                        self.h2.record_cross_region_ref(
                            own_region, region_arr[t]
                        )
            state = self._classify_after_major(oids)
            table.set_state(card, state)
        self._major_scanned = []

    def _classify_after_major(self, oids: List[int]) -> CardState:
        st = self.store
        space_arr = st.space
        refs_arr = st.refs
        fwd_space_arr = st.forward_space
        has_young = False
        has_old = False
        for oid in oids:
            if space_arr[oid] == SPACE_FREED:
                continue
            for t in refs_arr[oid]:
                # The post-compaction space: forwarded targets classify
                # by destination.
                code = fwd_space_arr[t]
                if code == NO_SPACE:
                    code = space_arr[t]
                if code <= SPACE_TO:
                    has_young = True
                elif code == SPACE_OLD:
                    has_old = True
        if has_young:
            return CardState.YOUNG_GEN
        if has_old:
            return CardState.OLD_GEN if self.four_state else CardState.DIRTY
        return CardState.CLEAN

    def mover_copy_batches(
        self, movers: List[Tuple[HeapObject, str]]
    ) -> List[List[Tuple[HeapObject, str]]]:
        """Split movers into copy batches matching promotion-buffer flushes.

        Movers are grouped per destination region (each region owns one
        promotion buffer) and chunked so every batch's bytes fit one
        buffer fill — the batch boundaries land exactly where
        :class:`~repro.teraheap.promotion.PromotionManager` flushes.
        Objects at or above the direct-write threshold bypass the buffer
        and form single-object batches, mirroring the direct-write path.
        """
        capacity = self.config.teraheap.promotion_buffer_size
        by_region: Dict[int, List[Tuple[HeapObject, str]]] = {}
        order: List[int] = []
        for obj, label in movers:
            if obj.region_id not in by_region:
                order.append(obj.region_id)
                by_region[obj.region_id] = []
            by_region[obj.region_id].append((obj, label))
        batches: List[List[Tuple[HeapObject, str]]] = []
        for region_index in order:
            batch: List[Tuple[HeapObject, str]] = []
            batch_bytes = 0
            for obj, label in by_region[region_index]:
                if obj.size >= DIRECT_WRITE_THRESHOLD:
                    if batch:
                        batches.append(batch)
                        batch, batch_bytes = [], 0
                    batches.append([(obj, label)])
                    continue
                if batch and batch_bytes + obj.size > capacity:
                    batches.append(batch)
                    batch, batch_bytes = [], 0
                batch.append((obj, label))
                batch_bytes += obj.size
            if batch:
                batches.append(batch)
        return batches

    def compact_movers(self, movers: List[Tuple[HeapObject, str]]) -> None:
        res = self.h2.resilience
        plan = res.plan if res is not None else None
        # Mover copy cost is the device write itself (the CPU copy into
        # the promotion buffer overlaps it), so batches only shape crash
        # granularity — they add no charge of their own.
        for seq, batch in enumerate(self.mover_copy_batches(movers)):
            if plan is not None and plan.crash_outcome("major_compact"):
                # Killed between copy batches: buffered-but-unflushed
                # objects and all DRAM metadata die with the process.
                log = self.h2.page_cache.resilience_log
                if log is not None:
                    log.record_crash(
                        self.clock.now,
                        "major_compact",
                        f"batch {seq} of {len(batch)} objects",
                    )
                raise SimulatedCrash(
                    "simulated kill mid major-GC compaction "
                    f"(copy batch {seq})",
                    safepoint="major_compact",
                    op_index=plan.op_index,
                )
            for obj, _ in batch:
                self.h2.write_object(obj)
        self.h2.finish_compaction()
        if self._moved_labels:
            self.hints.consume_moved(self._moved_labels)
            self._moved_labels = set()

    def on_major_complete(self, epoch: int) -> None:
        """Commit the durable epoch and report placement to the governor."""
        if self.config.teraheap.writeback_policy != "none":
            with self.clock.sub_context("h2_commit"):
                self.h2.commit_epoch(
                    epoch,
                    note=self.h2.checkpoint_note,
                    fsync_cost=self.cost.fsync_cost,
                )
        if self.governor is not None:
            # Circuit feedback: a clean probe cycle is the evidence that
            # lets an OPEN circuit start closing again.
            self.governor.note_transfer_result(
                self._cycle_placed_bytes, self._cycle_denied
            )
        self._cycle_denied = 0
        self._cycle_placed_bytes = 0
