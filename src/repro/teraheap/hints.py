"""The hint-based interface (Section 3.2).

Two calls, exported to frameworks (through ``Unsafe`` in the real JVM):

- ``h2_tag_root(obj, label)`` — tag a root key-object with a label.  The
  tag lives in the extra header word; during the next major GC the
  collector computes the transitive closure of tagged roots and labels
  every member.
- ``h2_move(label)`` — advise TeraHeap that the object group under
  ``label`` is ready (typically: has become immutable) so the next major
  GC moves it to H2.

Decoupling tagging from transfer lets frameworks delay movement of objects
that are still being updated, avoiding read-modify-write traffic on the
device (Section 7.2 shows a 29-55% win from this).
"""

from __future__ import annotations

from typing import Set

from ..errors import InvalidHintError
from ..heap.object_model import HeapObject


class HintInterface:
    """Runtime state of the hint interface: tagged roots + pending moves."""

    def __init__(self) -> None:
        self._tagged_roots: dict = {}
        self._pending_moves: Set[str] = set()
        self.tag_calls = 0
        self.move_calls = 0

    # ------------------------------------------------------------------
    def h2_tag_root(self, obj: HeapObject, label: str) -> None:
        """Tag ``obj`` as a root key-object for H2 placement."""
        if obj is None:
            raise InvalidHintError("h2_tag_root: object is None")
        if not label:
            raise InvalidHintError("h2_tag_root: empty label")
        if obj.in_h2:
            raise InvalidHintError(
                f"h2_tag_root: object #{obj.oid} already lives in H2"
            )
        obj.label = label
        self._tagged_roots[obj.oid] = obj
        self.tag_calls += 1

    def h2_move(self, label: str) -> None:
        """Advise that objects labelled ``label`` move at the next major GC."""
        if not label:
            raise InvalidHintError("h2_move: empty label")
        self._pending_moves.add(label)
        self.move_calls += 1

    # ------------------------------------------------------------------
    def tagged_roots(self):
        """Root key-objects still resident in H1 (H2 residents are done)."""
        return [o for o in self._tagged_roots.values() if o.in_h1]

    def is_move_pending(self, label: str) -> bool:
        return label in self._pending_moves

    def pending_labels(self) -> Set[str]:
        return set(self._pending_moves)

    def consume_moved(self, labels: Set[str]) -> None:
        """Forget labels whose groups have been transferred."""
        self._pending_moves -= labels
        self._tagged_roots = {
            oid: obj
            for oid, obj in self._tagged_roots.items()
            if obj.in_h1
        }
