"""Promotion buffers: batched asynchronous writes of objects into H2.

Moving objects one ``write()`` at a time would cost a system call per
small object.  TeraHeap keeps a 2 MB promotion buffer per destination
region and flushes objects to the device in batches with explicit
asynchronous I/O (Section 3.2).  Objects of 1 MB or more bypass the buffer
and are written directly.
"""

from __future__ import annotations

from typing import Dict, List

from ..devices.mmap import MappedFile
from ..heap.object_model import HeapObject
from ..units import MiB

#: objects at or above this size skip the buffer (Section 3.2: "<1MB").
#: Simulated objects are coarse (one object stands for thousands of
#: paper-scale records), so the threshold is expressed in real bytes —
#: batching applies to anything smaller than the buffer itself.
DIRECT_WRITE_THRESHOLD = 1 * MiB


class PromotionBuffer:
    """One region's promotion buffer."""

    def __init__(self, region_index: int, capacity: int):
        self.region_index = region_index
        self.capacity = capacity
        self.buffered: List[HeapObject] = []
        self.buffered_bytes = 0
        self.flushes = 0

    def fits(self, obj: HeapObject) -> bool:
        return self.buffered_bytes + obj.size <= self.capacity

    def append(self, obj: HeapObject) -> None:
        self.buffered.append(obj)
        self.buffered_bytes += obj.size


class PromotionManager:
    """All promotion buffers plus the flush path to the mapped file."""

    def __init__(self, mapping: MappedFile, buffer_capacity: int = 2 * MiB):
        self.mapping = mapping
        self.buffer_capacity = buffer_capacity
        self._buffers: Dict[int, PromotionBuffer] = {}
        self.objects_written = 0
        self.bytes_written = 0
        self.direct_writes = 0

    # ------------------------------------------------------------------
    def write_object(self, obj: HeapObject, region_index: int) -> None:
        """Stage ``obj`` (already assigned an H2 address) for device write."""
        if obj.size >= DIRECT_WRITE_THRESHOLD:
            # Large objects go straight to the device: one big sequential
            # write is already efficient.
            self.mapping.write_explicit(obj.address, obj.size)
            self.objects_written += 1
            self.bytes_written += obj.size
            self.direct_writes += 1
            return
        buffer = self._buffers.get(region_index)
        if buffer is None:
            buffer = PromotionBuffer(region_index, self.buffer_capacity)
            self._buffers[region_index] = buffer
        if not buffer.fits(obj):
            self._flush(buffer)
        buffer.append(obj)

    @staticmethod
    def _span(buffer: PromotionBuffer):
        """The (address, nbytes) span the buffer's staged objects cover.

        Pure: the buffer is only emptied by :meth:`_commit` *after* the
        device write succeeds, so a failed (fault-injected) write leaves
        the staged objects in place and a retry re-issues the same span.
        """
        if not buffer.buffered:
            return None
        lo = min(o.address for o in buffer.buffered)
        hi = max(o.end_address() for o in buffer.buffered)
        return (lo, hi - lo)

    def _commit(self, buffer: PromotionBuffer) -> None:
        self.objects_written += len(buffer.buffered)
        self.bytes_written += buffer.buffered_bytes
        buffer.flushes += 1
        buffer.buffered = []
        buffer.buffered_bytes = 0

    def _flush(self, buffer: PromotionBuffer) -> None:
        span = self._span(buffer)
        if span is not None:
            # One batched sequential write covering the staged objects.
            self.mapping.write_explicit(*span, safepoint="promotion_flush")
            self._commit(buffer)

    def flush_all(self) -> None:
        """Drain every buffer as one coalesced batch (end of compaction).

        Coalescing matters with huge pages: many small regions share one
        page, and a single large flush writes each page once.
        """
        spans = []
        pending = []
        for buffer in self._buffers.values():
            span = self._span(buffer)
            if span is not None:
                spans.append(span)
                pending.append(buffer)
        if spans:
            self.mapping.write_explicit_many(spans, safepoint="h2_flush")
        for buffer in pending:
            self._commit(buffer)
        self._buffers.clear()
