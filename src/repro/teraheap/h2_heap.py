"""The H2 heap: region allocator over a memory-mapped device file.

H2 coexists with H1 in the JVM's virtual address space (Figure 1): H1 is
an anonymous mapping in DRAM, H2 a file-backed mapping on the storage
device.  The OS virtual-memory system translates references into H2, so
mutators access H2 objects with plain loads/stores — no S/D, no custom
lookup.  All H2 *metadata* (region array, dependency lists, card table)
stays in DRAM (Figure 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..clock import Clock
from ..config import TeraHeapConfig
from ..devices.base import AccessPattern, Device
from ..devices.durability import DurableImage
from ..devices.mmap import MappedFile
from ..devices.page_cache import PageCache
from ..errors import (
    DeviceFullError,
    OutOfMemoryError,
    SimulatedCrash,
    UnrecoverableCrash,
)
from ..heap.object_model import HeapObject
from .h2_card_table import CardState, H2CardTable
from .promotion import PromotionManager
from .recovery import RecoveryReport, RegionJournalEntry, header_page
from .region_groups import RegionGroups
from .regions import PER_REGION_METADATA_BYTES, Region, RegionLiveness

#: base virtual address of the H2 mapping, disjoint from H1
H2_BASE = 0x1_0000_0000


class H2Heap:
    """Region-based second heap with lazy bulk reclamation."""

    def __init__(
        self,
        config: TeraHeapConfig,
        device: Device,
        clock: Clock,
        page_cache_size: int,
        resilience=None,
        store=None,
    ):
        self.config = config
        #: the heap store recovery rehydrates objects into; ``None``
        #: falls back to the process-default store (single-VM path)
        self.store = store
        #: optional ResiliencePolicy; when set, the device is fronted by a
        #: fault injector and every H2 I/O path runs under the retry loop
        self.resilience = resilience
        if resilience is not None:
            device = resilience.wrap_device(device)
        self.device = device
        self.clock = clock
        self.page_cache = PageCache(
            device,
            page_cache_size,
            fault_plan=resilience.plan if resilience is not None else None,
        )
        if resilience is not None:
            self.page_cache.resilience_log = resilience.log
        self.mapping = MappedFile(
            device,
            H2_BASE,
            config.h2_size,
            self.page_cache,
            huge_pages=config.huge_pages,
            fault_plan=resilience.plan if resilience is not None else None,
        )
        self.card_table = H2CardTable(
            H2_BASE,
            config.h2_size,
            config.card_segment_size,
            config.stripe_size,
            stripe_aligned=config.stripe_aligned,
        )
        self.promotion = PromotionManager(
            self.mapping, config.promotion_buffer_size
        )
        self.num_regions = config.h2_size // config.region_size
        #: allocated regions by index (lazily created)
        self.regions: Dict[int, Region] = {}
        self._free_indices: List[int] = []
        self._next_fresh = 0
        #: open (current) region per label, for append placement
        self._open_by_label: Dict[str, int] = {}
        #: union-find groups, used only under the "groups" policy
        self.region_groups: Optional[RegionGroups] = (
            RegionGroups() if config.region_policy == "groups" else None
        )
        #: group representatives marked live this GC (groups policy)
        self._live_group_roots: Set[int] = set()
        #: per-GC record of region liveness, feeding Figure 10
        self.liveness_log: List[RegionLiveness] = []
        self.regions_reclaimed = 0
        self.bytes_reclaimed = 0
        self.regions_allocated_total = 0
        self.objects_moved = 0
        self.bytes_moved = 0
        #: region indices quarantined by crash recovery (torn data,
        #: stale-epoch headers) mapped to the reason; never reallocated
        self.quarantined: Dict[int, str] = {}
        #: application checkpoint note persisted with the next commit
        self.checkpoint_note: str = ""
        #: completed commit epochs (msync + journal + superblock)
        self.commits = 0
        #: the report of the recovery that built this heap, if any
        self.recovery_report: Optional[RecoveryReport] = None
        #: soft cap on this heap's device footprint in bytes; ``None``
        #: leaves the whole ``h2_size`` mapping usable.  The server
        #: layer's memory-pressure arbiter carves a shared device across
        #: tenants by moving these budgets each epoch; exceeding the
        #: budget denies the region (a graceful device-full, so movers
        #: fall back to the in-H1 path, not an abort).
        self.byte_budget: Optional[int] = None

    # ------------------------------------------------------------------
    # Region management
    # ------------------------------------------------------------------
    @property
    def metadata_bytes(self) -> int:
        """Current DRAM metadata footprint (Figure 2 structures)."""
        return len(self.regions) * PER_REGION_METADATA_BYTES

    def used_bytes(self) -> int:
        return sum(r.used for r in self.regions.values())

    def active_regions(self) -> List[Region]:
        return [r for r in self.regions.values() if not r.is_empty]

    def _io(self, op: str, fn):
        """Run one H2 I/O operation under the resilience policy (if any)."""
        if self.resilience is None:
            return fn()
        return self.resilience.run(op, fn)

    def _new_region(self, label: str, epoch: int) -> Region:
        if (
            self.resilience is not None
            and self.resilience.plan.allocation_fault(
                self.device.name,
                self.config.region_size,
                now=self.clock.now,
            )
        ):
            raise DeviceFullError(
                f"injected device-full allocating an H2 region on "
                f"{self.device.name}",
                device=self.device.name,
                requested=self.config.region_size,
            )
        if self.byte_budget is not None:
            # Device footprint = every allocated region, empty or not —
            # an empty region still occupies its slice of the mapping.
            in_use = len(self.regions) - len(self._free_indices)
            if (in_use + 1) * self.config.region_size > self.byte_budget:
                denial = DeviceFullError(
                    f"H2 byte budget exhausted on {self.device.name}: "
                    f"{in_use} regions in use against a budget of "
                    f"{self.byte_budget} B",
                    device=self.device.name,
                    requested=self.config.region_size,
                )
                # Marks a quota denial (elastic, arbiter-imposed) apart
                # from a genuinely full or faulted device.
                denial.budget_denial = True
                raise denial
        if self._free_indices:
            index = self._free_indices.pop()
            region = self.regions[index]
        elif self._next_fresh < self.num_regions:
            index = self._next_fresh
            self._next_fresh += 1
            start = H2_BASE + index * self.config.region_size
            region = Region(index, start, self.config.region_size)
            self.regions[index] = region
        else:
            raise OutOfMemoryError(
                "H2 exhausted: no free regions",
                requested=self.config.region_size,
            )
        region.label = label
        region.allocated_epoch = epoch
        self.regions_allocated_total += 1
        return region

    def region_at(self, address: int) -> Optional[Region]:
        index = (address - H2_BASE) // self.config.region_size
        return self.regions.get(index)

    # ------------------------------------------------------------------
    # Object placement (compaction phase of major GC)
    # ------------------------------------------------------------------
    def assign_address(self, obj: HeapObject, label: str, epoch: int) -> Region:
        """Pick an H2 address for ``obj`` in its label's open region.

        Objects with the same label land in the same region so whole
        groups can be reclaimed en masse; objects never span regions.
        Called during pre-compaction (Section 4).

        Under size-aware placement (§7.3 future work), objects at or
        above a quarter region are segregated into per-label large-object
        regions, so sparse regions of big arrays can die independently of
        dense regions of small objects.
        """
        if obj.size > self.config.region_size:
            raise OutOfMemoryError(
                f"object of {obj.size} B exceeds H2 region size "
                f"{self.config.region_size} B",
                requested=obj.size,
            )
        if (
            self.config.size_aware_placement
            and obj.size >= self.config.region_size // 4
        ):
            label = f"{label}:large"
        index = self._open_by_label.get(label)
        region = self.regions.get(index) if index is not None else None
        if region is None or region.label != label or not region.has_room(obj.size):
            region = self._new_region(label, epoch)
            self._open_by_label[label] = region.index
        region.allocate(obj)
        obj.label = label
        self.objects_moved += 1
        self.bytes_moved += obj.size
        return region

    def write_object(self, obj: HeapObject) -> None:
        """Emit the object's bytes through the promotion buffers."""
        self._io(
            "h2_write_object",
            lambda: self.promotion.write_object(obj, obj.region_id),
        )

    def finish_compaction(self) -> None:
        self._io("h2_flush", self.promotion.flush_all)

    # ------------------------------------------------------------------
    # Crash consistency: commit protocol and recovery
    # ------------------------------------------------------------------
    def _journal_deps(self, region: Region) -> tuple:
        """The dependency edges a region's header journal persists.

        Under the "groups" policy the union-find structure carries the
        cross-region information, so the journal records the region's
        group co-members instead; recovery re-unions them.
        """
        if self.region_groups is not None:
            root = self.region_groups.find(region.index)
            return tuple(
                sorted(
                    other.index
                    for other in self.active_regions()
                    if other.index != region.index
                    and self.region_groups.find(other.index) == root
                )
            )
        return tuple(sorted(region.deps))

    def commit_epoch(
        self, epoch: int, note: str = "", fsync_cost: float = 0.0
    ) -> None:
        """Make the current H2 state durable: msync, journal, superblock.

        The three-step protocol gives every crash a well-defined durable
        image: (1) ``msync`` flushes dirty data pages (safepoint
        "msync"); (2) one header journal entry per active region is
        staged and the header pages written as a batch (safepoint
        "region_metadata_update" — a torn header keeps its previous
        shadow entry); (3) the superblock write is the atomic commit
        point (safepoint "epoch_commit" — a kill here either tears the
        in-flight slot, falling back to the previous commit, or lands
        the record just before the process dies).  The fsync barrier
        cost is charged to the clock at the end.
        """
        image = self.page_cache.durable_image
        self._io("h2_msync", self.mapping.msync)
        pages: List[int] = []
        manifest: List[int] = []
        for index in sorted(self.regions):
            region = self.regions[index]
            if region.is_empty:
                continue
            entry = RegionJournalEntry(
                region_index=index,
                epoch=epoch,
                label=region.label or "",
                used_bytes=region.used,
                live=region.live,
                deps=self._journal_deps(region),
                objects=tuple(
                    (obj.address - region.start, obj.size)
                    for obj in region.objects
                ),
            )
            page = header_page(index)
            image.stage_journal(page, index, entry)
            pages.append(page)
            manifest.append(index)
        if pages:
            self._io(
                "h2_region_metadata",
                lambda: self.page_cache.write_metadata(
                    pages, safepoint="region_metadata_update"
                ),
            )
        plan = self.resilience.plan if self.resilience is not None else None
        if plan is not None:
            cut = plan.crash_batch_cut("epoch_commit", 1)
            if cut is not None:
                # The superblock write was in flight when the kill hit:
                # it either tore (previous commit survives) or landed
                # entirely just before the process died.
                self.device.write(
                    self.page_cache.page_size, AccessPattern.RANDOM
                )
                if cut == 0:
                    image.tear_superblock()
                    image.drop_staged()
                else:
                    image.commit_superblock(epoch, manifest, note)
                log = self.page_cache.resilience_log
                if log is not None:
                    log.record_crash(
                        self.clock.now,
                        "epoch_commit",
                        f"epoch={epoch} cut={cut}/1",
                    )
                raise SimulatedCrash(
                    f"simulated kill committing epoch {epoch}",
                    safepoint="epoch_commit",
                    op_index=plan.op_index,
                )
        self._io(
            "h2_superblock",
            lambda: self.device.write(
                self.page_cache.page_size, AccessPattern.RANDOM
            ),
        )
        image.commit_superblock(epoch, manifest, note)
        if fsync_cost:
            self.clock.charge(fsync_cost)
        image.note_sync()
        self.commits += 1

    def recover(self, image: DurableImage) -> RecoveryReport:
        """Rebuild H2 metadata from a crashed process's durable image.

        Must be called on a freshly constructed (empty) H2 heap.  The
        scan reads the superblock, then every manifest region's header
        journal entry, quarantining regions whose header epoch does not
        match the committed epoch ("stale-epoch"), whose committed data
        extent is torn or unwritten ("torn-data"), or whose object
        records do not tile the extent ("journal-inconsistent").
        Surviving regions are rebuilt — region array entry, rehydrated
        objects, dependency list, conservatively dirtied card segments —
        and their bytes rescanned through the page cache (charging the
        device reads recovery really pays).  An image with no readable
        superblock, or a manifest region with no readable header at all,
        raises :class:`UnrecoverableCrash` with a diff-style report.
        """
        if self.regions:
            raise ValueError("recover() requires a fresh H2 heap")
        self._io(
            "h2_recovery",
            lambda: self.device.read(
                self.page_cache.page_size, AccessPattern.RANDOM
            ),
        )
        if image.superblock is None:
            raise UnrecoverableCrash(
                "durable image unrecoverable:\n"
                "- superblock: expected a readable commit record, "
                "found every slot torn",
                problems=["superblock unreadable"],
            )
        report = RecoveryReport(
            committed_epoch=image.committed_epoch,
            checkpoint_note=image.checkpoint_note,
        )
        # Adopt the image: this heap's future writes continue it.
        image.page_size = self.page_cache.page_size
        self.page_cache.durable_image = image
        problems: List[str] = []
        region_size = self.config.region_size
        for index in image.manifest:
            slots = image.journal_entries(index)
            if not slots:
                problems.append(
                    f"- region {index}: manifest names it but no readable "
                    "header journal entry survives"
                )
                continue
            self._io(
                "h2_recovery",
                lambda: self.device.read(
                    self.page_cache.page_size, AccessPattern.RANDOM
                ),
            )
            entry = image.journal_entry(index, image.committed_epoch)
            if entry is None:
                epochs = sorted(
                    {getattr(e, "epoch", None) for e in slots}
                )
                self.quarantined[index] = (
                    f"stale-epoch: header slots hold epoch(s) {epochs} "
                    f"!= committed {image.committed_epoch}"
                )
                continue
            start = H2_BASE + index * region_size
            span = self.mapping.pages_for(start, max(entry.used_bytes, 1))
            torn = image.torn_in(span)
            missing = image.missing_in(span)
            if torn or missing:
                detail = []
                if torn:
                    detail.append(f"torn pages {sorted(torn)}")
                if missing:
                    detail.append(f"unwritten pages {sorted(missing)}")
                self.quarantined[index] = "torn-data: " + ", ".join(detail)
                continue
            offset = 0
            consistent = True
            for off, size in entry.objects:
                if off != offset or size <= 0:
                    consistent = False
                    break
                offset = off + size
            if (
                not consistent
                or offset != entry.used_bytes
                or entry.used_bytes > region_size
            ):
                self.quarantined[index] = (
                    "journal-inconsistent: object records do not tile "
                    f"[0, {entry.used_bytes})"
                )
                continue
            region = Region(index, start, region_size)
            region.label = entry.label
            region.live = entry.live
            region.allocated_epoch = 0
            self.regions[index] = region
            for _, size in entry.objects:
                obj = HeapObject(
                    size, name=f"recovered:{entry.label}", store=self.store
                )
                region.allocate(obj)
                obj.label = entry.label
            region.deps = set(entry.deps)
            if self.region_groups is not None:
                for dep in entry.deps:
                    self.region_groups.union(index, dep)
            # Rescan the surviving bytes through the page cache.
            self._io(
                "h2_recovery_scan",
                lambda s=start, n=entry.used_bytes: self.mapping.load(s, n),
            )
            # Conservative card state: references inside rehydrated
            # objects are unknown, so every covered segment must rescan.
            first = self.card_table.card_index(start)
            last = self.card_table.card_index(start + entry.used_bytes - 1)
            for card in range(first, last + 1):
                self.card_table.set_state(card, CardState.DIRTY)
            report.recovered[index] = entry.label
            report.objects_recovered += entry.object_count
            report.bytes_recovered += entry.used_bytes
        if problems:
            raise UnrecoverableCrash(
                "durable image unrecoverable:\n" + "\n".join(problems),
                problems=problems,
            )
        report.quarantined = dict(self.quarantined)
        known = set(report.recovered) | set(self.quarantined)
        self._next_fresh = max(known, default=-1) + 1
        self.checkpoint_note = image.checkpoint_note
        self.recovery_report = report
        if self.resilience is not None:
            self.resilience.log.record_recovery(
                self.clock.now,
                report.regions_recovered,
                report.regions_quarantined,
                detail=f"epoch={report.committed_epoch}",
            )
        return report

    # ------------------------------------------------------------------
    # Cross-region references (Section 3.3)
    # ------------------------------------------------------------------
    def record_cross_region_ref(self, src_region: int, dst_region: int) -> None:
        """A reference from an object in ``src_region`` to one in
        ``dst_region`` was created (during object transfer)."""
        if src_region == dst_region:
            return
        if self.region_groups is not None:
            self.region_groups.union(src_region, dst_region)
        else:
            self.regions[src_region].deps.add(dst_region)

    # ------------------------------------------------------------------
    # Liveness (major GC marking, Section 3.3 / Section 4)
    # ------------------------------------------------------------------
    def reset_live_bits(self) -> None:
        for region in self.regions.values():
            region.live = False
        self._live_group_roots = set()

    def mark_region_live(self, index: int) -> None:
        """Set a region's live bit and propagate along dependency lists."""
        if self.region_groups is not None:
            # Group policy: any H1 reference into the group revives it
            # all; membership resolves lazily at reclaim time.
            region = self.regions.get(index)
            if region is not None:
                region.live = True
            self._live_group_roots.add(self.region_groups.find(index))
            return
        start = self.regions.get(index)
        if start is None:
            return
        start.live = True
        # Always walk the start's dependency list — edges may have been
        # recorded after its live bit was first set.
        stack = list(start.deps)
        while stack:
            current = stack.pop()
            region = self.regions.get(current)
            if region is None or region.live:
                continue
            region.live = True
            stack.extend(region.deps)

    def reclaim_dead_regions(self, epoch: int) -> int:
        """Free every allocated, non-live region in bulk (end of marking).

        Freeing costs no device I/O: the allocation pointer is zeroed, the
        dependency list deleted, and the mapped pages dropped without
        writeback.
        """
        # Re-propagate liveness along dependency lists: edges recorded
        # after a region's live bit was set (e.g. during the card scan)
        # must still pin their targets.
        if self.region_groups is not None:
            # Any member of a live group is live.
            for region in self.regions.values():
                if region.live:
                    self._live_group_roots.add(
                        self.region_groups.find(region.index)
                    )
            for region in self.regions.values():
                if (
                    not region.is_empty
                    and self.region_groups.find(region.index)
                    in self._live_group_roots
                ):
                    region.live = True
        else:
            for region in list(self.regions.values()):
                if region.live:
                    self.mark_region_live(region.index)
        reclaimed = []
        for region in self.regions.values():
            if region.is_empty or region.live:
                continue
            self.liveness_log.append(
                RegionLiveness(
                    total_objects=len(region.objects),
                    live_objects=0,
                    used_bytes=region.used,
                    live_bytes=0,
                    capacity=region.capacity,
                )
            )
            self.bytes_reclaimed += region.used
            self.mapping.discard(region.start, region.capacity)
            self.card_table.clear_range(region.start, region.end)
            region.reclaim()
            reclaimed.append(region.index)
        for index in reclaimed:
            self._free_indices.append(index)
            for label, open_index in list(self._open_by_label.items()):
                if open_index == index:
                    del self._open_by_label[label]
        if self.region_groups is not None and reclaimed:
            self.region_groups.remove(reclaimed)
        self.regions_reclaimed += len(reclaimed)
        return len(reclaimed)

    # ------------------------------------------------------------------
    # Statistics (Figure 10, Table 5)
    # ------------------------------------------------------------------
    def finalize_liveness_stats(self, mark_epoch: int) -> List[RegionLiveness]:
        """Record stats for regions still active at shutdown and return the
        complete log (reclaimed + active), the Figure 10 population."""
        log = list(self.liveness_log)
        for region in self.active_regions():
            log.append(region.live_object_stats(mark_epoch))
        return log

    # ------------------------------------------------------------------
    # Mutator access
    # ------------------------------------------------------------------
    def mutator_load(
        self, obj: HeapObject, pattern: AccessPattern = AccessPattern.SEQUENTIAL
    ) -> None:
        """A mutator reads an H2 object: fault pages in through the cache."""
        self._io(
            "h2_mutator_load",
            lambda: self.mapping.load(obj.address, obj.size, pattern),
        )

    def mutator_store(self, obj: HeapObject, nbytes: int = 8) -> None:
        """A mutator updates a field of an H2 object (read-modify-write)."""
        self._io(
            "h2_mutator_store",
            lambda: self.mapping.store(obj.address, nbytes),
        )

    # ------------------------------------------------------------------
    # Streaming spill traffic (raw block copies, no S/D)
    # ------------------------------------------------------------------
    def spill_write(self, nbytes: int) -> None:
        """Write ``nbytes`` of raw in-flight block bytes to the device.

        The streaming executor's backpressure spill: unlike the SD
        policy's off-heap store, the bytes go out as-is (H2 objects need
        no serialization), so the cost is pure device write under the
        retry policy.  Charged to the caller's current clock context.
        """
        if nbytes <= 0:
            return
        self._io(
            "h2_spill_write",
            lambda: self.device.write(nbytes, AccessPattern.SEQUENTIAL),
        )

    def spill_read(self, nbytes: int) -> None:
        """Read a previously spilled raw block back (no deserialization)."""
        if nbytes <= 0:
            return
        self._io(
            "h2_spill_read",
            lambda: self.device.read(nbytes, AccessPattern.SEQUENTIAL),
        )

    # ------------------------------------------------------------------
    # GC access (card-segment scans and backward-reference rewrites)
    # ------------------------------------------------------------------
    def scan_load(self, lo: int, nbytes: int) -> None:
        """GC reads a card segment's objects, under the retry policy."""
        self._io("h2_card_scan", lambda: self.mapping.load(lo, nbytes))

    def scan_store(self, lo: int, nbytes: int) -> None:
        """GC rewrites references in a card segment, under retry."""
        self._io("h2_card_adjust", lambda: self.mapping.store(lo, nbytes))
