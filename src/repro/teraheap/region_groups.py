"""Union-find region groups: the simpler cross-region policy (Section 3.3).

Instead of tracking the *direction* of cross-region references with
dependency lists, this alternative logically merges the source and
destination regions of any cross-region reference into one group.  A group
is live if H1 references any object in any of its regions, so a single
incoming reference keeps the entire group alive — the paper's X->Y->Z
example shows this forfeits reclamation of upstream regions, which is why
the dependency-list design wins.  The ablation benchmark compares both.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set


class RegionGroups:
    """Union-find over region indices with per-group liveness."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._rank: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def add(self, region: int) -> None:
        if region not in self._parent:
            self._parent[region] = region
            self._rank[region] = 0

    def find(self, region: int) -> int:
        """Group representative, with path compression."""
        self.add(region)
        root = region
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[region] != root:
            self._parent[region], region = root, self._parent[region]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the groups of ``a`` and ``b`` (a cross-region reference)."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def same_group(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def group_members(self, region: int) -> Set[int]:
        root = self.find(region)
        return {r for r in self._parent if self.find(r) == root}

    def remove(self, regions: Iterable[int]) -> None:
        """Forget reclaimed regions (their groups dissolve with them)."""
        doomed = set(regions)
        survivors = [r for r in self._parent if r not in doomed]
        # Rebuild: group structure among survivors is preserved by keeping
        # their (compressed) roots, remapping roots that were reclaimed.
        groups: Dict[int, List[int]] = {}
        for r in survivors:
            groups.setdefault(self.find(r), []).append(r)
        self._parent = {}
        self._rank = {}
        for members in groups.values():
            anchor = members[0]
            self.add(anchor)
            for other in members[1:]:
                self.add(other)
                self.union(anchor, other)

    def live_regions(self, h1_referenced: Iterable[int]) -> Set[int]:
        """All regions kept alive by H1 references into their group."""
        live: Set[int] = set()
        live_roots = {self.find(r) for r in h1_referenced}
        for region in self._parent:
            if self.find(region) in live_roots:
                live.add(region)
        return live
