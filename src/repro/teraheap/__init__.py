"""TeraHeap: the paper's contribution.

A second, high-capacity managed heap (H2) memory-mapped over a fast
storage device, coexisting with the DRAM-backed H1:

- :mod:`.hints` — the ``h2_tag_root`` / ``h2_move`` hint interface built on
  key-object opportunism (Section 3.2);
- :mod:`.regions` — region-based H2 organisation with per-region DRAM
  metadata, dependency lists and lazy bulk reclamation (Section 3.3);
- :mod:`.region_groups` — the simpler union-find alternative the paper
  evaluates and rejects (Section 3.3);
- :mod:`.h2_card_table` — the four-state card table, organised in slices
  and stripes, tracking backward (H2 to H1) references (Section 3.4);
- :mod:`.thresholds` — the high/low threshold policy that bounds H1
  pressure between ``h2_move`` hints (Section 3.2);
- :mod:`.promotion` — 2 MB promotion buffers batching object writes;
- :mod:`.h2_heap` — the H2 allocator over a mapped device file;
- :mod:`.collector` — the TeraHeap extension of Parallel Scavenge
  (Section 4).
"""

from .h2_card_table import CardState, H2CardTable
from .h2_heap import H2_BASE, H2Heap
from .hints import HintInterface
from .region_groups import RegionGroups
from .regions import PER_REGION_METADATA_BYTES, Region, metadata_bytes_per_tb
from .thresholds import ThresholdPolicy

__all__ = [
    "CardState",
    "H2CardTable",
    "H2_BASE",
    "H2Heap",
    "HintInterface",
    "PER_REGION_METADATA_BYTES",
    "Region",
    "RegionGroups",
    "ThresholdPolicy",
    "metadata_bytes_per_tb",
]
