"""The H2 governor: a circuit breaker between the collector and H2.

The governor subscribes to the
:class:`~repro.devices.health.DeviceHealthMonitor` and translates device
health into transfer policy:

- ``CLOSED``: normal operation — the threshold policy decides transfers
  exactly as before.
- ``DEGRADED``: the device is slow but serviceable — unhinted (pressure)
  transfer budgets are scaled down so the collector stops shovelling
  bulk data at a struggling device, while hinted moves (the application
  said this data belongs on H2) continue.
- ``OPEN``: the device browned out — unhinted transfers halt entirely
  and hinted moves are capped to a trickle.  While open, the governor
  periodically grants a small *probe* budget with exponential backoff
  between probes; a probe cycle that places its bytes without a denial
  on a healthy device closes the circuit (via DEGRADED, one step at a
  time — re-opening is instant, re-closing is earned).

The :class:`~repro.teraheap.thresholds.ThresholdPolicy` consults
:meth:`transfer_caps` on every decision; the collector reports each
major-GC's placement outcome through :meth:`note_transfer_result`; the
Spark :class:`~repro.frameworks.spark.block_manager.BlockManager` checks
:meth:`blocks_h2_caching` before routing cached partitions at H2; and
the VM checks :meth:`emergency_active` to decide when allocation
failures should trigger backpressure (shed + stall) instead of an
immediate OOM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..clock import Clock
from ..devices.health import DeviceHealthMonitor, DeviceState, HealthTransition


class CircuitState(enum.Enum):
    """H2 transfer circuit: CLOSED (normal) → DEGRADED → OPEN (halted)."""

    CLOSED = "closed"
    DEGRADED = "degraded"
    OPEN = "open"


@dataclass
class CircuitTransition:
    """One circuit-state change, timestamped on the simulated clock."""

    time: float
    old: CircuitState
    new: CircuitState
    reason: str = ""

    def line(self) -> str:
        return (
            f"{self.time:.6f}\t{self.old.value}->{self.new.value}"
            f"\t{self.reason}"
        )


class H2Governor:
    """Circuit breaker driving graceful H2 degradation."""

    def __init__(
        self,
        config,
        monitor: DeviceHealthMonitor,
        clock: Clock,
        log=None,
        owner=None,
    ):
        self.config = config
        self.monitor = monitor
        self.clock = clock
        self.log = log
        self.state = CircuitState.CLOSED
        self.transitions: List[CircuitTransition] = []
        #: times the circuit tripped OPEN
        self.trips = 0
        #: half-open probe budgets granted while OPEN
        self.probes = 0
        self.probe_successes = 0
        self.probe_failures = 0
        self._probe_pending = False
        self._backoff = config.probe_backoff
        self._next_probe_at = float("inf")
        self._close_streak = 0
        # Owner-scoped on shared monitors: retiring `owner` detaches this
        # governor without unhooking sibling tenants' circuits.
        monitor.add_listener(self._on_health, owner=owner)

    # ------------------------------------------------------------------
    def _on_health(self, transition: HealthTransition) -> None:
        new = transition.new
        if new is DeviceState.BROWNOUT:
            self._trip(f"{transition.device} browned out: {transition.reason}")
        elif new is DeviceState.DEGRADED:
            if self.state is CircuitState.CLOSED:
                self._to(
                    CircuitState.DEGRADED,
                    f"{transition.device} degraded: {transition.reason}",
                )
        elif new is DeviceState.HEALTHY:
            # OPEN stays open until a probe cycle proves the path works;
            # DEGRADED trusts the monitor's hysteresis and steps back.
            if self.state is CircuitState.DEGRADED:
                self._close(f"{transition.device} {transition.reason}")

    def _trip(self, reason: str) -> None:
        if self.state is CircuitState.OPEN:
            return
        self.trips += 1
        self._probe_pending = False
        self._close_streak = 0
        self._backoff = self.config.probe_backoff
        self._next_probe_at = self.clock.now + self._backoff
        self._to(CircuitState.OPEN, reason)

    def _close(self, reason: str) -> None:
        self._close_streak = 0
        self._to(CircuitState.CLOSED, reason)

    def _to(self, new: CircuitState, reason: str = "") -> None:
        if new is self.state:
            return
        old = self.state
        self.state = new
        self.transitions.append(
            CircuitTransition(self.clock.now, old, new, reason)
        )
        if self.log is not None:
            self.log.record_circuit(
                self.clock.now, old.value, new.value, reason
            )
        self.clock.record_event(f"governor_{new.value}", 0.0)

    # ------------------------------------------------------------------
    def transfer_caps(self) -> Tuple[bool, float, Optional[int]]:
        """What the threshold policy may do right now.

        Returns ``(allow_unhinted, unhinted_budget_scale, hinted_budget)``
        where a ``hinted_budget`` of ``None`` means unlimited.
        """
        if self.state is CircuitState.CLOSED:
            return True, 1.0, None
        if self.state is CircuitState.DEGRADED:
            return True, self.config.degraded_budget_scale, None
        # OPEN: unhinted halted; hinted capped.  Once the backoff expires
        # the next decision becomes a half-open probe with a small budget.
        if self.clock.now >= self._next_probe_at and not self._probe_pending:
            self._probe_pending = True
            self.probes += 1
            return False, 0.0, int(self.config.probe_bytes)
        if self._probe_pending:
            return False, 0.0, int(self.config.probe_bytes)
        return False, 0.0, int(self.config.open_hinted_cap)

    def note_transfer_result(self, placed_bytes: int, denied: int) -> None:
        """Major-GC feedback: did the granted budget actually place?"""
        if self.state is CircuitState.OPEN:
            if not self._probe_pending:
                return
            self._probe_pending = False
            if denied == 0 and self.monitor.state is DeviceState.HEALTHY:
                self.probe_successes += 1
                self._close_streak = 1
                self._to(
                    CircuitState.DEGRADED,
                    f"probe placed {placed_bytes}B cleanly",
                )
            else:
                self.probe_failures += 1
                self._backoff = min(
                    self._backoff * self.config.probe_backoff_factor,
                    self.config.probe_backoff_max,
                )
                self._next_probe_at = self.clock.now + self._backoff
        elif self.state is CircuitState.DEGRADED:
            if denied > 0:
                self._trip(f"{denied} placements denied while degraded")
            elif self.monitor.state is DeviceState.HEALTHY:
                self._close_streak += 1
                if self._close_streak >= self.config.close_streak:
                    self._close(
                        f"{self._close_streak} clean transfer cycles"
                    )

    # ------------------------------------------------------------------
    def blocks_h2_caching(self) -> bool:
        """Should the block manager avoid routing new cached data at H2?"""
        return self.state is CircuitState.OPEN

    def emergency_active(self, h1_occupancy: float) -> bool:
        """Backpressure gate: circuit OPEN *and* H1 past the watermark."""
        return (
            self.state is CircuitState.OPEN
            and h1_occupancy >= self.config.emergency_watermark
        )

    def timeline_digest(self) -> str:
        """Canonical transition log, for determinism digests."""
        return "\n".join(t.line() for t in self.transitions)

    def describe(self) -> str:
        return (
            f"circuit={self.state.value} trips={self.trips} "
            f"probes={self.probes} "
            f"(ok={self.probe_successes}, failed={self.probe_failures})"
        )
