"""The H2 card table: four states, slices and stripes (Section 3.4).

A byte array in DRAM with one entry per fixed-size H2 card segment.  Each
entry is one of four states:

- **clean** — no backward references in the segment;
- **dirty** — a mutator thread updated an object in the segment;
- **youngGen** — the segment's objects reference only H1 young objects;
- **oldGen** — the segment's objects reference only H1 old objects.

Minor GC scans dirty + youngGen cards; major GC additionally scans oldGen
cards.  H2 is divided into slices, each containing one fixed-size stripe
per GC thread, so threads never contend on a card.  Because TeraHeap
aligns objects to stripes (stripe size == region size, and objects never
span regions), no boundary card ever needs to stay permanently dirty —
unlike the vanilla H1 card table.  The ``stripe_aligned=False`` ablation
reproduces the vanilla behaviour.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Set, Tuple


class CardState(enum.Enum):
    CLEAN = 0
    DIRTY = 1
    YOUNG_GEN = 2
    OLD_GEN = 3


class H2CardTable:
    """Sparse four-state card table over the H2 address range."""

    def __init__(
        self,
        base: int,
        size: int,
        segment_size: int,
        stripe_size: int,
        stripe_aligned: bool = True,
    ):
        if segment_size <= 0 or stripe_size <= 0:
            raise ValueError("segment and stripe sizes must be positive")
        if stripe_size % segment_size:
            raise ValueError(
                f"stripe size {stripe_size} not a multiple of card segment "
                f"size {segment_size}"
            )
        self.base = base
        self.size = size
        self.segment_size = segment_size
        self.stripe_size = stripe_size
        self.stripe_aligned = stripe_aligned
        self.num_cards = (size + segment_size - 1) // segment_size
        self.cards_per_stripe = stripe_size // segment_size
        self.num_stripes = (size + stripe_size - 1) // stripe_size
        #: non-clean entries only (the conceptual table is num_cards bytes)
        self._states: Dict[int, CardState] = {}
        #: boundary cards that can never be cleaned (ablation mode only)
        self._sticky: Set[int] = set()
        self.mutator_marks = 0

    # ------------------------------------------------------------------
    @property
    def table_bytes(self) -> int:
        """DRAM footprint: one byte per card, like the vanilla JVM."""
        return self.num_cards

    def card_index(self, address: int) -> int:
        if not self.base <= address < self.base + self.size:
            raise ValueError(f"address {address:#x} outside H2 card table")
        return (address - self.base) // self.segment_size

    def card_range(self, index: int) -> Tuple[int, int]:
        lo = self.base + index * self.segment_size
        return lo, min(lo + self.segment_size, self.base + self.size)

    def stripe_of_card(self, index: int) -> int:
        return index // self.cards_per_stripe

    def _is_boundary(self, index: int) -> bool:
        within = index % self.cards_per_stripe
        return within == 0 or within == self.cards_per_stripe - 1

    # ------------------------------------------------------------------
    def mark_dirty(self, address: int) -> None:
        """Post-write barrier hook: mutator updated an H2 object."""
        index = self.card_index(address)
        self._states[index] = CardState.DIRTY
        self.mutator_marks += 1
        if not self.stripe_aligned and self._is_boundary(index):
            self._sticky.add(index)

    def state(self, index: int) -> CardState:
        if index in self._sticky:
            return CardState.DIRTY
        return self._states.get(index, CardState.CLEAN)

    def set_state(self, index: int, state: CardState) -> None:
        """Install the post-scan classification of a card segment.

        Sticky boundary cards (ablation mode) refuse to be cleaned: two GC
        threads may touch them, so the vanilla JVM never cleans them and
        rescans the segment every GC (Section 3.4).
        """
        if index in self._sticky:
            return
        if state is CardState.CLEAN:
            self._states.pop(index, None)
        else:
            self._states[index] = state

    # ------------------------------------------------------------------
    def cards_to_scan(self, major: bool) -> List[int]:
        """Card indices a GC must scan, in address order.

        Minor GC scans dirty and youngGen cards; major GC also scans
        oldGen cards, since a full collection relocates old objects too.
        """
        wanted = {CardState.DIRTY, CardState.YOUNG_GEN}
        if major:
            wanted.add(CardState.OLD_GEN)
        found = {
            idx for idx, st in self._states.items() if st in wanted
        }
        found.update(self._sticky)
        return sorted(found)

    def iter_states(self) -> Iterator[Tuple[int, CardState]]:
        for idx in sorted(self._states):
            yield idx, self.state(idx)

    def clear_range(self, lo: int, hi: int) -> None:
        """Drop card state for a reclaimed region's address range."""
        first = (lo - self.base) // self.segment_size
        last = (hi - 1 - self.base) // self.segment_size
        for idx in range(first, last + 1):
            self._states.pop(idx, None)
            self._sticky.discard(idx)

    # ------------------------------------------------------------------
    def scan_parallelism(self, gc_threads: int) -> int:
        """Threads that can scan concurrently given the stripe layout."""
        return max(1, min(gc_threads, self.num_stripes))
