"""Region-header journal and crash-recovery report for H2.

TeraHeap keeps all H2 metadata in DRAM (Figure 2), so a crash leaves the
device holding object *bytes* with no map.  To make the image
recoverable, each region persists a small header journal — the durable
twin of its DRAM metadata entry:

- the commit **epoch** the header belongs to (a header whose epoch does
  not match the superblock's committed epoch belongs to a commit that
  never finished → the region is quarantined as stale);
- the **label** and allocation extent (``used_bytes``), which bound the
  pages a recovery scan must find durable;
- the **live** summary bit and the outgoing **dependency list**, so
  region-granularity liveness survives without re-deriving references;
- per-object ``(offset, size)`` records, enough to rebuild the region's
  object array by replaying append-only allocation.

Headers occupy synthetic metadata pages (negative page numbers,
``-(region_index + 1)``), disjoint from the data page space, and are
shadow-written: a torn header write loses only the in-flight update.
The superblock (committed epoch + region manifest + checkpoint note)
names which headers recovery must find; a manifest region with *no*
readable header at all is unrecoverable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


def header_page(region_index: int) -> int:
    """The synthetic metadata page holding a region's header journal."""
    return -(region_index + 1)


#: the metadata page holding the superblock
SUPERBLOCK_PAGE = -(1 << 30)


@dataclass(frozen=True)
class RegionJournalEntry:
    """One region's durable header: the on-device twin of its metadata."""

    region_index: int
    epoch: int
    label: str
    used_bytes: int
    live: bool
    deps: Tuple[int, ...]
    #: (offset, size) per object, in allocation order
    objects: Tuple[Tuple[int, int], ...]

    @property
    def object_count(self) -> int:
        return len(self.objects)

    def line(self) -> str:
        """Canonical one-line form (durable-image digests, reports)."""
        deps = ",".join(str(d) for d in sorted(self.deps))
        objs = ";".join(f"{off}+{size}" for off, size in self.objects)
        return (
            f"region={self.region_index}\tepoch={self.epoch}"
            f"\tlabel={self.label}\tused={self.used_bytes}"
            f"\tlive={int(self.live)}\tdeps=[{deps}]\tobjects=[{objs}]"
        )


@dataclass
class RecoveryReport:
    """What a recovery scan rebuilt, skipped, and quarantined."""

    committed_epoch: int = 0
    checkpoint_note: str = ""
    #: region index -> recovered label
    recovered: Dict[int, str] = field(default_factory=dict)
    #: region index -> quarantine reason ("torn-data", "stale-epoch",
    #: "journal-inconsistent")
    quarantined: Dict[int, str] = field(default_factory=dict)
    objects_recovered: int = 0
    bytes_recovered: int = 0

    @property
    def regions_recovered(self) -> int:
        return len(self.recovered)

    @property
    def regions_quarantined(self) -> int:
        return len(self.quarantined)

    def digest(self) -> str:
        """Canonical text form, for byte-identity determinism checks."""
        lines = [
            f"committed_epoch\t{self.committed_epoch}",
            f"checkpoint_note\t{self.checkpoint_note}",
            f"objects_recovered\t{self.objects_recovered}",
            f"bytes_recovered\t{self.bytes_recovered}",
        ]
        for index in sorted(self.recovered):
            lines.append(f"recovered\t{index}\t{self.recovered[index]}")
        for index in sorted(self.quarantined):
            lines.append(f"quarantined\t{index}\t{self.quarantined[index]}")
        return "\n".join(lines)
