"""TeraHeap reproduction (ASPLOS 2023, Kolokasis et al.).

A discrete-cost simulation of a managed runtime with TeraHeap's dual-heap
design implemented algorithm-for-algorithm, plus mini-Spark and
mini-Giraph frameworks and the paper's full benchmark harness.

Quickstart::

    from repro import JavaVM, VMConfig, TeraHeapConfig, gb

    config = VMConfig(
        heap_size=gb(32),
        teraheap=TeraHeapConfig(enabled=True, h2_size=gb(256)),
    )
    vm = JavaVM(config)
    root = vm.allocate(4096, name="partition-0")
    vm.roots.add(root)
    vm.h2_tag_root(root, "rdd-0")
    vm.h2_move("rdd-0")
    vm.major_gc()          # root's closure now lives in H2
    print(vm.breakdown())  # the paper's execution-time split
"""

from .clock import Bucket, Clock
from .config import (
    CostModel,
    G1Config,
    PantheraConfig,
    TeraHeapConfig,
    VMConfig,
)
from .errors import (
    ConfigError,
    DegradationError,
    DeviceFullError,
    DeviceIOError,
    InvalidHintError,
    InvariantViolation,
    OutOfMemoryError,
    ReproError,
    RetryExhausted,
    SegmentationFault,
    SerializationError,
    SimulatedCrash,
    UnrecoverableCrash,
)
from .faults import FaultConfig, FaultInjector, FaultKind, FaultPlan
from .faults.policy import ResiliencePolicy, RetryPolicy
from .heap.audit import AuditLevel, HeapAuditor, Violation
from .heap.object_model import HeapObject, SpaceId
from .runtime import JavaVM
from .units import GB, MB, TB, gb, mb

__version__ = "1.0.0"

__all__ = [
    "AuditLevel",
    "Bucket",
    "Clock",
    "ConfigError",
    "CostModel",
    "DegradationError",
    "DeviceFullError",
    "DeviceIOError",
    "FaultConfig",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "G1Config",
    "GB",
    "HeapAuditor",
    "HeapObject",
    "InvalidHintError",
    "InvariantViolation",
    "JavaVM",
    "MB",
    "OutOfMemoryError",
    "PantheraConfig",
    "ReproError",
    "ResiliencePolicy",
    "RetryExhausted",
    "RetryPolicy",
    "SegmentationFault",
    "SerializationError",
    "SimulatedCrash",
    "SpaceId",
    "TB",
    "TeraHeapConfig",
    "UnrecoverableCrash",
    "VMConfig",
    "Violation",
    "gb",
    "mb",
]
