"""The simulated JVM: the public API frameworks program against.

``JavaVM`` wires together the managed heap (H1), the configured collector,
the optional TeraHeap second heap (H2) over a storage device, the write
barriers, and the simulated clock.  Frameworks allocate objects, update
references and read objects exclusively through this facade, so every
cost — allocation, barriers, GC, S/D, device I/O — is accounted.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional

from .clock import Bucket, Clock
from .config import VMConfig
from .devices.base import AccessPattern, Device
from .devices.health import DeviceHealthMonitor
from .devices.nvme import NVMeSSD
from .errors import ConfigError, OutOfMemoryError, SegmentationFault
from .faults import (
    get_default_audit_level,
    get_default_fault_config,
    get_default_governor_config,
    register_auditor,
    register_policy,
    unregister_auditor,
    unregister_policy,
)
from .faults.plan import FaultConfig
from .faults.policy import ResiliencePolicy
from .heap.audit import HeapAuditor, make_auditor
from .heap.store import HeapStore, get_store
from .gc.parallel_scavenge import (
    ParallelScavenge,
    ParallelScavengeJDK11,
    PromotionFailure,
)
from .heap.barriers import WriteBarrier
from .heap.heap import ManagedHeap
from .heap.object_model import HeapObject, SpaceId
from .heap.roots import RootSet
from .serdes.serializer import KryoSerializer
from .teraheap.h2_heap import H2Heap
from .teraheap.hints import HintInterface
from .units import KiB

#: granularity of temporary-object allocation bursts (S/D pressure)
TEMP_CHUNK = 8 * KiB


class JavaVM:
    """One simulated JVM instance."""

    def __init__(
        self,
        config: VMConfig,
        h2_device: Optional[Device] = None,
        old_gen_device: Optional[Device] = None,
        store: Optional[HeapStore] = None,
        health: Optional[DeviceHealthMonitor] = None,
    ):
        self.config = config
        self.cost = config.cost
        self.clock = Clock()
        #: the struct-of-arrays store all of this VM's objects live in.
        #: ``None`` attaches the process-default store (the single-VM
        #: path, byte-identical to the historical singleton behaviour);
        #: co-located tenants pass a private ``HeapStore`` each so oid
        #: rows and handles can never alias across VMs and one tenant's
        #: store reset cannot invalidate a sibling's live objects.
        self.store = store if store is not None else get_store()
        self.roots = RootSet()
        self.hints = HintInterface()
        self.h2: Optional[H2Heap] = None
        self.old_gen_device = old_gen_device
        self.resilience: Optional[ResiliencePolicy] = None
        self.auditor: Optional[HeapAuditor] = None
        #: device-health watchdog + H2 circuit breaker (teraheap only).
        #: May be a *shared* monitor injected by the server layer, in
        #: which case this VM only owns its listener registrations.
        self.health: Optional[DeviceHealthMonitor] = None
        self._owns_health = True
        self.governor = None
        self._registered_policy = False
        self._registered_auditor = False
        #: callbacks ``fn(target_bytes) -> freed_bytes`` run under
        #: emergency backpressure (e.g. block-manager cache shedding)
        self.pressure_handlers = []
        #: allocation-stall rounds spent in emergency backpressure
        self.alloc_stalls = 0
        #: emergency full GCs run by the backpressure path
        self.emergency_gcs = 0
        #: set by :meth:`retire` once a successor VM replaced this one
        self.retired = False

        if config.collector == "g1":
            from .gc.g1 import G1Collector, G1Heap, G1WriteBarrier

            self.heap = G1Heap(config)
            self.collector = G1Collector(
                self.heap, self.roots, self.clock, config
            )
            self.barrier = G1WriteBarrier(
                self.collector, self.clock, self.cost
            )
        else:
            self.heap = ManagedHeap(config)
            if config.teraheap.enabled:
                if h2_device is None:
                    h2_device = NVMeSSD(self.clock)
                elif h2_device.clock is not self.clock:
                    # Rebind a caller-supplied device to this VM's clock
                    # on a copy: mutating the original would silently
                    # redirect the charges (and traffic counters) of any
                    # other VM still using it.
                    h2_device = h2_device.rebind(self.clock)
                fault_cfg = config.faults or get_default_fault_config()
                if fault_cfg is not None:
                    self.resilience = ResiliencePolicy(fault_cfg, self.clock)
                    if config.faults is None:
                        # Armed via the process-global default (the CLI's
                        # --faults flag): register for aggregate reporting.
                        register_policy(self.resilience)
                        self._registered_policy = True
                gov_cfg = config.governor or get_default_governor_config()
                if gov_cfg is not None and gov_cfg.enabled:
                    from .teraheap.governor import H2Governor

                    if self.resilience is None:
                        # The monitor is fed by the fault injectors; with
                        # no fault plan configured, wrap devices with a
                        # benign (inject-nothing) plan so timings still
                        # flow to the watchdog.
                        self.resilience = ResiliencePolicy(
                            FaultConfig(), self.clock
                        )
                    if health is not None:
                        # Shared monitor (co-located tenants watching one
                        # physical device): one EWMA set, one HEALTHY/
                        # DEGRADED/BROWNOUT classification every tenant's
                        # governor consults — not N divergent copies.
                        self.health = health
                        self._owns_health = False
                    else:
                        self.health = DeviceHealthMonitor(
                            self.clock, gov_cfg.health
                        )
                    log = self.resilience.log
                    self.health.add_listener(
                        lambda t: log.record_health(
                            t.time, t.device, t.old.value, t.new.value,
                            t.reason,
                        ),
                        owner=self,
                    )
                    self.resilience.attach_monitor(self.health)
                    self.governor = H2Governor(
                        gov_cfg, self.health, self.clock, log=log,
                        owner=self,
                    )
                self.h2 = H2Heap(
                    config.teraheap,
                    h2_device,
                    self.clock,
                    config.page_cache_size,
                    resilience=self.resilience,
                    store=self.store,
                )
                from .teraheap.collector import TeraHeapCollector

                self.collector = TeraHeapCollector(
                    self.heap,
                    self.roots,
                    self.clock,
                    config,
                    self.h2,
                    self.hints,
                    governor=self.governor,
                )
            elif config.collector == "panthera":
                from .gc.panthera import PantheraCollector

                if (
                    old_gen_device is not None
                    and old_gen_device.clock is not self.clock
                ):
                    old_gen_device = old_gen_device.rebind(self.clock)
                    self.old_gen_device = old_gen_device
                self.collector = PantheraCollector(
                    self.heap,
                    self.roots,
                    self.clock,
                    config,
                    nvm=old_gen_device,
                )
                if config.panthera is not None:
                    self.heap.pretenure_threshold = (
                        config.panthera.pretenure_threshold
                    )
            elif config.collector == "memmode":
                from .devices.nvm import NVMMemoryMode
                from .gc.memory_mode import MemoryModeCollector

                if old_gen_device is None:
                    old_gen_device = NVMMemoryMode(self.clock)
                elif old_gen_device.clock is not self.clock:
                    old_gen_device = old_gen_device.rebind(self.clock)
                self.old_gen_device = old_gen_device
                self.collector = MemoryModeCollector(
                    self.heap,
                    self.roots,
                    self.clock,
                    config,
                    device=old_gen_device,
                )
            elif config.collector == "ps11":
                self.collector = ParallelScavengeJDK11(
                    self.heap, self.roots, self.clock, config
                )
            else:
                self.collector = ParallelScavenge(
                    self.heap, self.roots, self.clock, config
                )
            self.barrier = WriteBarrier(
                self.heap,
                self.clock,
                self.cost,
                h2_card_table=self.h2.card_table if self.h2 else None,
                enable_teraheap=config.teraheap.enabled,
            )

        # Collectors default to the process-wide store; a VM built over a
        # private store re-attaches so trace kernels index its columns.
        self.collector.store = self.store
        self.serializer = KryoSerializer(
            self.clock, self.cost, allocate_temp=self.allocate_temp
        )
        self.oom = False
        #: per-label H1 anchors installed by recover_h2(), re-rooting
        #: rehydrated H2 objects so region liveness survives the crash
        self.h2_recovery_anchors: Dict[str, HeapObject] = {}

        audit_level = (
            config.audit
            or os.environ.get("REPRO_AUDIT")
            or get_default_audit_level()
        )
        if audit_level:
            self.auditor = make_auditor(self, audit_level)
            if self.auditor is not None and config.audit is None:
                register_auditor(self.auditor)
                self._registered_auditor = True

    # ==================================================================
    # Allocation
    # ==================================================================
    def allocate(
        self,
        size: int,
        refs: Iterable[HeapObject] = (),
        name: str = "",
        is_metadata: bool = False,
        is_reference: bool = False,
        serializable: bool = True,
    ) -> HeapObject:
        """Allocate one object, collecting as needed (may raise OOM)."""
        obj = HeapObject(
            size,
            refs,
            name=name,
            is_metadata=is_metadata,
            is_reference=is_reference,
            serializable=serializable,
            store=self.store,
        )
        self.clock.charge(self.cost.alloc_cost, Bucket.OTHER)
        if self.heap.try_allocate(obj):
            return obj
        # Slow path: collect, escalating from scavenge to full GC.
        self.minor_gc()
        if self.heap.try_allocate(obj):
            return obj
        self.major_gc()
        if self.heap.try_allocate(obj):
            return obj
        if self._emergency_backpressure(obj):
            return obj
        self.oom = True
        message = f"cannot allocate {size} B after full GC"
        context = self._degradation_context()
        if context:
            message = f"{message} ({context})"
        raise OutOfMemoryError(
            message,
            requested=size,
            available=self.heap.capacity - self.heap.used(),
            context=context,
            heap_report=self.diagnostic_heap_report(),
        )

    def _degradation_context(self) -> str:
        """Resilience fallback description attached to OOM errors."""
        if self.resilience is None:
            return ""
        return self.resilience.degradation_context()

    # ==================================================================
    # Emergency backpressure (governor OPEN + H1 past the watermark)
    # ==================================================================
    def register_pressure_handler(self, fn) -> None:
        """Register ``fn(target_bytes) -> freed_bytes``, called when the
        VM applies emergency backpressure instead of raising OOM.

        Retired VMs refuse registrations: a handler rooted in a dead
        incarnation must never fire again."""
        if self.retired:
            return
        self.pressure_handlers.append(fn)

    def stall_for_capacity(self, nbytes: int) -> int:
        """Pre-allocation backpressure for bulk buffer producers.

        Shuffle buffers and streaming blocks arrive in partition-sized
        bursts; waiting for :meth:`allocate`'s per-object emergency path
        means the burst is already half landed when the stall hits.
        Callers that know they are about to produce ``nbytes`` call this
        first: if the governor reports an emergency (circuit OPEN and H1
        past the watermark), one stall round is charged — the thread
        parks (``Bucket.ALLOC_STALL``) while the registered pressure
        handlers shed cached bytes — before a single buffer byte exists.
        Returns the bytes the handlers freed; 0 when no emergency is
        active (the common, free case).
        """
        if self.governor is None or self.heap.capacity <= 0:
            return 0
        occupancy = self.heap.used() / self.heap.capacity
        if not self.governor.emergency_active(occupancy):
            return 0
        gov_cfg = self.governor.config
        self.alloc_stalls += 1
        self.clock.charge(gov_cfg.alloc_stall_wait, Bucket.ALLOC_STALL)
        self.clock.record_event("alloc_stall", gov_cfg.alloc_stall_wait)
        target = max(nbytes, int(0.05 * self.heap.capacity))
        freed = 0
        for handler in self.pressure_handlers:
            freed += handler(target)
        return freed

    def _emergency_backpressure(self, obj: HeapObject) -> bool:
        """Last line before OOM: stall, shed cached data, GC, retry.

        Only runs while the H2 governor has the circuit open and H1 sits
        past the emergency watermark — the situation where the device
        brownout (not the workload) pinned data in H1.  Each round parks
        the allocating thread (charged to ``Bucket.ALLOC_STALL``), asks
        the registered pressure handlers to shed droppable bytes, and
        runs an emergency full GC.  Returns True once ``obj`` allocated;
        False means true exhaustion and the caller raises OOM.
        """
        if self.governor is None:
            return False
        occupancy = self.heap.used() / self.heap.capacity
        if not self.governor.emergency_active(occupancy):
            return False
        gov_cfg = self.governor.config
        target = max(obj.size, int(0.05 * self.heap.capacity))
        for _ in range(gov_cfg.max_emergency_rounds):
            self.alloc_stalls += 1
            self.clock.charge(gov_cfg.alloc_stall_wait, Bucket.ALLOC_STALL)
            self.clock.record_event("alloc_stall", gov_cfg.alloc_stall_wait)
            freed = 0
            for handler in self.pressure_handlers:
                freed += handler(target)
            self.emergency_gcs += 1
            self.major_gc()
            if self.heap.try_allocate(obj):
                return True
            if freed == 0:
                # Nothing left to shed and GC cannot free more: more
                # rounds would only burn stall time before the same OOM.
                return False
        return False

    def diagnostic_heap_report(self) -> str:
        """Multi-line heap/governor/resilience state for OOM errors."""
        lines = [
            "== simulated heap report ==",
            (
                f"H1: {self.heap.used()}/{self.heap.capacity} B used "
                f"({self.heap.used() / self.heap.capacity:.0%})"
            ),
        ]
        if self.h2 is not None:
            lines.append(
                f"H2: {self.h2.used_bytes()}/{self.h2.config.h2_size} B used, "
                f"{len(self.h2.regions)} regions"
            )
        if self.governor is not None:
            lines.append(f"governor: {self.governor.describe()}")
        if self.health is not None:
            lines.append(f"devices: {self.health.describe()}")
        if self.resilience is not None:
            lines.append(
                f"resilience: failures={self.resilience.failures} "
                f"degraded={self.resilience.degraded}"
            )
        lines.append(
            f"backpressure: alloc_stalls={self.alloc_stalls} "
            f"emergency_gcs={self.emergency_gcs}"
        )
        return "\n".join(lines)

    def allocate_array(
        self,
        count: int,
        element_size: int,
        refs_per_element: int = 0,
        name: str = "",
    ) -> List[HeapObject]:
        """Bulk-allocate ``count`` plain objects (no references)."""
        return [
            self.allocate(element_size, name=f"{name}[{i}]" if name else "")
            for i in range(count)
        ]

    def allocate_temp(self, nbytes: int) -> None:
        """Spray short-lived temporaries (S/D byte-stream buffers).

        The objects are never rooted, so they die at the next scavenge —
        their only effect is the young-generation pressure the paper
        attributes to S/D (Section 2).
        """
        remaining = nbytes
        while remaining > 0:
            chunk = min(TEMP_CHUNK, max(remaining, 16))
            obj = HeapObject(chunk, name="sd-temp", store=self.store)
            self.clock.charge(self.cost.alloc_cost, Bucket.OTHER)
            if not self.heap.try_allocate(obj):
                self.minor_gc()
                if not self.heap.try_allocate(obj):
                    self.major_gc()
                    if not self.heap.try_allocate(
                        obj
                    ) and not self._emergency_backpressure(obj):
                        self.oom = True
                        message = "temporary allocation failed"
                        context = self._degradation_context()
                        if context:
                            message = f"{message} ({context})"
                        raise OutOfMemoryError(
                            message,
                            requested=chunk,
                            context=context,
                            heap_report=self.diagnostic_heap_report(),
                        )
            remaining -= chunk

    # ==================================================================
    # Mutator object access
    # ==================================================================
    def write_ref(
        self,
        src: HeapObject,
        target: Optional[HeapObject],
        remove: Optional[HeapObject] = None,
    ) -> None:
        """``src.field = target`` with post-write barrier semantics."""
        if src.space is SpaceId.FREED:
            raise SegmentationFault(
                f"write to reclaimed object #{src.oid}"
            )
        if remove is not None:
            try:
                src.refs.remove(remove)
            except ValueError:
                pass
        if target is not None:
            src.refs.append(target)
        if src.space is SpaceId.H2 and self.h2 is not None:
            # Mutator update of a device-resident object: the store goes
            # through the mapping (read-modify-write on a faulted page).
            self.h2.mutator_store(src)
        self.barrier.on_reference_store(src, target)

    def clear_refs(self, src: HeapObject) -> None:
        """Drop all outgoing references of ``src``."""
        src.refs = []

    def read_object(
        self,
        obj: HeapObject,
        pattern: AccessPattern = AccessPattern.SEQUENTIAL,
    ) -> None:
        """A mutator reads an object's contents."""
        if obj.space is SpaceId.FREED:
            raise SegmentationFault(f"read of reclaimed object #{obj.oid}")
        if obj.space is SpaceId.H2 and self.h2 is not None:
            self.h2.mutator_load(obj, pattern)
            return
        if self.config.collector == "memmode" and self.old_gen_device is not None:
            # Memory mode: every heap access goes through the DRAM/NVM blend.
            self.old_gen_device.read(obj.size, pattern)
            return
        # DRAM-resident object (or NVM under Panthera's old gen).
        if (
            self.config.collector == "panthera"
            and self.old_gen_device is not None
            and obj.space is SpaceId.OLD
        ):
            from .gc.panthera import PantheraCollector

            collector = self.collector
            if isinstance(collector, PantheraCollector) and collector.on_nvm(
                obj
            ):
                self.old_gen_device.read(obj.size, pattern)
                return
        self.clock.charge(
            self.cost.dram_latency + obj.size / self.cost.dram_read_bw
        )

    def compute(self, operations: int, parallel: bool = True) -> None:
        """Charge pure mutator work for ``operations`` record operations."""
        seconds = operations * self.cost.mutator_op_cost
        if parallel:
            seconds /= max(1.0, self.config.mutator_threads ** 0.9)
        self.clock.charge(seconds, Bucket.OTHER)

    # ==================================================================
    # TeraHeap hint interface (exported via Unsafe in the real JVM)
    # ==================================================================
    def h2_tag_root(self, obj: HeapObject, label: str) -> None:
        self.hints.h2_tag_root(obj, label)

    def h2_move(self, label: str) -> None:
        self.hints.h2_move(label)

    # ==================================================================
    # GC entry points
    # ==================================================================
    def minor_gc(self) -> None:
        kind = "minor"
        try:
            self.collector.minor_gc()
        except PromotionFailure:
            self.collector.major_gc()
            kind = "major"
        self._post_gc_audit(kind)

    def major_gc(self) -> None:
        self.collector.major_gc()
        self._post_gc_audit("major")

    def _post_gc_audit(self, kind: str) -> None:
        """Verify heap invariants after a completed GC cycle (if enabled)."""
        if self.auditor is not None:
            self.auditor.audit(kind, self.collector.mark_epoch)

    # ==================================================================
    # Crash recovery
    # ==================================================================
    def retire(self) -> None:
        """Tear down a dead VM so nothing of it leaks into a successor.

        A crashed executor's volatile state must not poison the restarted
        incarnation: registered pressure handlers (which close over the
        dead block manager), device-health listeners (which would keep
        feeding the dead governor), and the governor's own circuit state
        all die here.  The successor VM builds every one of these fresh —
        zero health observations, a CLOSED circuit, zero alloc-stall
        counters — which :meth:`~repro.frameworks.spark.context.SparkContext.restart`
        relies on.  Idempotent.

        Everything dropped here is scoped to *this* VM: on a shared
        health monitor only this VM's listeners detach (sibling tenants'
        governors keep theirs), and only this VM's policy/auditor leave
        the global registries — their counters folded into the aggregate
        so the CLI's end-of-run summary still tells the whole story.
        """
        self.retired = True
        self.pressure_handlers.clear()
        if self.health is not None:
            if self._owns_health:
                self.health.detach_listeners()
            else:
                self.health.detach_listeners(owner=self)
        if self._registered_policy and self.resilience is not None:
            unregister_policy(self.resilience)
            self._registered_policy = False
        if self._registered_auditor and self.auditor is not None:
            unregister_auditor(self.auditor)
            self._registered_auditor = False

    def recover_h2(self, image):
        """Recover a crashed process's durable H2 image into this VM.

        Must be called on a freshly built VM (the crash destroyed all
        volatile state; this VM *is* the restarted process).  Rebuilds
        the H2 metadata from the image via
        :meth:`~repro.teraheap.h2_heap.H2Heap.recover`, then re-primes
        the root set: one H1 anchor object per recovered label holds
        references to every rehydrated object of that label, so the
        next major GC re-establishes region liveness exactly as the
        workload's own roots would have.  Returns the
        :class:`~repro.teraheap.recovery.RecoveryReport`.
        """
        if self.h2 is None:
            raise ConfigError("recover_h2() requires TeraHeap enabled")
        report = self.h2.recover(image)
        by_label: Dict[str, List[HeapObject]] = {}
        for index in sorted(report.recovered):
            region = self.h2.regions[index]
            for obj in region.objects:
                by_label.setdefault(region.label or "", []).append(obj)
        for label in sorted(by_label):
            members = by_label[label]
            anchor = self.allocate(
                max(16, 8 * len(members)), name=f"h2-anchor:{label}"
            )
            # Installed directly, not via write_ref: the anchor stands in
            # for the crashed process's roots, and recovery must not
            # charge the mutator-store barrier path for it.
            anchor.refs = list(members)
            self.roots.add(anchor)
            self.h2_recovery_anchors[label] = anchor
        return report

    # ==================================================================
    # Reporting
    # ==================================================================
    def breakdown(self):
        return self.clock.breakdown()

    def elapsed(self) -> float:
        return self.clock.now
