"""The H1 card table: dirty-card tracking for old-to-young references.

The vanilla JVM divides the old generation into 512 B card segments with a
byte per card; the post-write barrier dirties the card of any updated old
object, and minor GC scans dirty cards for old-to-young roots (Section 2,
Section 4).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set, Tuple

import numpy as np


class CardTable:
    """Card table over a contiguous address range.

    Only non-clean cards are stored (a ``set``), matching the sparse access
    pattern; the *size* of the conceptual table (``num_cards``) still
    drives scan cost.
    """

    def __init__(self, base: int, size: int, card_size: int = 512):
        if card_size <= 0:
            raise ValueError("card size must be positive")
        self.base = base
        self.size = size
        self.card_size = card_size
        self.num_cards = (size + card_size - 1) // card_size
        self._dirty: Set[int] = set()

    # ------------------------------------------------------------------
    def card_index(self, address: int) -> int:
        if not self.base <= address < self.base + self.size:
            raise ValueError(
                f"address {address:#x} outside card table range "
                f"[{self.base:#x}, +{self.size})"
            )
        return (address - self.base) // self.card_size

    def card_range(self, index: int) -> Tuple[int, int]:
        """Address range [lo, hi) covered by card ``index``."""
        lo = self.base + index * self.card_size
        return lo, min(lo + self.card_size, self.base + self.size)

    # ------------------------------------------------------------------
    def mark(self, address: int) -> None:
        """Dirty the card covering ``address`` (post-write barrier)."""
        self._dirty.add(self.card_index(address))

    def mark_object(self, address: int, size: int) -> None:
        """Dirty every card an object spans (object-start barriers vary;
        spanning marks are the conservative choice)."""
        first = self.card_index(address)
        last = self.card_index(address + max(size, 1) - 1)
        self._dirty.update(range(first, last + 1))

    def is_dirty(self, index: int) -> bool:
        return index in self._dirty

    def clear(self, index: int) -> None:
        self._dirty.discard(index)

    def clear_all(self) -> None:
        self._dirty.clear()

    def dirty_cards(self) -> Iterator[int]:
        """Dirty card indices in address order."""
        return iter(sorted(self._dirty))

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def retain(self, indices: Iterable[int]) -> None:
        """Keep only the given cards dirty (post-scan precise cleaning)."""
        self._dirty = set(indices) & set(range(self.num_cards))

    # ------------------------------------------------------------------
    def dirty_index_array(self) -> np.ndarray:
        """Dirty card indices as a sorted array (batch coverage checks)."""
        return np.fromiter(
            sorted(self._dirty), dtype=np.int64, count=len(self._dirty)
        )

    def covered_mask(self, first: np.ndarray, last: np.ndarray) -> np.ndarray:
        """For card ranges [first[i], last[i]] return whether any card in
        each range is dirty — the vectorized form of the audit's
        old-to-young coverage probe.  Ranges are typically one card wide
        (object < card size), so the wide-range tail loops."""
        dirty = self.dirty_index_array()
        out = np.zeros(len(first), dtype=bool)
        if not dirty.size or not len(first):
            return out
        single = first == last
        out[single] = np.isin(first[single], dirty)
        for i in np.nonzero(~single)[0]:
            lo = np.searchsorted(dirty, first[i], side="left")
            out[i] = lo < dirty.size and dirty[lo] <= last[i]
        return out
