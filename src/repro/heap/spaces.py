"""Heap spaces: contiguous address ranges with bump-pointer allocation."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ConfigError
from .object_model import HeapObject, SpaceId


class Space:
    """A contiguous space: eden, a survivor, the old gen, or a G1 region.

    Objects are placed with a bump pointer, so ``objects`` stays sorted by
    address, which lets card scans locate the objects overlapping a card
    segment with binary search — the same trick real card-table scanning
    relies on (objects-per-card lookup via block-offset tables).  The
    address index is kept as a numpy array so overlap queries and audit
    sweeps run as vector ops over the store's columns.
    """

    def __init__(self, space_id: SpaceId, base: int, capacity: int, name: str = ""):
        if capacity < 0:
            raise ConfigError(f"space capacity must be non-negative: {capacity}")
        self.space_id = space_id
        self.base = base
        self.capacity = capacity
        self.top = base
        self.objects: List[HeapObject] = []
        self.name = name or space_id.value
        self._addr_cache: Optional[np.ndarray] = None
        self._oid_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def used(self) -> int:
        return self.top - self.base

    @property
    def free(self) -> int:
        return self.capacity - self.used

    @property
    def occupancy(self) -> float:
        return self.used / self.capacity if self.capacity else 1.0

    @property
    def end(self) -> int:
        return self.base + self.capacity

    def contains_address(self, address: int) -> bool:
        return self.base <= address < self.end

    def has_room(self, size: int) -> bool:
        return self.free >= size

    # ------------------------------------------------------------------
    def allocate(self, obj: HeapObject) -> bool:
        """Bump-allocate ``obj``; returns False when the space is full."""
        if not self.has_room(obj.size):
            return False
        obj.address = self.top
        obj.space = self.space_id
        self.top += obj.size
        self.objects.append(obj)
        self._addr_cache = None
        self._oid_cache = None
        return True

    def reset(self) -> None:
        """Empty the space (end of scavenge for eden/from-space)."""
        self.top = self.base
        self.objects.clear()
        self._addr_cache = None
        self._oid_cache = None

    def live_bytes(self) -> int:
        if not self.objects:
            return 0
        store = self.objects[0]._store
        return store.sum_sizes(self.oid_array())

    # ------------------------------------------------------------------
    def _index(self) -> np.ndarray:
        if self._addr_cache is None:
            self._addr_cache = np.fromiter(
                (o.address for o in self.objects),
                dtype=np.int64,
                count=len(self.objects),
            )
        return self._addr_cache

    def oid_array(self) -> np.ndarray:
        """The space's oids in address order (batch-kernel input)."""
        if self._oid_cache is None:
            self._oid_cache = np.fromiter(
                (o.oid for o in self.objects),
                dtype=np.int64,
                count=len(self.objects),
            )
        return self._oid_cache

    def objects_overlapping(self, lo: int, hi: int) -> List[HeapObject]:
        """Objects whose extent intersects the address range [lo, hi)."""
        if not self.objects:
            return []
        addrs = self._index()
        # First object that could overlap: the one starting at or before lo.
        start = int(np.searchsorted(addrs, lo, side="right")) - 1
        if start < 0:
            start = 0
        stop = int(np.searchsorted(addrs, hi, side="left")) + 1
        result = []
        for obj in self.objects[start:stop]:
            if obj.address < hi and obj.end_address() > lo:
                result.append(obj)
        return result


class OldGeneration(Space):
    """The old generation, with an index of objects by card for barrier scans."""

    def __init__(self, base: int, capacity: int):
        super().__init__(SpaceId.OLD, base, capacity, name="old")

    def rebuild_after_compaction(self, survivors: List[HeapObject]) -> None:
        """Install the post-compaction object list (already address-sorted)."""
        self.objects = survivors
        self.top = survivors[-1].end_address() if survivors else self.base
        self._addr_cache = None
        self._oid_cache = None
