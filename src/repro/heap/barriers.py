"""Post-write barriers.

Parallel Scavenge pairs every reference store into the old generation with
a card-table mark.  TeraHeap extends the barrier (in the interpreter and
the C1/C2 JIT templates) with a reference range check that selects the H1
or the H2 card table (Section 4).  The paper measures the extra check at
<=3% on DaCapo and exactly zero when ``EnableTeraHeap`` is off; the
benchmark in ``benchmarks/test_barrier_overhead.py`` reproduces that.
"""

from __future__ import annotations

from typing import Optional

from ..clock import Clock
from ..config import CostModel
from .heap import ManagedHeap
from .object_model import HeapObject, SpaceId


class WriteBarrier:
    """Post-write barrier with the optional TeraHeap range check."""

    def __init__(
        self,
        heap: ManagedHeap,
        clock: Clock,
        cost: CostModel,
        h2_card_table=None,
        enable_teraheap: bool = False,
    ):
        self.heap = heap
        self.clock = clock
        self.cost = cost
        self.h2_card_table = h2_card_table
        self.enable_teraheap = enable_teraheap
        self.barrier_count = 0
        self.h2_marks = 0

    def on_reference_store(
        self, src: HeapObject, target: Optional[HeapObject]
    ) -> None:
        """Run after ``src.field = target``.

        Dirty the H1 card when an old-generation object is updated, or the
        H2 card when an H2-resident object is updated by a mutator thread
        (the H2 dirty state, Section 3.4).
        """
        self.barrier_count += 1
        extra = (
            self.cost.teraheap_barrier_extra if self.enable_teraheap else 0.0
        )
        self.clock.charge(self.cost.barrier_cost + extra)
        if self.enable_teraheap and src.space is SpaceId.H2:
            if self.h2_card_table is not None:
                self.h2_card_table.mark_dirty(src.address)
                self.h2_marks += 1
            return
        if src.space is SpaceId.OLD:
            self.heap.card_table.mark(src.address)
