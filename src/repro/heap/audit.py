"""Post-GC invariant auditing.

A :class:`HeapAuditor` re-derives, from first principles, the invariants
the heap and TeraHeap metadata are supposed to maintain, and raises
:class:`~repro.errors.InvariantViolation` with a diff-style report when
reality disagrees.  It runs after each minor/major/H2 cycle (wired up by
:class:`~repro.runtime.JavaVM` when auditing is enabled) and is pure
observation: it charges nothing to the simulated clock and mutates no
state.

Two levels:

- **cheap** — space/region accounting and address-map bijectivity: every
  object sits inside its space at a unique, in-bounds, non-overlapping
  address and the bump pointers agree with the object population.
- **full** — additionally cross-checks the card tables and the H2
  dependency metadata: old-to-young references are covered by dirty
  cards, H2 cross-region references are closed under the dependency
  lists (no H2→H1/H2 dangling refs), and region live bits agree with
  the regions that survived the last major GC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import InvariantViolation
from .heap import ManagedHeap
from .object_model import SPACE_CODES, SpaceId
from .spaces import Space
from .store import SPACE_FREED, SPACE_H2, SPACE_TO


class AuditLevel(enum.Enum):
    CHEAP = "cheap"
    FULL = "full"

    @classmethod
    def parse(cls, value) -> "AuditLevel":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown audit level {value!r}; expected 'cheap' or 'full'"
            ) from None


@dataclass
class Violation:
    """One failed invariant check."""

    check: str
    subject: str
    expected: str
    actual: str

    def lines(self) -> List[str]:
        return [
            f"[{self.check}] {self.subject}",
            f"  - expected: {self.expected}",
            f"  + actual:   {self.actual}",
        ]


class HeapAuditor:
    """Verifies heap/TeraHeap invariants after each GC cycle."""

    def __init__(
        self,
        heap: ManagedHeap,
        h2=None,
        level: AuditLevel = AuditLevel.CHEAP,
    ):
        self.heap = heap
        self.h2 = h2
        self.level = AuditLevel.parse(level)
        self.audits_run = 0
        self.violations_found = 0

    # ------------------------------------------------------------------
    def audit(self, trigger: str, epoch: int) -> None:
        """Run all enabled checks; raise on any violation.

        ``trigger`` names the cycle that just finished ("minor"/"major");
        ``epoch`` is the collector's current mark epoch.
        """
        violations: List[Violation] = []
        for space in self.heap.spaces():
            self._check_space(space, violations)
        if self.h2 is not None:
            self._check_h2_regions(violations)
        if self.level is AuditLevel.FULL:
            self._check_card_coverage(violations)
            if self.h2 is not None:
                self._check_h2_references(violations)
                if trigger == "major":
                    self._check_live_bits(violations, epoch)
        self.audits_run += 1
        if violations:
            self.violations_found += len(violations)
            raise InvariantViolation(self._report(trigger, violations), violations)

    @staticmethod
    def _report(trigger: str, violations: List[Violation]) -> str:
        lines = [
            f"post-{trigger}-GC audit found {len(violations)} "
            f"invariant violation(s):"
        ]
        for violation in violations:
            lines.extend(violation.lines())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Cheap checks: accounting and address-map bijectivity
    # ------------------------------------------------------------------
    @staticmethod
    def _extent_clean(
        store, oids: np.ndarray, code: int, base: int, top: int, used: int
    ) -> bool:
        """Vectorized membership/bounds/overlap/accounting sweep.

        One gather per column over the store's flat arrays replaces the
        per-object loop; a False return routes to the loop so violation
        reports stay byte-for-byte what they always were.
        """
        if not oids.size:
            return used == 0
        addr = store.address_view()[oids]
        sizes = store.size_view()[oids]
        ends = addr + sizes
        if not (store.space_view()[oids] == code).all():
            return False
        if int(addr.min()) < base or int(ends.max()) > top:
            return False
        if oids.size > 1 and bool((addr[1:] < ends[:-1]).any()):
            return False
        return int(sizes.sum()) == used

    def _check_space(self, space: Space, out: List[Violation]) -> None:
        objs = space.objects
        if objs and self._extent_clean(
            objs[0]._store,
            space.oid_array(),
            SPACE_CODES[space.space_id],
            space.base,
            space.top,
            space.used,
        ):
            return
        prev_end = space.base
        prev_obj = None
        total = 0
        for obj in space.objects:
            if obj.space is not space.space_id:
                out.append(
                    Violation(
                        "space-membership",
                        f"object #{obj.oid} listed in {space.name}",
                        f"space={space.space_id.value}",
                        f"space={obj.space.value}",
                    )
                )
            if obj.address < space.base or obj.end_address() > space.top:
                out.append(
                    Violation(
                        "address-bounds",
                        f"object #{obj.oid} in {space.name}",
                        f"extent within [{space.base:#x}, {space.top:#x})",
                        f"[{obj.address:#x}, {obj.end_address():#x})",
                    )
                )
            if obj.address < prev_end:
                out.append(
                    Violation(
                        "address-overlap",
                        f"objects #{prev_obj.oid} and #{obj.oid} "
                        f"in {space.name}",
                        f"#{obj.oid} starts at or after {prev_end:#x}",
                        f"starts at {obj.address:#x}",
                    )
                )
            prev_end = obj.end_address()
            prev_obj = obj
            total += obj.size
        if total != space.used:
            out.append(
                Violation(
                    "space-accounting",
                    f"{space.name} bump pointer vs object population",
                    f"used == sum(sizes) == {total}",
                    f"used == {space.used}",
                )
            )

    def _h2_region_clean(self, region) -> bool:
        """Vectorized twin of the per-object H2 region loop."""
        objs = region.objects
        if not objs:
            return region.used == 0
        store = objs[0]._store
        oids = region.oid_array()
        if not self._extent_clean(
            store, oids, SPACE_H2, region.start, region.top, region.used
        ):
            return False
        if not (store.region_view()[oids] == region.index).all():
            return False
        # region_at() is pure arithmetic over the address, so in-bounds
        # objects resolve to this region iff the registry entry at this
        # index is the region itself.
        return self.h2.regions.get(region.index) is region

    def _check_h2_regions(self, out: List[Violation]) -> None:
        for index, reason in getattr(self.h2, "quarantined", {}).items():
            region = self.h2.regions.get(index)
            if region is not None and not region.is_empty:
                out.append(
                    Violation(
                        "h2-quarantine",
                        f"region {index} quarantined by recovery "
                        f"({reason})",
                        "no region allocated at a quarantined index",
                        f"region holds {len(region.objects)} object(s)",
                    )
                )
        for region in self.h2.regions.values():
            if self._h2_region_clean(region):
                continue
            prev_end = region.start
            prev_obj = None
            total = 0
            for obj in region.objects:
                if obj.space is not SpaceId.H2:
                    out.append(
                        Violation(
                            "h2-membership",
                            f"object #{obj.oid} listed in region "
                            f"{region.index}",
                            "space=h2",
                            f"space={obj.space.value}",
                        )
                    )
                if obj.region_id != region.index:
                    out.append(
                        Violation(
                            "h2-region-id",
                            f"object #{obj.oid} in region {region.index}",
                            f"region_id={region.index}",
                            f"region_id={obj.region_id}",
                        )
                    )
                resolved = self.h2.region_at(obj.address)
                if resolved is not region:
                    out.append(
                        Violation(
                            "h2-address-map",
                            f"object #{obj.oid} at {obj.address:#x}",
                            f"address maps to region {region.index}",
                            "region "
                            + (
                                str(resolved.index)
                                if resolved is not None
                                else "<none>"
                            ),
                        )
                    )
                if obj.address < region.start or obj.end_address() > region.top:
                    out.append(
                        Violation(
                            "h2-bounds",
                            f"object #{obj.oid} in region {region.index}",
                            f"extent within [{region.start:#x}, "
                            f"{region.top:#x})",
                            f"[{obj.address:#x}, {obj.end_address():#x})",
                        )
                    )
                if obj.address < prev_end:
                    out.append(
                        Violation(
                            "h2-overlap",
                            f"objects #{prev_obj.oid} and #{obj.oid} in "
                            f"region {region.index}",
                            f"#{obj.oid} starts at or after {prev_end:#x}",
                            f"starts at {obj.address:#x}",
                        )
                    )
                prev_end = obj.end_address()
                prev_obj = obj
                total += obj.size
            if total != region.used:
                out.append(
                    Violation(
                        "h2-accounting",
                        f"region {region.index} top pointer vs objects",
                        f"used == sum(sizes) == {total}",
                        f"used == {region.used}",
                    )
                )

    # ------------------------------------------------------------------
    # Full checks: card tables, dependency closure, live bits
    # ------------------------------------------------------------------
    def _check_card_coverage(self, out: List[Violation]) -> None:
        """Every old object with a young reference has a dirty card.

        A clean card over such an object would let the next scavenge miss
        an old-to-young root and free a live object.
        """
        table = self.heap.card_table
        old = self.heap.old
        if not old.objects:
            return
        store = old.objects[0]._store
        oids = old.oid_array()
        flat, owner = store.gather_targets(oids)
        if not flat.size:
            return
        young_edges = store.space_view()[flat] <= SPACE_TO
        has_young = (
            np.bincount(owner[young_edges], minlength=oids.size) > 0
        )
        if not has_young.any():
            return
        flagged = oids[has_young]
        addr = store.address_view()[flagged]
        ends = addr + store.size_view()[flagged]
        first = (addr - table.base) // table.card_size
        last = (ends - 1 - table.base) // table.card_size
        covered = table.covered_mask(first, last)
        for i in np.nonzero(~covered)[0]:
            obj = store.handle(int(flagged[i]))
            young = [r.oid for r in obj.refs if r.in_young]
            out.append(
                Violation(
                    "card-coverage",
                    f"old object #{obj.oid} references young "
                    f"object(s) {young}",
                    f"a dirty card in cards [{int(first[i])}, "
                    f"{int(last[i])}]",
                    "all covering cards clean",
                )
            )

    def _check_h2_references(self, out: List[Violation]) -> None:
        """H2 references neither dangle nor escape the dependency lists.

        A reference to a FREED object means region reclamation freed a
        region that was still reachable; an unrecorded cross-region
        reference means the next reclamation could.
        """
        h2 = self.h2
        groups = h2.region_groups
        for region in h2.regions.values():
            if self._h2_refs_clean(region):
                continue
            for obj in region.objects:
                for ref in obj.refs:
                    if ref.space is SpaceId.FREED:
                        out.append(
                            Violation(
                                "h2-dangling-ref",
                                f"H2 object #{obj.oid} (region "
                                f"{region.index}) references #{ref.oid}",
                                "a live H1 or H2 object",
                                "a reclaimed (FREED) object",
                            )
                        )
                        continue
                    if (
                        ref.space is SpaceId.H2
                        and ref.region_id != region.index
                    ):
                        if groups is not None:
                            linked = groups.find(region.index) == groups.find(
                                ref.region_id
                            )
                        else:
                            linked = ref.region_id in region.deps
                        if not linked:
                            out.append(
                                Violation(
                                    "h2-dependency-closure",
                                    f"cross-region reference #{obj.oid} "
                                    f"(region {region.index}) -> "
                                    f"#{ref.oid} (region {ref.region_id})",
                                    f"dependency edge {region.index} -> "
                                    f"{ref.region_id}",
                                    "no recorded edge",
                                )
                            )

    def _h2_refs_clean(self, region) -> bool:
        """Vectorized no-dangling / dependency-closure sweep of a region."""
        objs = region.objects
        if not objs:
            return True
        store = objs[0]._store
        flat, _ = store.gather_targets(region.oid_array())
        if not flat.size:
            return True
        codes = store.space_view()[flat]
        if bool((codes == SPACE_FREED).any()):
            return False
        h2_edges = codes == SPACE_H2
        if not h2_edges.any():
            return True
        target_regions = store.region_view()[flat[h2_edges]]
        cross = np.unique(target_regions[target_regions != region.index])
        if not cross.size:
            return True
        groups = self.h2.region_groups
        if groups is not None:
            mine = groups.find(region.index)
            return all(groups.find(int(r)) == mine for r in cross)
        return all(int(r) in region.deps for r in cross)

    def _check_live_bits(self, out: List[Violation], epoch: int) -> None:
        """After a major GC only live regions may hold objects.

        Regions first allocated during this very cycle (movers placed in
        pre-compaction, after the liveness pass reclaimed dead regions)
        are exempt: their live bits are set at the next marking.
        """
        for region in self.h2.regions.values():
            if region.is_empty or region.allocated_epoch >= epoch:
                continue
            if not region.live:
                out.append(
                    Violation(
                        "h2-live-bit",
                        f"region {region.index} "
                        f"({len(region.objects)} objects, {region.used} B)",
                        "live bit set (survived this major GC)",
                        "live bit clear",
                    )
                )


def make_auditor(vm, level) -> Optional[HeapAuditor]:
    """Build an auditor for ``vm`` if its heap shape supports auditing."""
    heap = getattr(vm, "heap", None)
    if not isinstance(heap, ManagedHeap):
        return None
    return HeapAuditor(heap, h2=vm.h2, level=AuditLevel.parse(level))
