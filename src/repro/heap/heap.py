"""The regular managed heap (H1): generational layout + allocation."""

from __future__ import annotations

from typing import List, Optional

from ..config import VMConfig
from ..errors import ConfigError
from .card_table import CardTable
from .object_model import SPACE_CODES, HeapObject, SpaceId
from .store import SPACE_TO
from .spaces import OldGeneration, Space

#: base virtual address of H1 (H2 lives in a disjoint higher range)
H1_BASE = 0x1000_0000


class ManagedHeap:
    """H1: eden, two survivors and an old generation, plus the card table.

    Allocation follows Parallel Scavenge: mutators bump-allocate into eden;
    objects too large for eden go straight to the old generation
    (humongous/pretenured allocation).  The heap itself never collects —
    collectors in :mod:`repro.gc` drive it.
    """

    def __init__(self, config: VMConfig):
        self.config = config
        eden_size = config.eden_size
        survivor = config.survivor_size
        old_size = config.old_size
        if min(eden_size, survivor, old_size) <= 0:
            raise ConfigError(
                f"degenerate heap layout: eden={eden_size} survivor={survivor} "
                f"old={old_size}"
            )
        base = H1_BASE
        self.eden = Space(SpaceId.EDEN, base, eden_size, "eden")
        base += eden_size
        self.survivor_from = Space(SpaceId.FROM, base, survivor, "from")
        base += survivor
        self.survivor_to = Space(SpaceId.TO, base, survivor, "to")
        base += survivor
        self.old = OldGeneration(base, old_size)
        self.card_table = CardTable(
            self.old.base, old_size, config.card_segment_size
        )
        #: total objects ever allocated / promoted, for reporting
        self.allocated_objects = 0
        self.allocated_bytes = 0
        #: objects at/above this size allocate straight to the old gen
        #: (Panthera-style pretenuring); None keeps the default policy
        self.pretenure_threshold: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.config.heap_size

    @property
    def end(self) -> int:
        return self.old.end

    def contains_address(self, address: int) -> bool:
        return H1_BASE <= address < self.end

    def spaces(self) -> List[Space]:
        return [self.eden, self.survivor_from, self.survivor_to, self.old]

    def used(self) -> int:
        return sum(s.used for s in self.spaces())

    def live_occupancy(self) -> float:
        """Fraction of H1 occupied, the input to the threshold policy."""
        return self.used() / self.capacity

    def old_occupancy(self) -> float:
        return self.old.occupancy

    # ------------------------------------------------------------------
    def try_allocate(self, obj: HeapObject) -> bool:
        """Place ``obj`` in eden (or old gen if eden could never hold it).

        Returns False when a minor GC is needed first.
        """
        large = obj.size > self.eden.capacity // 2
        if self.pretenure_threshold is not None:
            large = large or obj.size >= self.pretenure_threshold
        target = self.old if large else self.eden
        if target.allocate(obj):
            self.allocated_objects += 1
            self.allocated_bytes += obj.size
            store = obj._store
            if target is self.old and any(
                store.space[t] <= SPACE_TO for t in store.refs[obj.oid]
            ):
                # Initializing stores of a pretenured object run the
                # write barrier too: without this mark the next scavenge
                # would miss the old-to-young root.
                self.card_table.mark(obj.address)
            return True
        return False

    def swap_survivors(self) -> None:
        """Exchange from/to spaces after a scavenge."""
        self.survivor_from, self.survivor_to = (
            self.survivor_to,
            self.survivor_from,
        )
        self.survivor_from.space_id = SpaceId.FROM
        self.survivor_to.space_id = SpaceId.TO
        survivors = self.survivor_from.objects
        if survivors:
            survivors[0]._store.set_space_batch(
                self.survivor_from.oid_array(), SPACE_CODES[SpaceId.FROM]
            )

    def all_objects(self) -> List[HeapObject]:
        result: List[HeapObject] = []
        for space in self.spaces():
            result.extend(space.objects)
        return result

    def find_space(self, obj: HeapObject) -> Optional[Space]:
        mapping = {
            SpaceId.EDEN: self.eden,
            SpaceId.FROM: self.survivor_from,
            SpaceId.TO: self.survivor_to,
            SpaceId.OLD: self.old,
        }
        return mapping.get(obj.space)
