"""Managed-heap substrate: a JVM-like generational heap (H1).

Models the OpenJDK heap TeraHeap extends: eden + two survivor spaces, an
old generation, a 512 B card table with post-write barriers, and a root
set.  Collectors live in :mod:`repro.gc`; the second heap in
:mod:`repro.teraheap`.
"""

from .heap import ManagedHeap
from .object_model import HeapObject, SpaceId
from .roots import RootSet
from .spaces import Space

__all__ = ["HeapObject", "ManagedHeap", "RootSet", "Space", "SpaceId"]
