"""GC root set: thread stacks, static fields, JNI handles.

Frameworks register the objects their driver/runtime structures pin
(partition stores, cache hash maps, executor state) as roots; everything
reachable from here survives collection.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List

from .object_model import HeapObject


class StackFrame:
    """A mutator stack frame: locals that pin objects during computation.

    The simulated GC cannot see Python local variables, so framework code
    that holds heap objects across a potential collection must push them
    into an active frame (the analogue of JVM stack scanning).
    """

    def __init__(self) -> None:
        self.objects: List[HeapObject] = []

    def push(self, obj: HeapObject) -> HeapObject:
        self.objects.append(obj)
        return obj

    def push_all(self, objs) -> None:
        self.objects.extend(objs)


class RootSet:
    """A named collection of GC roots, plus mutator stack frames."""

    def __init__(self) -> None:
        self._roots: Dict[int, HeapObject] = {}
        self._frames: List[StackFrame] = []

    @contextmanager
    def frame(self) -> Iterator[StackFrame]:
        """Open a stack frame; its objects are roots until it closes."""
        frame = StackFrame()
        self._frames.append(frame)
        try:
            yield frame
        finally:
            self._frames.remove(frame)

    def open_frame(self) -> StackFrame:
        """Open a frame whose lifetime is not a lexical scope.

        The streaming executor's in-flight blocks live from admission to
        retirement (or spill) — lifetimes that interleave rather than
        nest, so the :meth:`frame` context manager cannot express them.
        The caller owns the frame and must :meth:`close_frame` it.
        """
        frame = StackFrame()
        self._frames.append(frame)
        return frame

    def close_frame(self, frame: StackFrame) -> None:
        """Close a frame opened with :meth:`open_frame` (idempotent)."""
        if frame in self._frames:
            self._frames.remove(frame)

    def add(self, obj: HeapObject) -> HeapObject:
        self._roots[obj.oid] = obj
        return obj

    def remove(self, obj: HeapObject) -> None:
        self._roots.pop(obj.oid, None)

    def frame_pinned(self, obj: HeapObject) -> bool:
        """Is ``obj`` pinned by an active mutator stack frame?

        Distinct from :meth:`__contains__`: only the *frames* are
        consulted, not the named roots — "some task currently holds this
        object on its stack", the pin the block manager's eviction
        paths must honour.
        """
        return any(
            obj is pinned for f in self._frames for pinned in f.objects
        )

    def __contains__(self, obj: HeapObject) -> bool:
        if obj.oid in self._roots:
            return True
        return any(
            obj is pinned for f in self._frames for pinned in f.objects
        )

    def __len__(self) -> int:
        return len(self._roots) + sum(len(f.objects) for f in self._frames)

    def __iter__(self) -> Iterator[HeapObject]:
        for obj in list(self._roots.values()):
            yield obj
        for frame in self._frames:
            for obj in frame.objects:
                yield obj

    def as_list(self) -> List[HeapObject]:
        return list(self)

    def oids(self) -> List[int]:
        """Root oids in iteration order — the seed of the trace kernels."""
        return [obj.oid for obj in self]

    def clear(self) -> None:
        self._roots.clear()
        self._frames.clear()
