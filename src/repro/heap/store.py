"""Struct-of-arrays backing store for the simulated object heap.

Instead of one Python ``HeapObject`` instance per simulated object — a
header's worth of interpreter overhead chased one reference at a time —
every per-object field lives in a flat parallel array indexed by oid:

- ``array('q')`` columns for size, address, age, region id, mark epoch
  and forwarding address (fast scalar access from Python *and* zero-copy
  ``numpy`` views via the buffer protocol);
- ``array('b')`` columns for the space/forward-space codes and the
  boolean flag bitfield (metadata / reference / serializable /
  h2-candidate);
- ``array('d')`` for the GC scan-cost multiplier;
- Python lists for the (rare, variable-width) label and name strings;
- an adjacency list of outgoing references (``refs[oid]`` is a list of
  target oids), from which a CSR-style edge table
  (``ref_offsets``/``ref_targets``) is snapshotted on demand for the
  vectorized kernels.

:class:`~repro.heap.object_model.HeapObject` is a thin handle (oid +
store pointer) over one row, so the object-graph API survives unchanged.
Row 0 is a sentinel; oids start at 1 and double as row indices.

Two kernel families coexist, on purpose:

- **order-preserving kernels** (:meth:`dfs_closure`,
  :meth:`dfs_reachable`) replicate the exact stack-pop discovery order
  of the old per-object traversals.  GC cost accounting folds per-visit
  costs into batch tasks *in visit order*, and batch boundaries feed the
  engine's schedule, so any reordering would shift the determinism
  digests the experiments gate on.  These run over the int adjacency
  lists — no numpy, no reordering, just no per-object attribute chasing.
- **vectorized kernels** (:meth:`mark_batch`, :meth:`bfs_closure_csr`,
  :meth:`sum_sizes`, the masked sweeps) use numpy over column views and
  the CSR snapshot.  They are order-insensitive by construction and back
  the audit sweeps, the bench harness and the property tests.

The store is process-global (one per "VM generation"): experiment
runners call :func:`reset_store` between configs — via
``repro.faults.reset_registries`` — which also restarts the oid counter,
so oids no longer depend on how many runs shared the process.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: size of the TeraHeap label word added to every object header (Section 3.2)
LABEL_WORD_SIZE = 8
#: minimum plausible Java object size (header + one field)
MIN_OBJECT_SIZE = 16

# Space codes (row values of the ``space`` column).  Kept in sync with
# the SpaceId enum in object_model, which carries the public API.
SPACE_EDEN = 0
SPACE_FROM = 1
SPACE_TO = 2
SPACE_OLD = 3
SPACE_H2 = 4
SPACE_FREED = 5
#: ``forward_space`` code meaning "no forwarding decision"
NO_SPACE = -1

# Flag bits of the ``flags`` column.
FLAG_METADATA = 1
FLAG_REFERENCE = 2
FLAG_SERIALIZABLE = 4
FLAG_H2_CANDIDATE = 8

_YOUNG_CODES = (SPACE_EDEN, SPACE_FROM, SPACE_TO)
_H1_CODES = (SPACE_EDEN, SPACE_FROM, SPACE_TO, SPACE_OLD)


class HeapStore:
    """Columnar storage for every simulated object of one VM generation."""

    def __init__(self) -> None:
        # Row 0 is a sentinel so oid == row index with oids starting at 1.
        self.size = array("q", [0])
        self.space = array("b", [SPACE_FREED])
        self.address = array("q", [-1])
        self.age = array("q", [0])
        self.region_id = array("q", [-1])
        self.mark_epoch = array("q", [0])
        self.forward_address = array("q", [-1])
        self.forward_space = array("b", [NO_SPACE])
        self.scan_factor = array("d", [0.0])
        self.flags = array("b", [0])
        self.label: List[Optional[str]] = [None]
        self.name: List[str] = [""]
        #: adjacency: refs[oid] -> list of target oids
        self.refs: List[List[int]] = [[]]
        #: canonical handle per oid (identity-stable: ``a is b`` works)
        self.handles: List[object] = [None]
        #: bumped on any edge mutation; invalidates the CSR snapshot
        self.edge_version = 0
        self._csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._csr_version = -1

    # -- rows ----------------------------------------------------------
    def __len__(self) -> int:
        """Number of rows, sentinel included."""
        return len(self.size)

    @property
    def object_count(self) -> int:
        return len(self.size) - 1

    def new_object(
        self,
        size: int,
        ref_oids: Sequence[int],
        name: str,
        flags: int,
        scan_factor: float,
    ) -> int:
        oid = len(self.size)
        self.size.append(size)
        self.space.append(SPACE_EDEN)
        self.address.append(-1)
        self.age.append(0)
        self.region_id.append(-1)
        self.mark_epoch.append(0)
        self.forward_address.append(-1)
        self.forward_space.append(NO_SPACE)
        self.scan_factor.append(scan_factor)
        self.flags.append(flags)
        self.label.append(None)
        self.name.append(name)
        self.refs.append(list(ref_oids))
        self.handles.append(None)
        self.edge_version += 1
        return oid

    # -- column views --------------------------------------------------
    # array('q'/'d'/'b') exposes the buffer protocol, so these are
    # zero-copy; they must be re-taken after any append (realloc).
    def size_view(self) -> np.ndarray:
        return np.frombuffer(self.size, dtype=np.int64)

    def space_view(self) -> np.ndarray:
        return np.frombuffer(self.space, dtype=np.int8)

    def address_view(self) -> np.ndarray:
        return np.frombuffer(self.address, dtype=np.int64)

    def age_view(self) -> np.ndarray:
        return np.frombuffer(self.age, dtype=np.int64)

    def region_view(self) -> np.ndarray:
        return np.frombuffer(self.region_id, dtype=np.int64)

    def epoch_view(self) -> np.ndarray:
        return np.frombuffer(self.mark_epoch, dtype=np.int64)

    def scan_factor_view(self) -> np.ndarray:
        return np.frombuffer(self.scan_factor, dtype=np.float64)

    def flags_view(self) -> np.ndarray:
        return np.frombuffer(self.flags, dtype=np.int8)

    # -- CSR edge table ------------------------------------------------
    def edge_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Snapshot the adjacency lists as (ref_offsets, ref_targets).

        ``ref_offsets`` has ``rows + 1`` entries; the targets of oid ``i``
        are ``ref_targets[ref_offsets[i]:ref_offsets[i + 1]]``.  Rebuilt
        lazily when the edge version moved.
        """
        if self._csr is not None and self._csr_version == self.edge_version:
            return self._csr
        counts = np.fromiter(
            (len(r) for r in self.refs), dtype=np.int64, count=len(self.refs)
        )
        offsets = np.zeros(len(self.refs) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        flat: List[int] = []
        for r in self.refs:
            flat.extend(r)
        targets = np.asarray(flat, dtype=np.int64)
        self._csr = (offsets, targets)
        self._csr_version = self.edge_version
        return self._csr

    # -- order-preserving kernels (digest-gated paths) -----------------
    def dfs_closure(
        self,
        root_oids: Iterable[int],
        skip: Optional[Callable[[int], bool]] = None,
    ) -> List[int]:
        """Transitive closure in exact stack-pop (LIFO) discovery order.

        Replicates ``stack = list(roots); while stack: o = stack.pop();
        stack.extend(o.refs)`` over raw oids — the discovery order every
        per-object traversal in the simulator used, preserved because
        downstream cost batching is order-sensitive.  ``skip`` prunes an
        oid (and its out-edges) without visiting it.
        """
        refs = self.refs
        seen = set()
        order: List[int] = []
        stack = list(root_oids)
        while stack:
            oid = stack.pop()
            if oid in seen:
                continue
            if skip is not None and skip(oid):
                continue
            seen.add(oid)
            order.append(oid)
            stack.extend(refs[oid])
        return order

    def dfs_reachable(self, root_oids: Iterable[int]) -> set:
        """Reachable oid set (order-free users of the same traversal)."""
        refs = self.refs
        seen = set()
        stack = list(root_oids)
        while stack:
            oid = stack.pop()
            if oid in seen:
                continue
            seen.add(oid)
            stack.extend(refs[oid])
        return seen

    # -- vectorized kernels (order-insensitive paths) ------------------
    def mark_batch(self, oids, epoch: int) -> None:
        """Set ``mark_epoch`` for a batch of oids in one vector store."""
        idx = np.asarray(oids, dtype=np.int64)
        if idx.size:
            self.epoch_view()[idx] = epoch

    def set_space_batch(self, oids, space_code: int) -> None:
        idx = np.asarray(oids, dtype=np.int64)
        if idx.size:
            self.space_view()[idx] = space_code

    def age_increment(self, oids) -> None:
        idx = np.asarray(oids, dtype=np.int64)
        if idx.size:
            view = self.age_view()
            view[idx] += 1

    def sum_sizes(self, oids) -> int:
        idx = np.asarray(oids, dtype=np.int64)
        if not idx.size:
            return 0
        return int(self.size_view()[idx].sum())

    def live_mask(self, oids, epoch: int) -> np.ndarray:
        """Boolean mask of which oids are marked at ``epoch``."""
        idx = np.asarray(oids, dtype=np.int64)
        return self.epoch_view()[idx] == epoch

    def gather_targets(self, oids) -> Tuple[np.ndarray, np.ndarray]:
        """Flatten the out-edges of a batch of oids via the CSR snapshot.

        Returns ``(flat_targets, owner)``: every reference target of the
        batch, plus the *position in the batch* of the object it belongs
        to — ready for per-object reductions with ``np.bincount``.
        """
        offsets, targets = self.edge_csr()
        idx = np.asarray(oids, dtype=np.int64)
        if not idx.size:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        starts = offsets[idx]
        counts = offsets[idx + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        base = np.repeat(starts, counts)
        step = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        owner = np.repeat(np.arange(idx.size, dtype=np.int64), counts)
        return targets[base + step], owner

    def bfs_closure_csr(self, seed_oids) -> np.ndarray:
        """Vectorized frontier BFS over the CSR snapshot.

        Returns the reachable oids as a sorted unique array.  Each
        iteration gathers the whole frontier's out-edges in one shot and
        deduplicates them by scattering into a boolean mask (no sort, no
        per-object Python in the loop) — discovery order is *not*
        preserved; only order-insensitive callers (audit, bench,
        property tests) may use it.
        """
        offsets, targets = self.edge_csr()
        rows = len(self.refs)
        visited = np.zeros(rows, dtype=bool)
        frontier = np.asarray(seed_oids, dtype=np.int64)
        if frontier.size:
            visited[frontier] = True
        while frontier.size:
            starts = offsets[frontier]
            counts = offsets[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            # Gather every out-edge of the frontier in one shot.
            base = np.repeat(starts, counts)
            step = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            neighbors = targets[base + step]
            # Mask-scatter dedup: much cheaper than sorting via unique.
            fresh = np.zeros(rows, dtype=bool)
            fresh[neighbors] = True
            fresh &= ~visited
            visited |= fresh
            frontier = np.nonzero(fresh)[0]
        return np.nonzero(visited)[0]

    # -- handles -------------------------------------------------------
    def handle(self, oid: int):
        """The canonical :class:`HeapObject` handle for ``oid``.

        One handle per row, created on demand, so handle identity (`is`)
        matches object identity everywhere.
        """
        h = self.handles[oid]
        if h is None:
            from .object_model import HeapObject

            h = HeapObject.__new__(HeapObject)
            h.oid = oid
            h._store = self
            self.handles[oid] = h
        return h


# ----------------------------------------------------------------------
# The *default* store: a convenience for single-VM experiments, which
# reset between configs via repro.faults.reset_registries ->
# reset_store().  Multi-tenant callers (the server layer) give each
# JavaVM its own private HeapStore instead, so one tenant's rows, oid
# counter and handles can never alias a sibling's and a reset of the
# default store cannot invalidate any co-located tenant's live handles.
_active_store: Optional[HeapStore] = None


def get_store() -> HeapStore:
    global _active_store
    if _active_store is None:
        _active_store = HeapStore()
    return _active_store


def reset_store() -> HeapStore:
    """Install a fresh store (and thereby restart the oid counter).

    Old handles keep their old store alive through their ``_store``
    pointer, so resetting between configs cannot corrupt a VM that is
    still referenced — it just stops new VMs from inheriting rows.
    """
    global _active_store
    _active_store = HeapStore()
    return _active_store
