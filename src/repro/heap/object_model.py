"""The simulated Java object model.

Each :class:`HeapObject` models one Java object: a header, a size, and
outgoing references.  The header carries the extra eight-byte TeraHeap
label word (Section 3.2) used by ``h2_tag_root`` — the paper chose a
header field over side metadata to avoid re-tracking addresses every GC.

Since the struct-of-arrays refactor the per-object state lives in flat
parallel columns of :class:`~repro.heap.store.HeapStore`; a
``HeapObject`` is a two-slot handle (oid + store pointer) whose
attributes are properties over its row.  The attribute API is unchanged,
handles are canonical (one per oid, so ``is`` works), and oids double as
row indices.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional

from .store import (
    FLAG_H2_CANDIDATE,
    FLAG_METADATA,
    FLAG_REFERENCE,
    FLAG_SERIALIZABLE,
    LABEL_WORD_SIZE,
    MIN_OBJECT_SIZE,
    NO_SPACE,
    get_store,
)

__all__ = [
    "LABEL_WORD_SIZE",
    "MIN_OBJECT_SIZE",
    "SpaceId",
    "HeapObject",
    "RefList",
]


class SpaceId(enum.Enum):
    """Where an object currently lives."""

    EDEN = "eden"
    FROM = "from"
    TO = "to"
    OLD = "old"
    H2 = "h2"
    #: the object's H2 region was reclaimed; any access is a bug
    FREED = "freed"


#: store space-code (int) -> SpaceId singleton, in code order
SPACE_BY_CODE = (
    SpaceId.EDEN,
    SpaceId.FROM,
    SpaceId.TO,
    SpaceId.OLD,
    SpaceId.H2,
    SpaceId.FREED,
)
SPACE_CODES = {space: code for code, space in enumerate(SPACE_BY_CODE)}


class RefList:
    """Mutable view of one object's outgoing references.

    Reads and writes go straight to the store's adjacency list (target
    oids); iteration and indexing hand back canonical handles, so the
    view is interchangeable with the old ``List[HeapObject]`` attribute.
    """

    __slots__ = ("_store", "_oid")

    def __init__(self, store, oid: int):
        self._store = store
        self._oid = oid

    def _targets(self) -> List[int]:
        return self._store.refs[self._oid]

    # -- mutation ------------------------------------------------------
    def append(self, obj: "HeapObject") -> None:
        self._targets().append(obj.oid)
        self._store.edge_version += 1

    def extend(self, objs: Iterable["HeapObject"]) -> None:
        self._targets().extend(o.oid for o in objs)
        self._store.edge_version += 1

    def remove(self, obj: "HeapObject") -> None:
        self._targets().remove(obj.oid)
        self._store.edge_version += 1

    def clear(self) -> None:
        self._targets().clear()
        self._store.edge_version += 1

    # -- access --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._targets())

    def __bool__(self) -> bool:
        return bool(self._targets())

    def __iter__(self):
        handle = self._store.handle
        for oid in self._targets():
            yield handle(oid)

    def __reversed__(self):
        handle = self._store.handle
        for oid in reversed(self._targets()):
            yield handle(oid)

    def __getitem__(self, index):
        targets = self._targets()
        if isinstance(index, slice):
            handle = self._store.handle
            return [handle(oid) for oid in targets[index]]
        return self._store.handle(targets[index])

    def __contains__(self, obj) -> bool:
        return isinstance(obj, HeapObject) and obj.oid in self._targets()

    def __eq__(self, other) -> bool:
        if isinstance(other, RefList):
            return self._targets() == other._targets()
        if isinstance(other, (list, tuple)):
            mine = self._targets()
            if len(mine) != len(other):
                return False
            return all(
                isinstance(o, HeapObject) and o.oid == oid
                for oid, o in zip(mine, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RefList of #{self._oid}: {self._targets()}>"


def _flag_property(bit: int, doc: str):
    def get(self) -> bool:
        return bool(self._store.flags[self.oid] & bit)

    def set_(self, value: bool) -> None:
        if value:
            self._store.flags[self.oid] |= bit
        else:
            self._store.flags[self.oid] &= ~bit

    return property(get, set_, doc=doc)


def _int_column(column: str, doc: str):
    def get(self) -> int:
        return getattr(self._store, column)[self.oid]

    def set_(self, value: int) -> None:
        getattr(self._store, column)[self.oid] = value

    return property(get, set_, doc=doc)


class HeapObject:
    """One simulated Java object — a handle over one store row.

    Attributes mirror what the JVM keeps in or derives from the object
    header: mark/forwarding state, GC age, and the TeraHeap label.
    """

    __slots__ = ("oid", "_store")

    def __init__(
        self,
        size: int,
        refs: Optional[Iterable["HeapObject"]] = None,
        name: str = "",
        is_metadata: bool = False,
        is_reference: bool = False,
        serializable: bool = True,
        scan_factor: float = 1.0,
        store=None,
    ):
        if size < MIN_OBJECT_SIZE:
            raise ValueError(
                f"object size {size} below minimum {MIN_OBJECT_SIZE}"
            )
        if store is None:
            store = get_store()
        flags = 0
        if is_metadata:
            flags |= FLAG_METADATA
        if is_reference:
            flags |= FLAG_REFERENCE
        if serializable:
            flags |= FLAG_SERIALIZABLE
        oid = store.new_object(
            size,
            [o.oid for o in refs] if refs else (),
            name,
            flags,
            scan_factor,
        )
        self.oid = oid
        self._store = store
        store.handles[oid] = self

    # -- plain int columns --------------------------------------------
    size = _int_column("size", "object size in bytes")
    address = _int_column("address", "current address (-1 = unplaced)")
    age = _int_column("age", "number of scavenges survived")
    region_id = _int_column(
        "region_id", "H2 region index once resident in H2 (or G1 region)"
    )
    mark_epoch = _int_column(
        "mark_epoch",
        "mark bit, implemented as the epoch of the last marking cycle so "
        "marks never need explicit clearing",
    )
    forward_address = _int_column("forward_address", "compaction target")

    # -- flag bits -----------------------------------------------------
    is_metadata = _flag_property(
        FLAG_METADATA,
        "JVM metadata (class objects, class loaders) — excluded from the "
        "H2 transitive closure (Section 3.2)",
    )
    is_reference = _flag_property(
        FLAG_REFERENCE,
        "java.lang.ref.Reference subclasses — also excluded (Section 3.2)",
    )
    serializable = _flag_property(
        FLAG_SERIALIZABLE,
        "whether Java serialization can handle this object (Section 2)",
    )
    h2_candidate = _flag_property(
        FLAG_H2_CANDIDATE,
        "set when the object has been selected for movement to H2",
    )

    # -- enum / optional columns --------------------------------------
    @property
    def space(self) -> SpaceId:
        return SPACE_BY_CODE[self._store.space[self.oid]]

    @space.setter
    def space(self, value: SpaceId) -> None:
        self._store.space[self.oid] = SPACE_CODES[value]

    @property
    def forward_space(self) -> Optional[SpaceId]:
        code = self._store.forward_space[self.oid]
        return None if code == NO_SPACE else SPACE_BY_CODE[code]

    @forward_space.setter
    def forward_space(self, value: Optional[SpaceId]) -> None:
        self._store.forward_space[self.oid] = (
            NO_SPACE if value is None else SPACE_CODES[value]
        )

    @property
    def label(self) -> Optional[str]:
        """TeraHeap label word; non-None marks the object (or a member
        of a tagged transitive closure) as an H2 candidate."""
        return self._store.label[self.oid]

    @label.setter
    def label(self, value: Optional[str]) -> None:
        self._store.label[self.oid] = value

    @property
    def scan_factor(self) -> float:
        """GC scan-cost multiplier: a coarse simulated object standing
        for many small paper-scale objects (e.g. triangle-counting
        wedges) costs proportionally more to mark per byte."""
        return self._store.scan_factor[self.oid]

    @scan_factor.setter
    def scan_factor(self, value: float) -> None:
        self._store.scan_factor[self.oid] = value

    @property
    def name(self) -> str:
        return self._store.name[self.oid]

    @name.setter
    def name(self, value: str) -> None:
        self._store.name[self.oid] = value

    # -- references ----------------------------------------------------
    @property
    def refs(self) -> RefList:
        return RefList(self._store, self.oid)

    @refs.setter
    def refs(self, value: Iterable["HeapObject"]) -> None:
        store = self._store
        if isinstance(value, RefList):
            store.refs[self.oid] = list(value._targets())
        else:
            store.refs[self.oid] = [o.oid for o in value]
        store.edge_version += 1

    # ------------------------------------------------------------------
    @property
    def in_young(self) -> bool:
        return self._store.space[self.oid] <= 2  # EDEN/FROM/TO

    @property
    def in_h1(self) -> bool:
        return self._store.space[self.oid] <= 3  # EDEN/FROM/TO/OLD

    @property
    def in_h2(self) -> bool:
        return self._store.space[self.oid] == 4  # H2

    def end_address(self) -> int:
        store = self._store
        return store.address[self.oid] + store.size[self.oid]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" label={self.label!r}" if self.label else ""
        name = f" {self.name}" if self.name else ""
        return (
            f"<HeapObject #{self.oid}{name} {self.size}B {self.space.value}"
            f"@{self.address:#x}{tag}>"
        )

