"""The simulated Java object model.

Each :class:`HeapObject` models one Java object: a header, a size, and
outgoing references.  The header carries the extra eight-byte TeraHeap
label word (Section 3.2) used by ``h2_tag_root`` — the paper chose a
header field over side metadata to avoid re-tracking addresses every GC.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterable, List, Optional

#: size of the TeraHeap label word added to every object header (Section 3.2)
LABEL_WORD_SIZE = 8
#: minimum plausible Java object size (header + one field)
MIN_OBJECT_SIZE = 16


class SpaceId(enum.Enum):
    """Where an object currently lives."""

    EDEN = "eden"
    FROM = "from"
    TO = "to"
    OLD = "old"
    H2 = "h2"
    #: the object's H2 region was reclaimed; any access is a bug
    FREED = "freed"


_oid_counter = itertools.count(1)


class HeapObject:
    """One simulated Java object.

    Attributes mirror what the JVM keeps in or derives from the object
    header: mark/forwarding state, GC age, and the TeraHeap label.
    """

    __slots__ = (
        "oid",
        "size",
        "refs",
        "space",
        "address",
        "age",
        "label",
        "h2_candidate",
        "region_id",
        "mark_epoch",
        "forward_address",
        "forward_space",
        "is_metadata",
        "is_reference",
        "serializable",
        "scan_factor",
        "name",
    )

    def __init__(
        self,
        size: int,
        refs: Optional[Iterable["HeapObject"]] = None,
        name: str = "",
        is_metadata: bool = False,
        is_reference: bool = False,
        serializable: bool = True,
        scan_factor: float = 1.0,
    ):
        if size < MIN_OBJECT_SIZE:
            raise ValueError(
                f"object size {size} below minimum {MIN_OBJECT_SIZE}"
            )
        self.oid: int = next(_oid_counter)
        self.size: int = size
        self.refs: List[HeapObject] = list(refs) if refs else []
        self.space: SpaceId = SpaceId.EDEN
        self.address: int = -1
        self.age: int = 0
        #: TeraHeap label word; non-None marks the object (or a member of a
        #: tagged transitive closure) as an H2 candidate
        self.label: Optional[str] = None
        #: set when the object has been selected for movement to H2
        self.h2_candidate: bool = False
        #: H2 region index once resident in H2 (or G1 region index)
        self.region_id: int = -1
        #: mark bit, implemented as the epoch of the last marking cycle so
        #: marks never need explicit clearing
        self.mark_epoch: int = 0
        self.forward_address: int = -1
        self.forward_space: Optional[SpaceId] = None
        #: JVM metadata (class objects, class loaders) — excluded from the
        #: H2 transitive closure (Section 3.2)
        self.is_metadata: bool = is_metadata
        #: java.lang.ref.Reference subclasses — also excluded (Section 3.2)
        self.is_reference: bool = is_reference
        #: whether Java serialization can handle this object (Section 2)
        self.serializable: bool = serializable
        #: GC scan-cost multiplier: a coarse simulated object standing for
        #: many small paper-scale objects (e.g. triangle-counting wedges)
        #: costs proportionally more to mark per byte
        self.scan_factor: float = scan_factor
        self.name: str = name

    # ------------------------------------------------------------------
    @property
    def in_young(self) -> bool:
        return self.space in (SpaceId.EDEN, SpaceId.FROM, SpaceId.TO)

    @property
    def in_h1(self) -> bool:
        return self.space in (SpaceId.EDEN, SpaceId.FROM, SpaceId.TO, SpaceId.OLD)

    @property
    def in_h2(self) -> bool:
        return self.space is SpaceId.H2

    def end_address(self) -> int:
        return self.address + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" label={self.label!r}" if self.label else ""
        name = f" {self.name}" if self.name else ""
        return (
            f"<HeapObject #{self.oid}{name} {self.size}B {self.space.value}"
            f"@{self.address:#x}{tag}>"
        )
