"""Fault injection end-to-end: inject H2 device faults, watch the
runtime retry, degrade gracefully, and pass its post-GC audits.

Builds two identically-seeded TeraHeap VMs to demonstrate that fault
schedules are deterministic, then a third with a hostile device (every
write fails) to demonstrate retry exhaustion and graceful degradation.

Run:  python examples/fault_injection.py
"""

from repro import FaultConfig, JavaVM, TeraHeapConfig, VMConfig, gb
from repro.metrics.trace import resilience_events_csv
from repro.units import KiB


def make_vm(faults: FaultConfig) -> JavaVM:
    return JavaVM(
        VMConfig(
            heap_size=gb(8),
            teraheap=TeraHeapConfig(
                enabled=True, h2_size=gb(64), region_size=16 * KiB
            ),
            page_cache_size=64 * KiB,  # tiny: loads go to the device
            faults=faults,
            audit="full",  # verify heap invariants after every GC
        )
    )


def run_workload(vm: JavaVM, groups: int = 6) -> None:
    """Cache several object groups in H2, then read them all back.

    The read-back pass touches every group after later groups evicted
    its pages from the tiny cache, so the loads reach the device (and
    its fault schedule) instead of the page cache.
    """
    cached = []
    for g in range(groups):
        label = f"rdd-{g}"
        with vm.roots.frame() as frame:
            records = [frame.push(vm.allocate(2048)) for _ in range(12)]
            root = vm.allocate(1024, refs=records, name=label)
        vm.roots.add(root)
        vm.h2_tag_root(root, label)
        vm.h2_move(label)
        vm.major_gc()
        cached.append(records)
    for records in cached:
        for record in records:
            vm.read_object(record)


def main() -> None:
    # --- 1. a moderately faulty device, twice with the same seed -----
    cfg = FaultConfig(
        seed=42,
        read_error_rate=0.2,
        write_error_rate=0.2,
        latency_spike_rate=0.1,
        sigbus_rate=0.05,
    )
    vm1, vm2 = make_vm(cfg), make_vm(cfg)
    run_workload(vm1)
    run_workload(vm2)

    plan, log = vm1.resilience.plan, vm1.resilience.log
    print("faulty run completed:")
    print(f"  faults injected:     {plan.total_injected}")
    print(f"  ops retried:         {log.ops_retried}")
    print(f"  backoff charged:     {log.summary()['backoff_seconds']:.6f} s")
    print(f"  objects moved to H2: {vm1.h2.objects_moved}")
    print(f"  audits run:          {vm1.auditor.audits_run}"
          f" (violations: {vm1.auditor.violations_found})")

    same = plan.schedule_digest() == vm2.resilience.plan.schedule_digest()
    print(f"  same seed, same schedule: {same}"
          f"  (clocks: {vm1.elapsed():.6f} == {vm2.elapsed():.6f})")

    # --- 2. a hostile device: every write fails ----------------------
    hostile = FaultConfig(
        seed=7, write_error_rate=1.0, max_attempts=2, failure_budget=1
    )
    vm3 = make_vm(hostile)
    run_workload(vm3)

    log3 = vm3.resilience.log
    print("\nhostile run degraded gracefully:")
    print(f"  retry exhaustions:   {log3.retry_exhaustions}")
    print(f"  degraded:            {vm3.resilience.degraded}")
    print(f"  transfers denied:    {vm3.collector.h2_transfers_denied}")
    print(f"  objects moved to H2: {vm3.h2.objects_moved}"
          f"  (the rest stayed in H1)")

    print("\nfirst resilience events (CSV):")
    for line in resilience_events_csv(log3).splitlines()[:6]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
