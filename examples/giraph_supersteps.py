"""Giraph supersteps: mutable object offloading (Sections 1 and 5).

Runs Giraph PageRank on an 85 GB (paper-scale) social graph under the
out-of-core baseline and under TeraHeap.  Watch two things:

1. edge arrays migrate to H2 once, after the input superstep;
2. each superstep's message store migrates after its barrier, is consumed
   the following superstep, and its H2 regions are then reclaimed in bulk
   — the lifecycle behind Figure 10's region-reclamation CDFs.

Run:  python examples/giraph_supersteps.py
"""

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.devices.nvme import NVMeSSD
from repro.frameworks.giraph import GiraphConf, GiraphMode
from repro.frameworks.giraph.workloads import make_giraph_graph, run_giraph
from repro.units import KiB

DATASET_GB = 85
DRAM_GB = 85


def run(mode: GiraphMode):
    th = mode is GiraphMode.TERAHEAP
    heap_gb = DRAM_GB * (50 / 85 if th else 70 / 85)  # Table 4 splits
    vm = JavaVM(
        VMConfig(
            heap_size=gb(heap_gb),
            teraheap=TeraHeapConfig(
                enabled=th, h2_size=gb(1024), region_size=16 * KiB
            ),
            page_cache_size=gb(DRAM_GB - heap_gb),
        )
    )
    conf = GiraphConf(mode=mode, device=NVMeSSD(vm.clock))
    graph = make_giraph_graph(gb(DATASET_GB))
    job = run_giraph(vm, conf, graph, "PR")
    return vm, job


def main() -> None:
    print(f"Giraph PageRank, {DATASET_GB} GB graph, {DRAM_GB} GB DRAM\n")
    totals = {}
    for mode in (GiraphMode.OOC, GiraphMode.TERAHEAP):
        vm, job = run(mode)
        total = vm.elapsed()
        totals[mode] = total
        print(f"{mode.value:>8s}: {total:9.1f} s over {job.supersteps_run} supersteps")
        for bucket, seconds in vm.breakdown().items():
            print(f"          {bucket:<10s} {seconds:9.1f} s")
        if vm.h2 is not None:
            print(
                f"          H2: {vm.h2.regions_allocated_total} regions "
                f"allocated, {vm.h2.regions_reclaimed} reclaimed in bulk, "
                f"{vm.h2.metadata_bytes} B of DRAM metadata"
            )
        if job.ooc is not None:
            print(
                f"          OOC: {job.ooc.bytes_offloaded} B offloaded, "
                f"{job.ooc.bytes_reloaded} B reloaded"
            )
        print()
    gain = 1 - totals[GiraphMode.TERAHEAP] / totals[GiraphMode.OOC]
    print(f"TeraHeap improvement over Giraph-OOC: {gain:.1%}")


if __name__ == "__main__":
    main()
