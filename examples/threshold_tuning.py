"""The transfer hint and threshold policy in action (Section 7.2).

Runs Giraph WCC under three TeraHeap policies:

1. hints on (the paper's design) — object groups move only once immutable;
2. hints off — groups move only under heap pressure, often while still
   being updated, turning appends into device read-modify-writes;
3. hints on but no low threshold — a pressure event dumps *all* marked
   objects at once.

Reproduces the Figure 9 findings in miniature.

Run:  python examples/threshold_tuning.py
"""

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.devices.nvme import NVMeSSD
from repro.frameworks.giraph import GiraphConf, GiraphMode
from repro.frameworks.giraph.workloads import make_giraph_graph, run_giraph
from repro.units import KiB

DATASET_GB = 85
H1_GB = 60


def run(use_move_hint: bool, low_threshold):
    vm = JavaVM(
        VMConfig(
            heap_size=gb(H1_GB),
            teraheap=TeraHeapConfig(
                enabled=True,
                h2_size=gb(1024),
                region_size=16 * KiB,
                use_move_hint=use_move_hint,
                low_threshold=low_threshold,
            ),
            page_cache_size=gb(25),
        )
    )
    conf = GiraphConf(
        mode=GiraphMode.TERAHEAP,
        device=NVMeSSD(vm.clock),
        use_move_hint=use_move_hint,
    )
    graph = make_giraph_graph(gb(DATASET_GB))
    run_giraph(vm, conf, graph, "WCC")
    return vm


def main() -> None:
    configs = [
        ("hints + low threshold (paper design)", True, 0.50),
        ("no hints (pressure-only transfers)", False, 0.50),
        ("hints, no low threshold", True, None),
    ]
    results = []
    for label, hint, low in configs:
        vm = run(hint, low)
        writes = vm.h2.device.traffic.bytes_written
        results.append((label, vm.elapsed(), writes))
    base = results[0][1]
    print(f"Giraph WCC, {DATASET_GB} GB graph, {H1_GB} GB H1\n")
    for label, total, writes in results:
        print(
            f"{label:<40s} {total:9.1f} s "
            f"(x{total / base:4.2f})  device writes: {writes:>12,d} B"
        )


if __name__ == "__main__":
    main()
