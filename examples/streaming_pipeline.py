"""Block-streaming execution vs whole-RDD materialization.

Runs the same persisted three-stage pipeline (src -> mid -> top) two
ways on a TeraHeap executor whose heap is far smaller than the data
flowing through it:

- **whole-RDD**: ``top.evaluate()`` materialises every partition of
  every stage per task batch — the live set grows with the input and
  the collector pays for it;
- **streaming**: a ``StreamingExecutor`` drives partition-sized blocks
  through the operator chain, never holding more than
  ``max_inflight_blocks x target_block_bytes`` in flight, spilling
  blocks to H2 (raw copy, no S/D) under backpressure instead of
  recomputing them.

Prints both walls, the GC share, and the streaming run's budget
telemetry (peak in-flight, stalls, spills, read-backs).

Run:  python examples/streaming_pipeline.py
"""

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.clock import Bucket
from repro.frameworks.spark import (
    CachePolicy,
    SparkConf,
    SparkContext,
    StreamingExecutor,
)
from repro.units import KiB, fmt_bytes

INPUT_GB = 1.25
HEAP_GB = 4
MAX_INFLIGHT_BLOCKS = 8
TARGET_BLOCK_BYTES = 32 * KiB  # 32 paper-scale MB


def make_ctx() -> SparkContext:
    vm = JavaVM(
        VMConfig(
            heap_size=gb(HEAP_GB),
            teraheap=TeraHeapConfig(
                enabled=True,
                h2_size=gb(32),
                region_size=64 * KiB,
                promotion_buffer_size=32 * KiB,
            ),
            page_cache_size=gb(4),
        )
    )
    conf = SparkConf(
        cache_policy=CachePolicy.TERAHEAP,
        num_partitions=4,
        max_inflight_blocks=MAX_INFLIGHT_BLOCKS,
        target_block_bytes=TARGET_BLOCK_BYTES,
    )
    return SparkContext(vm, conf)


def build_pipeline(ctx: SparkContext):
    src = ctx.range_rdd(gb(INPUT_GB), compute_ops_per_chunk=64, name="src")
    top = src.map(64, name="mid").map(64, name="top")
    return top.persist()


def gc_seconds(vm: JavaVM) -> float:
    return (
        vm.clock.total(Bucket.MINOR_GC)
        + vm.clock.total(Bucket.MAJOR_GC)
        + vm.clock.total(Bucket.ALLOC_STALL)
    )


def main() -> None:
    print(
        f"pipeline src->mid->top, {INPUT_GB} GB input, {HEAP_GB} GB heap, "
        f"budget {MAX_INFLIGHT_BLOCKS} x {fmt_bytes(TARGET_BLOCK_BYTES)}"
    )

    ctx = make_ctx()
    whole = build_pipeline(ctx).evaluate()
    rdd_wall, rdd_gc = ctx.vm.elapsed(), gc_seconds(ctx.vm)
    print(
        f"\nwhole-RDD : {rdd_wall:8.3f} s  (gc {rdd_gc:8.3f} s)  "
        f"value={whole}"
    )

    ctx = make_ctx()
    result = StreamingExecutor(ctx).run(build_pipeline(ctx))
    stream_wall, stream_gc = ctx.vm.elapsed(), gc_seconds(ctx.vm)
    print(
        f"streaming : {stream_wall:8.3f} s  (gc {stream_gc:8.3f} s)  "
        f"value={result.total_bytes}"
    )
    print(
        f"\n  blocks={result.blocks}  "
        f"peak in-flight={fmt_bytes(result.peak_inflight_bytes)} "
        f"(budget {fmt_bytes(ctx.conf.inflight_budget_bytes)})"
    )
    print(
        f"  stalls={result.backpressure_stalls}  spills={result.spills} "
        f"(h2={result.spills_h2} ser={result.spills_serialized})  "
        f"unspills={result.unspills}"
    )
    assert result.total_bytes == whole
    print(f"\nstreaming speedup: x{rdd_wall / stream_wall:.2f}")


if __name__ == "__main__":
    main()
