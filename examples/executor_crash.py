"""Executor crash-restart end-to-end: the fault plan kills the executor
mid-job, a successor VM recovers the durable H2 image, the rebuilt block
manager re-adopts every committed cached partition, and lineage
recomputes whatever did not survive.

Builds a cached three-stage mini-Spark job (``src -> mid -> top``, the
middle stage deliberately expensive), schedules a kill at task 6 of the
final stage — after a major GC committed the cache to H2 — and drives
the job to completion through the bounded-restart loop, printing the
crash/recovery/adoption timeline as it unfolds.  Then points at the
``phoenix`` experiment for the full crash-point x policy x
persisted-fraction matrix.

Run:  python examples/executor_crash.py
"""

from repro import FaultConfig, JavaVM, TeraHeapConfig, VMConfig, gb
from repro.frameworks.spark import (
    CachePolicy,
    SparkConf,
    SparkContext,
    run_job,
)
from repro.units import KiB


def make_vm(fault=None) -> JavaVM:
    return JavaVM(
        VMConfig(
            heap_size=gb(8),
            teraheap=TeraHeapConfig(
                enabled=True,
                h2_size=gb(64),
                region_size=64 * KiB,
                promotion_buffer_size=32 * KiB,
                writeback_policy="commit",  # durable epoch per major GC
            ),
            page_cache_size=gb(8),
            faults=fault,
            audit="full",
        )
    )


def build(ctx: SparkContext):
    src = ctx.range_rdd(gb(1), compute_ops_per_chunk=200, name="src")
    mid = src.map(ops_per_chunk=2000, name="mid").persist()
    top = mid.map(ops_per_chunk=200, name="top")
    return mid, top


def main() -> None:
    # ------------------------------------------------------------------
    # Cold baseline: the same job on a crash-free VM.
    # ------------------------------------------------------------------
    ctx = SparkContext(
        make_vm(),
        SparkConf(cache_policy=CachePolicy.TERAHEAP, num_partitions=4),
    )
    _, top = build(ctx)
    baseline = top.evaluate()
    ctx.vm.major_gc()
    baseline += top.evaluate()
    cold_wall = ctx.vm.clock.now
    print(f"crash-free run: value={baseline} wall={cold_wall:.4f}s")

    # ------------------------------------------------------------------
    # Crashed run: die at task 6 of stage "top" — i.e. in the second
    # pass, after the major GC committed the cached blocks to H2.
    # ------------------------------------------------------------------
    fault = FaultConfig(seed=11, crash_stage="top", crash_task=6)
    ctx = SparkContext(
        make_vm(fault),
        SparkConf(cache_policy=CachePolicy.TERAHEAP, num_partitions=4),
    )
    mid, top = build(ctx)

    def job() -> int:
        total = top.evaluate()
        ctx.vm.major_gc()
        return total + top.evaluate()

    result = run_job(ctx, job)

    print(f"\nsurvived {result.restarts} executor crash(es):")
    for report in result.reports:
        print(f"  [restart] {report.describe()}")
        print(f"            committed epoch {report.recovery.committed_epoch}")
    log = ctx.vm.resilience.log
    for ev in log.crashes:
        print(f"  [crash]   t={ev.time:.4f}s at {ev.safepoint}: {ev.detail}")
    for ev in log.adoptions:
        print(f"  [adopt]   {ev.label}: {ev.outcome} {ev.detail}")

    recovery_wall = ctx.vm.clock.now
    assert result.value == baseline, "recovered value must be crash-free-exact"
    print(
        f"\nvalue={result.value} (crash-free-exact), recovery "
        f"wall={recovery_wall:.4f}s vs cold recompute {cold_wall:.4f}s "
        f"({cold_wall / recovery_wall:.2f}x) — "
        f"{ctx.block_manager.adoptions} blocks re-adopted from H2, "
        f"{ctx.block_manager.recomputes} recomputed from lineage"
    )
    print(
        "\nfull matrix (crash point x writeback policy x persisted "
        "fraction):\n  python -m repro phoenix"
    )


if __name__ == "__main__":
    main()
