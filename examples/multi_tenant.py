"""Multi-tenant server box end-to-end: four co-located TeraHeap VMs
share one NVMe device and one DR2 budget, a bandwidth arbiter lends
idle tenants' headroom to the busy ones, and a memory-pressure arbiter
retunes per-tenant H1 watermarks, H2 byte budgets and page-cache
quotas every epoch.

Runs the same heterogeneous tenant mix twice — arbiters on vs a
static-1/N control — and prints the per-tenant ledgers side by side,
so the fairness story is visible: under arbitration the slowest
tenant's normalized progress closes on the fastest's without the box
giving up aggregate throughput.  Then points at the `serverscale`
experiment for the full tenant-count × dataset-size matrix.

Run:  python examples/multi_tenant.py
"""

from repro.server import ServerBox, ServerSpec
from repro.units import gb

#: four tenants, mean 256 MB dataset, ±60% spread: tenant 0 is the
#: lightest, tenant 3 the heaviest — the mix the arbiter must balance
SPEC = dict(tenants=4, mean_dataset_bytes=gb(1) // 4, spread=0.6)


def run_box(arbiter: bool):
    box = ServerBox(ServerSpec(arbiter=arbiter, **SPEC))
    return box, box.run()


def print_report(title, report):
    print(f"--- {title} ---")
    print(
        f"makespan {report.makespan:8.3f} s   "
        f"aggregate {report.aggregate_throughput:12.0f} B/s   "
        f"device busy {report.device_busy_fraction:6.1%}   "
        f"fairness gap {report.fairness_gap:.3f}"
    )
    for t in report.tenants:
        print(
            f"  {t.name}: dataset {t.dataset_bytes:>9d} B  "
            f"finish {t.finish_time:7.3f} s  "
            f"progress {t.progress_rate:7.3f} /s  "
            f"p99 pause {t.p99_pause * 1e3:7.3f} ms  "
            f"h2 {t.h2_moved_bytes:>8d} B"
        )


def main():
    box, arbitrated = run_box(arbiter=True)
    _, control = run_box(arbiter=False)
    print_report("arbiters on (work-conserving shares, pressure epochs)",
                 arbitrated)
    print_report("control (static 1/N partitions)", control)

    gap_a, gap_c = arbitrated.fairness_gap, control.fairness_gap
    print()
    print(
        f"fairness gap narrowed {gap_c:.3f} -> {gap_a:.3f} "
        f"({'yes' if gap_a < gap_c else 'no'}), throughput "
        f"{arbitrated.aggregate_throughput / control.aggregate_throughput:.2f}x "
        f"of control"
    )
    print(f"arbiter epochs fired: {len(box.pressure.records)}")
    if box.pressure.records:
        last = box.pressure.records[-1]
        print("last epoch watermarks:", dict(sorted(last.watermarks.items())))

    print()
    print("Full matrix: python -m repro serverscale   (see EXPERIMENTS.md)")


if __name__ == "__main__":
    main()
