"""Quickstart: the TeraHeap dual-heap lifecycle in ~40 lines.

Creates a JVM with a DRAM H1 and an NVMe-backed H2, tags an object group
through the hint interface, watches it migrate to H2 at the next major GC,
then drops it and watches its regions get reclaimed in bulk.

Run:  python examples/quickstart.py
"""

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.units import KiB


def main() -> None:
    config = VMConfig(
        heap_size=gb(8),  # H1: the regular DRAM heap
        teraheap=TeraHeapConfig(
            enabled=True,
            h2_size=gb(256),       # H2 over the (simulated) NVMe SSD
            region_size=16 * KiB,  # 16 MB regions at paper scale
        ),
    )
    vm = JavaVM(config)

    # Build a "partition": one root key-object referencing 100 records.
    with vm.roots.frame() as frame:  # pin during construction
        records = [frame.push(vm.allocate(2048)) for _ in range(100)]
        partition = vm.allocate(1024, refs=records, name="partition-0")
    vm.roots.add(partition)

    # The hint interface (Section 3.2): tag the root, advise the move.
    vm.h2_tag_root(partition, "rdd-0")
    vm.h2_move("rdd-0")

    vm.major_gc()
    print(f"partition now lives in: {partition.space.value}")
    print(f"objects moved to H2:    {vm.h2.objects_moved}")
    print(f"H2 regions in use:      {len(vm.h2.active_regions())}")

    # Mutators read H2 objects directly — no deserialization.
    vm.read_object(records[0])

    # Drop the partition: its H2 regions die and are reclaimed in bulk,
    # with no device I/O and no object scanning.
    vm.roots.remove(partition)
    vm.major_gc()
    print(f"regions reclaimed:      {vm.h2.regions_reclaimed}")

    print("\nexecution time breakdown (the paper's four stacks):")
    for bucket, seconds in vm.breakdown().items():
        print(f"  {bucket:<10s} {seconds:8.4f} s")


if __name__ == "__main__":
    main()
