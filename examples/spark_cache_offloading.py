"""Spark caching: the paper's motivating scenario (Sections 1 and 5).

Runs Spark PageRank on an 80 GB (paper-scale) graph with a 64 GB heap
under two configurations:

- **Spark-SD**: the common practice — cache half on-heap, serialize the
  rest to the NVMe off-heap store, and pay deserialization + GC on every
  iteration;
- **TeraHeap**: cache partitions on the unified dual heap; they migrate
  to H2 and are read in place.

Prints the Figure 6-style execution-time breakdown for both.

Run:  python examples/spark_cache_offloading.py
"""

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.devices.nvme import NVMeSSD
from repro.frameworks.spark import CachePolicy, SparkConf, SparkContext
from repro.frameworks.spark.workloads import run_pagerank
from repro.units import KiB

DATASET_GB = 80
HEAP_GB = 64


def run(policy: CachePolicy) -> JavaVM:
    teraheap = TeraHeapConfig(
        enabled=policy is CachePolicy.TERAHEAP,
        h2_size=gb(1024),
        region_size=64 * KiB,
    )
    vm = JavaVM(
        VMConfig(
            heap_size=gb(HEAP_GB), teraheap=teraheap, page_cache_size=gb(16)
        )
    )
    ctx = SparkContext(
        vm,
        SparkConf(cache_policy=policy, offheap_device=NVMeSSD(vm.clock)),
    )
    run_pagerank(ctx, gb(DATASET_GB))
    return vm


def report(label: str, vm: JavaVM) -> float:
    total = vm.elapsed()
    stats = vm.collector.stats
    print(f"\n{label}: {total:9.1f} simulated seconds")
    for bucket, seconds in vm.breakdown().items():
        bar = "#" * int(40 * seconds / total)
        print(f"  {bucket:<10s} {seconds:9.1f} s  {bar}")
    print(f"  minor GCs: {stats.minor_count}   major GCs: {stats.major_count}")
    return total


def main() -> None:
    print(f"PageRank, {DATASET_GB} GB dataset, {HEAP_GB} GB heap")
    sd = report("Spark-SD  (off-heap S/D)", run(CachePolicy.SD))
    th = report("TeraHeap  (dual heap)", run(CachePolicy.TERAHEAP))
    print(f"\nTeraHeap improvement: {1 - th / sd:.1%}")


if __name__ == "__main__":
    main()
