"""Device brownout end-to-end: the health watchdog sees a slow device,
the H2 governor trips its circuit, caching falls back gracefully, and
half-open probes re-close the circuit once the device recovers.

Builds one governed TeraHeap VM with a scheduled brownout window (50%
service rate, region allocations denied) and drives a small caching
workload across it, printing the device-health and circuit timelines as
they unfold.  Then points at the `brownout` experiment for the full
governor-on/off matrix.

Run:  python examples/device_brownout.py
"""

from repro import FaultConfig, JavaVM, TeraHeapConfig, VMConfig, gb
from repro.config import GovernorConfig
from repro.devices.base import AccessPattern
from repro.metrics.trace import resilience_events_csv
from repro.units import KiB

#: brownout window: starts at 0.2 simulated seconds, lasts 0.5 s,
#: during which the device delivers half its clean service rate
WINDOW = (0.2, 0.5, 0.5)


def make_vm() -> JavaVM:
    return JavaVM(
        VMConfig(
            heap_size=gb(4),
            teraheap=TeraHeapConfig(
                enabled=True, h2_size=gb(64), region_size=16 * KiB
            ),
            page_cache_size=64 * KiB,  # tiny: loads go to the device
            faults=FaultConfig(
                seed=42,
                brownout_windows=(WINDOW,),
                brownout_denies_alloc=True,
            ),
            governor=GovernorConfig(probe_backoff=0.01),
        )
    )


def main() -> None:
    vm = make_vm()
    vm.health.add_listener(
        lambda t: print(f"  [health]  {t.line()}")
    )

    groups = []
    for g in range(10):
        label = f"rdd-{g}"
        with vm.roots.frame() as frame:
            records = [frame.push(vm.allocate(4096)) for _ in range(12)]
            root = vm.allocate(1024, refs=records, name=label)
        vm.roots.add(root)
        vm.h2_tag_root(root, label)
        vm.h2_move(label)
        vm.major_gc()
        groups.append(records)
        # Stream reads over everything cached so far: H2-resident loads
        # miss the tiny page cache and feed the health monitor.
        for cached in groups:
            for record in cached:
                vm.read_object(record, AccessPattern.RANDOM)

    print("\ncircuit timeline:")
    for line in vm.governor.timeline_digest().splitlines():
        print(f"  {line}")
    print(f"\ngovernor: {vm.governor.describe()}")
    print(f"devices:  {vm.health.describe()}")
    print(
        f"halts={vm.collector.policy.governor_halts} "
        f"alloc_stalls={vm.alloc_stalls} "
        f"emergency_gcs={vm.emergency_gcs}"
    )

    print("\nresilience events CSV (first lines):")
    for line in resilience_events_csv(vm.resilience.log).splitlines()[:12]:
        print(f"  {line}")

    print(
        "\nFull governor-on/off matrix: "
        "python -m repro brownout  (see EXPERIMENTS.md)"
    )


if __name__ == "__main__":
    main()
