"""The brownout chaos-soak experiment and brownout x crash layering."""

from hypothesis import given, settings, strategies as st

from repro.errors import SimulatedCrash
from repro.experiments import brownout, chaoskill
from repro.devices.durability import image_of
from repro.faults.plan import FaultConfig


class TestBrownoutExperiment:
    def test_smoke_matrix_meets_acceptance(self):
        # The CI gate's exact shape: governed cells survive with bounded
        # stalls, ungoverned controls die (or stall >= 2x), cell digests
        # byte-identical across reruns.
        results, failures, t_clean = brownout.run_matrix(
            durations=(0.25,), steps=26, check_determinism=True
        )
        assert failures == []
        assert t_clean > 0
        by_gov = {r.governor: r for r in results}
        on, off = by_gov[True], by_gov[False]
        assert not on.oom and on.completed_steps == 26
        assert on.trips >= 1 and on.probes >= 1
        # The circuit re-closed after the window: earned, stepwise.
        assert on.circuit_states[-1] == "closed"
        assert "open" in on.circuit_states
        assert off.oom
        assert off.heap_report  # the OOM carried a diagnostic report
        assert "simulated heap report" in off.heap_report

    def test_governed_cell_digest_is_stable(self):
        t = brownout.clean_runtime(steps=12)
        first = brownout.run_cell(True, 0.3, t, steps=12)
        second = brownout.run_cell(True, 0.3, t, steps=12)
        assert first.digest == second.digest
        assert "[fault-schedule]" in first.digest
        assert "[circuit]" in first.digest

    def test_main_smoke_exits_zero(self):
        assert brownout.main(["--smoke", "--check", "--steps", "26"]) == 0

    def test_health_and_circuit_events_reach_resilience_log(self):
        t = brownout.clean_runtime(steps=12)
        win = ((brownout.WINDOW_START * t, 0.5 * t, 0.5),)
        vm = brownout.make_vm(True, win, probe_backoff=0.02 * t)
        workload = brownout.Workload(vm, brownout.WORKLOAD_SEED)
        for step in range(12):
            workload.run_step(step)
        log = vm.resilience.log
        assert log.health_transitions >= 1
        assert log.circuit_transitions >= 1
        # The CSV/trace exports see the same timeline.
        from repro.metrics.trace import resilience_events_csv
        from repro.metrics.chrome_trace import resilience_trace_events

        csv = resilience_events_csv(log)
        assert "health" in csv and "circuit" in csv
        names = {e["name"] for e in resilience_trace_events(log)}
        assert any(n.startswith("health:") for n in names)
        assert any(n.startswith("circuit:") for n in names)


def crash_with_brownout(point, crash_after, window, policy="commit"):
    """One chaoskill cell with a brownout window layered over the crash."""
    fault = FaultConfig(
        seed=chaoskill.WORKLOAD_SEED,
        fault_seed=chaoskill.FAULT_SEED,
        crash_point=point,
        crash_after=crash_after,
        brownout_windows=window,
        brownout_denies_alloc=False,  # slowdown only: crashes stay reachable
    )
    vm = chaoskill.make_vm(policy, fault)
    workload = chaoskill.Workload(vm, chaoskill.WORKLOAD_SEED)
    try:
        for i in range(4):
            workload.run_phase(i)
    except SimulatedCrash:
        image = image_of(vm.h2.mapping)
        digest = image.digest()
        fresh = chaoskill.make_vm(policy)
        report = fresh.recover_h2(image)
        # Post-recovery invariants must hold with the brownout layered in.
        fresh.auditor.audit("recovery", fresh.collector.mark_epoch)
        return digest, report.digest()
    return "no-crash", "no-crash"


class TestBrownoutOverCrashPoints:
    @settings(max_examples=8, deadline=None)
    @given(
        point=st.sampled_from([p for p, _ in chaoskill.CRASH_POINTS]),
        start=st.floats(0.0, 2.0),
        duration=st.floats(0.01, 1.0),
    )
    def test_recovery_survives_layered_brownout(self, point, start, duration):
        window = ((start, duration, 0.5),)
        first = crash_with_brownout(point, 2, window)
        second = crash_with_brownout(point, 2, window)
        # Recovery is clean (no exception above) and byte-deterministic.
        assert first == second
