"""Object model, spaces, H1 card table, roots, managed heap."""

import pytest

from repro.config import VMConfig
from repro.errors import ConfigError
from repro.heap.card_table import CardTable
from repro.heap.heap import H1_BASE, ManagedHeap
from repro.heap.object_model import HeapObject, SpaceId
from repro.heap.roots import RootSet
from repro.heap.spaces import OldGeneration, Space
from repro.units import gb


# ---------------------------------------------------------------------
# HeapObject
# ---------------------------------------------------------------------
class TestObjectModel:
    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            HeapObject(8)

    def test_oids_unique(self):
        a, b = HeapObject(64), HeapObject(64)
        assert a.oid != b.oid

    def test_defaults(self):
        o = HeapObject(64)
        assert o.space is SpaceId.EDEN
        assert o.label is None
        assert not o.h2_candidate
        assert o.serializable

    def test_in_young_and_in_h1(self):
        o = HeapObject(64)
        for space, young, h1 in [
            (SpaceId.EDEN, True, True),
            (SpaceId.FROM, True, True),
            (SpaceId.TO, True, True),
            (SpaceId.OLD, False, True),
            (SpaceId.H2, False, False),
            (SpaceId.FREED, False, False),
        ]:
            o.space = space
            assert o.in_young is young
            assert o.in_h1 is h1

    def test_in_h2(self):
        o = HeapObject(64)
        o.space = SpaceId.H2
        assert o.in_h2

    def test_end_address(self):
        o = HeapObject(100)
        o.address = 1000
        assert o.end_address() == 1100

    def test_refs_are_copied(self):
        children = [HeapObject(64)]
        o = HeapObject(64, refs=children)
        children.append(HeapObject(64))
        assert len(o.refs) == 1


# ---------------------------------------------------------------------
# Spaces
# ---------------------------------------------------------------------
class TestSpace:
    def test_bump_allocation(self):
        s = Space(SpaceId.EDEN, 0, 1000)
        a, b = HeapObject(100), HeapObject(200)
        assert s.allocate(a) and s.allocate(b)
        assert a.address == 0
        assert b.address == 100
        assert s.used == 300
        assert s.free == 700

    def test_allocation_fails_when_full(self):
        s = Space(SpaceId.EDEN, 0, 100)
        assert not s.allocate(HeapObject(128))

    def test_allocate_sets_space(self):
        s = Space(SpaceId.OLD, 0, 1000)
        o = HeapObject(64)
        s.allocate(o)
        assert o.space is SpaceId.OLD

    def test_reset(self):
        s = Space(SpaceId.EDEN, 0, 1000)
        s.allocate(HeapObject(64))
        s.reset()
        assert s.used == 0
        assert s.objects == []

    def test_occupancy(self):
        s = Space(SpaceId.EDEN, 0, 1000)
        s.allocate(HeapObject(500))
        assert s.occupancy == pytest.approx(0.5)

    def test_objects_overlapping(self):
        s = Space(SpaceId.OLD, 0, 10000)
        objs = [HeapObject(100) for _ in range(10)]
        for o in objs:
            s.allocate(o)
        found = s.objects_overlapping(150, 350)
        assert objs[1] in found  # [100,200) overlaps
        assert objs[2] in found
        assert objs[3] in found  # [300,400) overlaps
        assert objs[0] not in found
        assert objs[5] not in found

    def test_objects_overlapping_spanning_object(self):
        s = Space(SpaceId.OLD, 0, 10000)
        big = HeapObject(5000)
        s.allocate(big)
        assert s.objects_overlapping(4000, 4100) == [big]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Space(SpaceId.EDEN, 0, -1)

    def test_old_generation_rebuild(self):
        old = OldGeneration(0, 10000)
        objs = [HeapObject(100) for _ in range(3)]
        for i, o in enumerate(objs):
            o.address = i * 100
        old.rebuild_after_compaction(objs)
        assert old.top == 300
        assert old.objects == objs


# ---------------------------------------------------------------------
# H1 card table
# ---------------------------------------------------------------------
class TestCardTable:
    def test_card_index(self):
        ct = CardTable(base=0, size=4096, card_size=512)
        assert ct.num_cards == 8
        assert ct.card_index(0) == 0
        assert ct.card_index(511) == 0
        assert ct.card_index(512) == 1

    def test_out_of_range(self):
        ct = CardTable(base=0, size=4096)
        with pytest.raises(ValueError):
            ct.card_index(4096)

    def test_mark_and_clear(self):
        ct = CardTable(base=0, size=4096)
        ct.mark(600)
        assert ct.is_dirty(1)
        ct.clear(1)
        assert not ct.is_dirty(1)

    def test_mark_object_spans_cards(self):
        ct = CardTable(base=0, size=4096)
        ct.mark_object(400, 300)  # spans cards 0 and 1
        assert ct.is_dirty(0) and ct.is_dirty(1)

    def test_dirty_cards_sorted(self):
        ct = CardTable(base=0, size=4096)
        ct.mark(3000)
        ct.mark(100)
        assert list(ct.dirty_cards()) == [0, 5]

    def test_card_range(self):
        ct = CardTable(base=1000, size=4096)
        lo, hi = ct.card_range(0)
        assert (lo, hi) == (1000, 1512)

    def test_retain(self):
        ct = CardTable(base=0, size=4096)
        ct.mark(0)
        ct.mark(1024)
        ct.retain([2])
        assert not ct.is_dirty(0)
        assert ct.is_dirty(2)

    def test_invalid_card_size(self):
        with pytest.raises(ValueError):
            CardTable(0, 4096, card_size=0)


# ---------------------------------------------------------------------
# Roots
# ---------------------------------------------------------------------
class TestRootSet:
    def test_add_remove(self):
        roots = RootSet()
        o = HeapObject(64)
        roots.add(o)
        assert o in roots
        roots.remove(o)
        assert o not in roots

    def test_iteration(self):
        roots = RootSet()
        objs = [HeapObject(64) for _ in range(3)]
        for o in objs:
            roots.add(o)
        assert set(r.oid for r in roots) == {o.oid for o in objs}

    def test_frame_pins_objects(self):
        roots = RootSet()
        o = HeapObject(64)
        with roots.frame() as frame:
            frame.push(o)
            assert o in roots
            assert len(roots) == 1
        assert o not in roots

    def test_nested_frames(self):
        roots = RootSet()
        a, b = HeapObject(64), HeapObject(64)
        with roots.frame() as f1:
            f1.push(a)
            with roots.frame() as f2:
                f2.push(b)
                assert a in roots and b in roots
            assert b not in roots
        assert a not in roots

    def test_frame_push_all(self):
        roots = RootSet()
        objs = [HeapObject(64) for _ in range(3)]
        with roots.frame() as frame:
            frame.push_all(objs)
            assert len(roots) == 3


# ---------------------------------------------------------------------
# ManagedHeap
# ---------------------------------------------------------------------
class TestManagedHeap:
    def make_heap(self):
        return ManagedHeap(VMConfig(heap_size=gb(8)))

    def test_layout_is_contiguous(self):
        heap = self.make_heap()
        assert heap.eden.base == H1_BASE
        assert heap.survivor_from.base == heap.eden.end
        assert heap.survivor_to.base == heap.survivor_from.end
        assert heap.old.base == heap.survivor_to.end

    def test_allocation_goes_to_eden(self):
        heap = self.make_heap()
        o = HeapObject(1024)
        assert heap.try_allocate(o)
        assert o.space is SpaceId.EDEN

    def test_oversized_goes_to_old(self):
        heap = self.make_heap()
        o = HeapObject(heap.eden.capacity // 2 + 16)
        assert heap.try_allocate(o)
        assert o.space is SpaceId.OLD

    def test_pretenure_threshold(self):
        heap = self.make_heap()
        heap.pretenure_threshold = 1024
        o = HeapObject(2048)
        assert heap.try_allocate(o)
        assert o.space is SpaceId.OLD

    def test_allocation_fails_when_eden_full(self):
        heap = self.make_heap()
        size = heap.eden.capacity // 4
        while heap.try_allocate(HeapObject(size)):
            pass
        assert not heap.try_allocate(HeapObject(size))

    def test_swap_survivors(self):
        heap = self.make_heap()
        o = HeapObject(64)
        heap.survivor_to.allocate(o)
        heap.swap_survivors()
        assert o.space is SpaceId.FROM
        assert heap.survivor_from.objects == [o]

    def test_used_and_occupancy(self):
        heap = self.make_heap()
        heap.try_allocate(HeapObject(1024))
        assert heap.used() == 1024
        assert 0 < heap.live_occupancy() < 1
