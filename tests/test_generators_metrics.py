"""Dataset generators and result reporting."""

import numpy as np
import pytest

from repro import JavaVM, VMConfig, gb
from repro.metrics.report import ExperimentResult, collect_result, normalize
from repro.workloads.generators import (
    make_graph,
    make_ml_dataset,
    make_table,
)
from repro.units import KiB


class TestGraphGenerator:
    def test_sized_to_target(self):
        g = make_graph(gb(4), num_vertices=500)
        assert g.total_bytes() == pytest.approx(gb(4), rel=0.15)

    def test_deterministic_per_seed(self):
        a = make_graph(gb(2), num_vertices=300, seed=9)
        b = make_graph(gb(2), num_vertices=300, seed=9)
        assert a.num_edges == b.num_edges
        assert all(
            np.array_equal(x, y) for x, y in zip(a.out_edges, b.out_edges)
        )

    def test_different_seeds_differ(self):
        a = make_graph(gb(2), num_vertices=300, seed=1)
        b = make_graph(gb(2), num_vertices=300, seed=2)
        assert a.num_edges != b.num_edges or any(
            not np.array_equal(x, y)
            for x, y in zip(a.out_edges, b.out_edges)
        )

    def test_no_self_loops(self):
        g = make_graph(gb(1), num_vertices=200)
        for v, targets in enumerate(g.out_edges):
            assert v not in targets

    def test_every_vertex_has_an_edge(self):
        g = make_graph(gb(1), num_vertices=200)
        assert all(len(e) >= 1 for e in g.out_edges)

    def test_power_law_skew(self):
        """Hubs attract edges: the top decile receives a large share."""
        g = make_graph(gb(2), num_vertices=500, avg_degree=8)
        targets = np.concatenate(g.out_edges)
        hub_share = (targets < 50).mean()
        assert hub_share > 0.2

    def test_edge_array_size_positive(self):
        g = make_graph(gb(1), num_vertices=100)
        assert all(
            g.edge_array_size(v) >= 64 for v in range(g.num_vertices)
        )


class TestMLAndTable:
    def test_ml_dataset_sized(self):
        ds = make_ml_dataset(gb(2))
        assert ds.total_bytes == pytest.approx(gb(2), rel=0.1)
        assert ds.num_records > 0

    def test_ml_chunking(self):
        ds = make_ml_dataset(gb(1), chunk_size=4 * KiB)
        assert ds.chunk_size == 4 * KiB
        assert ds.num_chunks == gb(1) // (4 * KiB)

    def test_table_sized(self):
        t = make_table(gb(1))
        assert t.total_bytes == pytest.approx(gb(1), rel=0.1)
        assert t.rows_per_chunk > 0


class TestReporting:
    def test_collect_result_from_vm(self):
        vm = JavaVM(VMConfig(heap_size=gb(4)))
        vm.allocate(1024)
        vm.minor_gc()
        r = collect_result(vm, "PR", "spark-sd", dram_gb=32, heap_gb=16)
        assert r.total > 0
        assert r.minor_gcs == 1
        assert not r.oom
        assert set(r.breakdown) == {"other", "sd_io", "minor_gc", "major_gc", "alloc_stall"}

    def test_share(self):
        r = ExperimentResult(
            "PR", "x", 1, 1, total=10.0, breakdown={"other": 5.0}
        )
        assert r.share("other") == 0.5
        assert r.share("sd_io") == 0.0

    def test_oom_row(self):
        r = ExperimentResult("PR", "x", 32, 16, oom=True)
        assert "OOM" in r.row()

    def test_normalize(self):
        rows = [
            ExperimentResult("PR", "sd", 32, 16, oom=True),
            ExperimentResult("PR", "sd", 48, 32, total=100.0),
            ExperimentResult("PR", "th", 48, 32, total=50.0),
        ]
        normalize(rows)
        assert rows[1].extras["normalized"] == pytest.approx(1.0)
        assert rows[2].extras["normalized"] == pytest.approx(0.5)

    def test_share_zero_total(self):
        r = ExperimentResult("PR", "x", 1, 1)
        assert r.share("other") == 0.0
