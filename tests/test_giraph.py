"""Mini-Giraph: programs, BSP job, message stores, OOC, TeraHeap mode."""

import numpy as np
import pytest

from repro import JavaVM, TeraHeapConfig, VMConfig, gb
from repro.devices.nvme import NVMeSSD
from repro.frameworks.giraph import (
    BFSProgram,
    CDLPProgram,
    GiraphConf,
    GiraphJob,
    GiraphMode,
    PageRankProgram,
    SSSPProgram,
    WCCProgram,
)
from repro.frameworks.giraph.job import EDGES_LABEL
from repro.frameworks.giraph.workloads import (
    GIRAPH_PROGRAMS,
    make_giraph_graph,
    run_giraph,
)
from repro.heap.object_model import SpaceId
from repro.units import KiB
from repro.workloads.generators import make_graph


@pytest.fixture
def graph():
    return make_graph(gb(2), num_vertices=200, avg_degree=4, seed=1)


def make_vm(heap_gb=8, th=False):
    thc = (
        TeraHeapConfig(enabled=True, h2_size=gb(64), region_size=16 * KiB)
        if th
        else TeraHeapConfig()
    )
    return JavaVM(
        VMConfig(heap_size=gb(heap_gb), teraheap=thc, page_cache_size=gb(2))
    )


class TestPrograms:
    def test_pagerank_converges_to_distribution(self, graph):
        prog = PageRankProgram(graph, iterations=5)
        senders = prog.initial_senders()
        for s in range(prog.max_supersteps):
            received = prog._messages_from(senders)
            senders, done = prog.superstep(s, received, senders)
            if done:
                break
        assert prog.ranks.sum() == pytest.approx(1.0, rel=0.3)
        assert (prog.ranks >= 0).all()

    def test_wcc_assigns_component_labels(self, graph):
        prog = WCCProgram(graph)
        senders = prog.initial_senders()
        for s in range(prog.max_supersteps):
            received = prog._messages_from(senders)
            senders, done = prog.superstep(s, received, senders)
            if done:
                break
        assert done
        # Labels are component minima: every label <= its vertex id.
        assert (prog.components <= np.arange(graph.num_vertices)).all()

    def test_bfs_distances_monotone(self, graph):
        prog = BFSProgram(graph, source=0)
        senders = prog.initial_senders()
        for s in range(prog.max_supersteps):
            received = prog._messages_from(senders)
            senders, done = prog.superstep(s, received, senders)
            if done:
                break
        assert prog.dist[0] == 0
        reached = prog.dist[prog.dist >= 0]
        assert len(reached) > 1

    def test_sssp_relaxation_bounds_bfs(self, graph):
        bfs = BFSProgram(graph, source=0)
        sssp = SSSPProgram(graph, source=0)
        for prog in (bfs, sssp):
            senders = prog.initial_senders()
            for s in range(prog.max_supersteps):
                received = prog._messages_from(senders)
                senders, done = prog.superstep(s, received, senders)
                if done:
                    break
        # Weighted distance >= hop count wherever both reached.
        mask = bfs.dist >= 0
        finite = np.isfinite(sssp.dist)
        both = mask & finite
        assert (sssp.dist[both] >= bfs.dist[both]).all()

    def test_cdlp_fixed_rounds(self, graph):
        prog = CDLPProgram(graph, iterations=3)
        senders = prog.initial_senders()
        steps = 0
        for s in range(prog.max_supersteps):
            received = prog._messages_from(senders)
            senders, done = prog.superstep(s, received, senders)
            steps += 1
            if done:
                break
        assert steps == 3

    def test_frontier_smaller_than_all_active(self, graph):
        bfs = BFSProgram(graph, source=0)
        assert bfs.initial_senders().sum() == 1
        pr = PageRankProgram(graph)
        assert pr.initial_senders().all()


class TestGiraphJob:
    def test_load_graph_builds_partition_store(self, graph):
        vm = make_vm()
        conf = GiraphConf(mode=GiraphMode.OOC, device=NVMeSSD(vm.clock))
        job = GiraphJob(vm, conf, graph)
        job.load_graph()
        assert len(job.partition_roots) == conf.num_partitions
        assert all(v is not None for v in job.vertex_objs)

    def test_run_executes_supersteps(self, graph):
        vm = make_vm()
        conf = GiraphConf(mode=GiraphMode.OOC, device=NVMeSSD(vm.clock))
        job = GiraphJob(vm, conf, graph)
        job.load_graph()
        steps = job.run(PageRankProgram(graph, iterations=3))
        assert steps == 3
        assert job.messages_sent > 0

    def test_teraheap_mode_moves_edges(self, graph):
        vm = make_vm(th=True)
        conf = GiraphConf(mode=GiraphMode.TERAHEAP)
        job = GiraphJob(vm, conf, graph)
        job.load_graph()
        vm.major_gc()
        edges = [e for e in job.edge_roots if e is not None]
        h2_edges = [e for e in edges if e.space is SpaceId.H2]
        assert h2_edges, "edge arrays should migrate to H2"
        assert h2_edges[0].label == EDGES_LABEL

    def test_message_stores_die_and_regions_reclaim(self, graph):
        vm = make_vm(heap_gb=3, th=True)  # tight heap: majors happen
        conf = GiraphConf(mode=GiraphMode.TERAHEAP)
        job = GiraphJob(vm, conf, graph)
        # Heavier messages so stores dominate the heap and must migrate.
        job.bytes_per_message = 2 * KiB
        job.load_graph()
        job.run(PageRankProgram(graph, iterations=6))
        vm.major_gc()  # final collection observes the retired stores
        assert vm.h2.regions_reclaimed > 0

    def test_ooc_offloads_under_pressure(self):
        big = make_graph(gb(6), num_vertices=400, avg_degree=4, seed=2)
        vm = make_vm(heap_gb=6)
        conf = GiraphConf(mode=GiraphMode.OOC, device=NVMeSSD(vm.clock))
        job = GiraphJob(vm, conf, big)
        job.load_graph()
        assert job.ooc.bytes_offloaded > 0

    def test_ooc_reloads_on_access(self):
        big = make_graph(gb(6), num_vertices=400, avg_degree=4, seed=2)
        vm = make_vm(heap_gb=7)
        conf = GiraphConf(mode=GiraphMode.OOC, device=NVMeSSD(vm.clock))
        job = GiraphJob(vm, conf, big)
        job.load_graph()
        job.run(PageRankProgram(big, iterations=2))
        assert job.ooc.bytes_reloaded > 0

    def test_vertices_never_tagged(self, graph):
        vm = make_vm(th=True)
        conf = GiraphConf(mode=GiraphMode.TERAHEAP)
        job = GiraphJob(vm, conf, graph)
        job.load_graph()
        job.run(PageRankProgram(graph, iterations=2))
        assert all(
            v.label is None
            for v in job.vertex_objs
            if v is not None and v.space is not SpaceId.FREED
        )


class TestWorkloadRegistry:
    def test_all_five_programs_present(self):
        assert set(GIRAPH_PROGRAMS) == {"PR", "CDLP", "WCC", "BFS", "SSSP"}

    @pytest.mark.parametrize("name", ["PR", "BFS"])
    def test_run_giraph_end_to_end(self, name):
        vm = make_vm(th=True)
        conf = GiraphConf(mode=GiraphMode.TERAHEAP)
        g = make_giraph_graph(gb(3), seed=3)
        job = run_giraph(vm, conf, g, name)
        assert job.supersteps_run > 0
