"""Promotion buffers and the H2 heap allocator."""

import pytest

from repro.clock import Clock
from repro.config import TeraHeapConfig
from repro.devices.mmap import MappedFile
from repro.devices.nvme import NVMeSSD
from repro.devices.page_cache import PageCache
from repro.errors import OutOfMemoryError
from repro.heap.object_model import HeapObject
from repro.teraheap.h2_heap import H2_BASE, H2Heap
from repro.teraheap.promotion import DIRECT_WRITE_THRESHOLD, PromotionManager
from repro.units import KiB, gb


@pytest.fixture
def h2():
    clock = Clock()
    device = NVMeSSD(clock)
    config = TeraHeapConfig(
        enabled=True, h2_size=gb(16), region_size=16 * KiB
    )
    return H2Heap(config, device, clock, page_cache_size=gb(2))


class TestPromotion:
    def make_manager(self):
        clock = Clock()
        dev = NVMeSSD(clock)
        cache = PageCache(dev, 64 * 4096)
        mapping = MappedFile(dev, H2_BASE, 1 << 24, cache)
        return PromotionManager(mapping, buffer_capacity=64 * KiB), dev

    def place(self, size, addr):
        o = HeapObject(size)
        o.address = addr
        o.region_id = 0
        return o

    def test_small_objects_buffered(self):
        mgr, dev = self.make_manager()
        mgr.write_object(self.place(4 * KiB, H2_BASE), 0)
        assert dev.traffic.bytes_written == 0  # still staged
        mgr.flush_all()
        assert dev.traffic.bytes_written > 0
        assert mgr.objects_written == 1

    def test_buffer_overflow_flushes(self):
        mgr, dev = self.make_manager()
        for i in range(20):  # 20 * 4K > 64K buffer
            mgr.write_object(self.place(4 * KiB, H2_BASE + i * 4 * KiB), 0)
        assert dev.traffic.bytes_written > 0

    def test_large_objects_bypass_buffer(self):
        mgr, dev = self.make_manager()
        mgr.write_object(
            self.place(DIRECT_WRITE_THRESHOLD, H2_BASE), 0
        )
        assert mgr.direct_writes == 1
        assert dev.traffic.bytes_written >= DIRECT_WRITE_THRESHOLD

    def test_flush_all_coalesces_shared_pages(self):
        mgr, dev = self.make_manager()
        # Two regions' objects on the same 4 KiB page.
        mgr.write_object(self.place(1 * KiB, H2_BASE), 0)
        mgr.write_object(self.place(1 * KiB, H2_BASE + 1 * KiB), 1)
        mgr.flush_all()
        assert dev.traffic.bytes_written == 4 * KiB

    def test_batching_beats_per_object_writes(self):
        mgr, dev = self.make_manager()
        clock2 = Clock()
        dev2 = NVMeSSD(clock2)
        for i in range(8):
            mgr.write_object(self.place(1 * KiB, H2_BASE + i * KiB), 0)
            dev2.write(1 * KiB)  # unbatched alternative
        mgr.flush_all()
        assert mgr.mapping.device.clock.now < clock2.now


class TestH2Heap:
    def test_assign_address_groups_by_label(self, h2):
        a = h2.assign_address(HeapObject(1024), "rdd-1", epoch=1)
        b = h2.assign_address(HeapObject(1024), "rdd-1", epoch=1)
        c = h2.assign_address(HeapObject(1024), "rdd-2", epoch=1)
        assert a.index == b.index
        assert c.index != a.index
        assert a.label == "rdd-1"

    def test_region_overflow_opens_new_region(self, h2):
        first = h2.assign_address(HeapObject(12 * KiB), "x", 1)
        second = h2.assign_address(HeapObject(12 * KiB), "x", 1)
        assert first.index != second.index

    def test_object_larger_than_region_rejected(self, h2):
        with pytest.raises(OutOfMemoryError):
            h2.assign_address(HeapObject(64 * KiB), "x", 1)

    def test_region_at(self, h2):
        region = h2.assign_address(HeapObject(1024), "x", 1)
        obj_region = h2.region_at(region.start + 100)
        assert obj_region is region

    def test_cross_region_deps_directional(self, h2):
        h2.assign_address(HeapObject(1024), "a", 1)
        h2.assign_address(HeapObject(1024), "b", 1)
        h2.record_cross_region_ref(0, 1)
        assert 1 in h2.regions[0].deps
        assert 0 not in h2.regions[1].deps

    def test_self_reference_ignored(self, h2):
        h2.assign_address(HeapObject(1024), "a", 1)
        h2.record_cross_region_ref(0, 0)
        assert h2.regions[0].deps == set()

    def test_live_bit_propagates_through_deps(self, h2):
        for label in ("a", "b", "c"):
            h2.assign_address(HeapObject(1024), label, 1)
        h2.record_cross_region_ref(0, 1)
        h2.record_cross_region_ref(1, 2)
        h2.reset_live_bits()
        h2.mark_region_live(0)
        assert h2.regions[0].live
        assert h2.regions[1].live  # reachable from region 0
        assert h2.regions[2].live

    def test_directionality_allows_reclaiming_upstream(self, h2):
        """X->Y->Z with only Z referenced: X and Y reclaimable (the win
        over region groups, Section 3.3)."""
        for label in ("x", "y", "z"):
            h2.assign_address(HeapObject(1024), label, 1)
        h2.record_cross_region_ref(0, 1)
        h2.record_cross_region_ref(1, 2)
        h2.reset_live_bits()
        h2.mark_region_live(2)  # only Z referenced from H1
        reclaimed = h2.reclaim_dead_regions(epoch=2)
        assert reclaimed == 2
        assert not h2.regions[2].is_empty

    def test_group_policy_keeps_whole_group(self):
        clock = Clock()
        config = TeraHeapConfig(
            enabled=True,
            h2_size=gb(16),
            region_size=16 * KiB,
            region_policy="groups",
        )
        h2 = H2Heap(config, NVMeSSD(clock), clock, page_cache_size=gb(2))
        for label in ("x", "y", "z"):
            h2.assign_address(HeapObject(1024), label, 1)
        h2.record_cross_region_ref(0, 1)
        h2.record_cross_region_ref(1, 2)
        h2.reset_live_bits()
        h2.mark_region_live(2)
        reclaimed = h2.reclaim_dead_regions(epoch=2)
        assert reclaimed == 0  # the whole group stays alive

    def test_reclaim_reuses_region_indices(self, h2):
        region = h2.assign_address(HeapObject(1024), "a", 1)
        h2.reset_live_bits()
        h2.reclaim_dead_regions(epoch=2)
        again = h2.assign_address(HeapObject(1024), "b", 3)
        assert again.index == region.index

    def test_reclaim_clears_card_state(self, h2):
        region = h2.assign_address(HeapObject(1024), "a", 1)
        h2.card_table.mark_dirty(region.start)
        h2.reset_live_bits()
        h2.reclaim_dead_regions(epoch=2)
        assert h2.card_table.cards_to_scan(major=True) == []

    def test_metadata_grows_with_regions(self, h2):
        assert h2.metadata_bytes == 0
        h2.assign_address(HeapObject(1024), "a", 1)
        assert h2.metadata_bytes == 417

    def test_liveness_log_records_reclaimed(self, h2):
        h2.assign_address(HeapObject(1024), "a", 1)
        h2.reset_live_bits()
        h2.reclaim_dead_regions(epoch=2)
        assert len(h2.liveness_log) == 1
        assert h2.liveness_log[0].live_objects == 0

    def test_h2_exhaustion_raises(self):
        clock = Clock()
        config = TeraHeapConfig(
            enabled=True, h2_size=32 * KiB, region_size=16 * KiB
        )
        h2 = H2Heap(config, NVMeSSD(clock), clock, page_cache_size=gb(1))
        h2.assign_address(HeapObject(12 * KiB), "a", 1)
        h2.assign_address(HeapObject(12 * KiB), "b", 1)
        with pytest.raises(OutOfMemoryError):
            h2.assign_address(HeapObject(12 * KiB), "c", 1)

    def test_mutator_load_charges_clock(self, h2):
        obj = HeapObject(4096)
        h2.assign_address(obj, "a", 1)
        before = h2.clock.now
        h2.mutator_load(obj)
        assert h2.clock.now > before

    def test_mutator_store_is_rmw(self, h2):
        obj = HeapObject(4096)
        h2.assign_address(obj, "a", 1)
        h2.mutator_store(obj)
        assert h2.device.traffic.bytes_read > 0  # page faulted in
