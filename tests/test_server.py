"""Server layer: shared devices, arbiters, and multi-tenant scoping."""

import pytest

from repro.clock import Clock
from repro.config import GovernorConfig, TeraHeapConfig, VMConfig
from repro.devices.base import AccessPattern
from repro.devices.health import DeviceHealthMonitor, DeviceState
from repro.devices.nvme import NVMeSSD
from repro.devices.page_cache import PageCache
from repro.errors import DeviceFullError
from repro.faults import (
    register_policy,
    reset_registries,
    resilience_summary,
    unregister_policy,
)
from repro.faults.plan import FaultConfig
from repro.faults.policy import ResiliencePolicy
from repro.heap.store import HeapStore
from repro.runtime import JavaVM
from repro.server import (
    BandwidthArbiter,
    ServerBox,
    ServerSpec,
    TenantDevice,
)
from repro.units import KiB, gb


# ---------------------------------------------------------------------
# PageCache.resize (the arbiter's DR2 lever)
# ---------------------------------------------------------------------
def test_page_cache_resize_shrinks_evicts_and_keeps_durable_state():
    cache = PageCache(NVMeSSD(Clock()), capacity=64 * 4096)
    cache.write_through(range(32))
    assert len(cache) == 32
    pages = cache.resize(8 * 4096)
    assert pages == 8
    assert len(cache) <= 8
    # Durable state is device-side truth; quota moves must not touch it.
    for page in range(32):
        assert page in cache.durable_image.pages
    # Growing just raises the ceiling; nothing is prefetched back.
    assert cache.resize(128 * 4096) == 128
    assert len(cache) <= 8


def test_page_cache_resize_rejects_sub_page_quota():
    cache = PageCache(NVMeSSD(Clock()), capacity=16 * 4096)
    with pytest.raises(ValueError):
        cache.resize(100)


# ---------------------------------------------------------------------
# H2 byte budget (the arbiter's device-footprint lever)
# ---------------------------------------------------------------------
def _teraheap_vm(h2_size=gb(4), budget=None):
    vm = JavaVM(
        VMConfig(
            heap_size=gb(1),
            teraheap=TeraHeapConfig(enabled=True, h2_size=h2_size),
            page_cache_size=gb(1),
        ),
        store=HeapStore(),
    )
    if budget is not None:
        vm.h2.byte_budget = budget
    return vm


def test_h2_byte_budget_denies_region_allocation():
    region = TeraHeapConfig().region_size
    vm = _teraheap_vm(budget=2 * region)
    vm.h2._new_region("a", epoch=0)
    vm.h2._new_region("b", epoch=0)
    with pytest.raises(DeviceFullError) as excinfo:
        vm.h2._new_region("c", epoch=0)
    assert getattr(excinfo.value, "budget_denial", False)


def test_h2_budget_denial_does_not_burn_the_failure_budget():
    """An arbiter quota denial is elastic — it must not degrade H2."""
    region = TeraHeapConfig().region_size
    vm = _teraheap_vm(budget=region)
    vm.h2._new_region("warm", epoch=0)
    anchor = vm.allocate(64, name="anchor")
    vm.roots.add(anchor)
    for _ in range(64):
        obj = vm.allocate(8 * KiB)
        vm.write_ref(anchor, obj)
    vm.h2_tag_root(anchor, "cold")
    vm.h2_move("cold")
    vm.major_gc()
    assert vm.collector.h2_transfers_denied > 0
    if vm.resilience is not None:
        assert vm.resilience.failures == 0
        assert not vm.resilience.degraded


# ---------------------------------------------------------------------
# Bandwidth arbiter
# ---------------------------------------------------------------------
def _arbiter(work_conserving=True):
    return BandwidthArbiter(
        read_bw=1000.0, write_bw=1000.0, work_conserving=work_conserving
    )


def test_arbiter_default_share_is_the_guarantee():
    arb = _arbiter()
    for name in ("a", "b", "c", "d"):
        arb.register(name)
    assert arb.share("a") == pytest.approx(0.25)


def test_arbiter_never_caps_an_active_tenant_below_its_guarantee():
    arb = _arbiter()
    arb.register("busy")
    arb.register("idle")
    # "busy" demands more than the device can give; "idle" does nothing.
    arb.note("busy", 2000, write=False)
    arb.end_epoch(1.0)
    assert arb.share("idle") == pytest.approx(0.5)
    assert arb.share("busy") > 0.5


def test_arbiter_retired_tenant_donates_its_guarantee():
    arb = _arbiter()
    arb.register("heavy")
    arb.register("done")
    arb.note("heavy", 1500, write=False)
    arb.note("done", 100, write=False)
    arb.end_epoch(1.0)
    before = arb.share("heavy")
    arb.retire("done")
    arb.note("heavy", 1500, write=False)
    arb.end_epoch(1.0)
    assert arb.share("heavy") > before
    assert arb.share("heavy") > 0.9


def test_static_partition_ignores_demand():
    arb = _arbiter(work_conserving=False)
    arb.register("heavy")
    arb.register("done")
    arb.note("heavy", 5000, write=False)
    arb.retire("done")
    arb.end_epoch(1.0)
    assert arb.share("heavy") == pytest.approx(0.5)
    assert arb.share("done") == pytest.approx(0.5)


def test_tenant_device_scales_bandwidth_by_share_and_survives_rebind():
    template = NVMeSSD(Clock())
    arb = BandwidthArbiter(template.read_bw, template.write_bw)
    dev_a = TenantDevice(template, arb, "a")
    TenantDevice(template, arb, "b")
    solo_cost = template.read(64 * KiB)
    shared_cost = dev_a.read(64 * KiB)
    assert shared_cost > solo_cost
    # The facade's base bandwidth is restored after every transfer.
    assert dev_a.read_bw == template.read_bw
    # rebind() (what JavaVM does to foreign-clock devices) must keep the
    # arbitration link: same tenant identity, same arbiter.
    clone = dev_a.rebind(Clock())
    assert clone.tenant == "a"
    assert clone.arbiter is arb
    read_before = arb._links["a"].total_read
    clone.read(4 * KiB)
    assert arb._links["a"].total_read > read_before


# ---------------------------------------------------------------------
# Shared health monitor: one device, one classification
# ---------------------------------------------------------------------
def test_shared_monitor_gives_all_tenants_one_classification():
    box_clock = Clock()
    monitor = DeviceHealthMonitor(box_clock, GovernorConfig().health)
    vms = [
        JavaVM(
            VMConfig(
                heap_size=gb(1),
                teraheap=TeraHeapConfig(enabled=True, h2_size=gb(4)),
                page_cache_size=gb(1),
                governor=GovernorConfig(),
            ),
            store=HeapStore(),
            health=monitor,
        )
        for _ in range(2)
    ]
    assert all(vm.health is monitor for vm in vms)
    # One brownout on the shared device...
    for _ in range(64):
        monitor.observe_error("nvme", "read")
    state = monitor.state_of("nvme")
    assert state is not DeviceState.HEALTHY
    # ...is the single classification every tenant's governor consults.
    assert vms[0].health.state_of("nvme") is state
    assert vms[1].health.state_of("nvme") is state
    # Retiring one tenant detaches only its own listeners.
    listeners_before = len(monitor._listeners)
    vms[0].retire()
    assert 0 < len(monitor._listeners) < listeners_before
    vms[1].retire()
    assert len(monitor._listeners) == 0


# ---------------------------------------------------------------------
# Registry scoping: unregister folds, idempotently
# ---------------------------------------------------------------------
def test_unregister_policy_folds_counters_once():
    reset_registries()
    try:
        policy = ResiliencePolicy(FaultConfig(), Clock())
        register_policy(policy)
        policy.plan.injected["latency"] = 3
        unregister_policy(policy)
        assert resilience_summary().get("faults_injected") == 3
        unregister_policy(policy)  # idempotent: no double fold
        assert resilience_summary().get("faults_injected") == 3
    finally:
        reset_registries()


# ---------------------------------------------------------------------
# ServerBox: arbitration bounds and determinism
# ---------------------------------------------------------------------
def _small_spec(**kw):
    defaults = dict(
        tenants=2, mean_dataset_bytes=gb(1) // 4, arbiter=True
    )
    defaults.update(kw)
    return ServerSpec(**defaults)


def test_box_pressure_arbiter_keeps_levers_in_bounds():
    spec = _small_spec(tenants=3)
    box = ServerBox(spec)
    box.run()
    region = TeraHeapConfig().region_size
    saw_decision = False
    for record in box.pressure.records:
        for name, high in record.watermarks.items():
            saw_decision = True
            assert 0.60 <= high <= 0.85
        budgets = record.h2_budgets
        if budgets:
            assert sum(budgets.values()) <= spec.h2_capacity
            for budget in budgets.values():
                assert budget % region == 0
        for pages in record.cache_pages.values():
            assert pages >= 1
    assert saw_decision
    for link in box.bandwidth._links.values():
        assert link.share is None or 0.0 < link.share <= 1.0


def test_box_tenants_have_private_stores_and_shared_monitor():
    box = ServerBox(_small_spec())
    stores = [t.vm.store for t in box.tenants]
    assert stores[0] is not stores[1]
    assert box.tenants[0].vm.health is box.tenants[1].vm.health
    report = box.run()
    assert report.makespan > 0
    assert all(t.processed_bytes > 0 for t in report.tenants)
    # Every tenant moved data to H2: co-location exercised TeraHeap.
    assert all(t.h2_moved_bytes > 0 for t in report.tenants)


def test_box_runs_are_deterministic():
    a = ServerBox(_small_spec(tenants=3)).run()
    b = ServerBox(_small_spec(tenants=3)).run()
    assert a.makespan == b.makespan
    assert a.aggregate_throughput == b.aggregate_throughput
    assert a.epoch_log == b.epoch_log
    for ta, tb in zip(a.tenants, b.tenants):
        assert ta == tb


def test_control_box_keeps_static_budgets():
    spec = _small_spec(arbiter=False)
    box = ServerBox(spec)
    region = TeraHeapConfig().region_size
    expected = spec.h2_capacity // spec.tenants
    expected -= expected % region
    box.run()
    for tenant in box.tenants:
        assert tenant.vm.h2.byte_budget == expected
