"""Serialization: closure walking, costs, temp-object pressure, errors."""

import pytest

from repro.clock import Bucket, Clock
from repro.config import CostModel
from repro.errors import SerializationError
from repro.heap.object_model import HeapObject
from repro.serdes.serializer import JavaSerializer, KryoSerializer


def make_serializer(cls=KryoSerializer, temp_sink=None):
    clock = Clock()
    return cls(clock, CostModel(), allocate_temp=temp_sink), clock


def make_graph(depth=3, fanout=2, size=512):
    def build(d):
        if d == 0:
            return HeapObject(size)
        return HeapObject(size, refs=[build(d - 1) for _ in range(fanout)])

    return build(depth)


def test_closure_covers_transitive_graph():
    ser, _ = make_serializer()
    root = make_graph(depth=2, fanout=2)
    assert len(ser.closure(root)) == 7  # 1 + 2 + 4


def test_closure_handles_cycles():
    ser, _ = make_serializer()
    a = HeapObject(64)
    b = HeapObject(64, refs=[a])
    a.refs.append(b)
    assert len(ser.closure(a)) == 2


def test_serialize_returns_blob():
    ser, clock = make_serializer()
    root = make_graph()
    blob = ser.serialize(root)
    assert blob.object_count == 15
    assert blob.size_bytes == 15 * 512
    assert blob.root_oid == root.oid
    assert clock.total(Bucket.SD_IO) > 0


def test_serialize_charges_proportionally():
    ser, clock = make_serializer()
    small = ser.serialize(make_graph(depth=1))
    t1 = clock.total(Bucket.SD_IO)
    ser.serialize(make_graph(depth=4))
    t2 = clock.total(Bucket.SD_IO) - t1
    assert t2 > t1


def test_non_serializable_object_rejected():
    ser, _ = make_serializer()
    bad = HeapObject(64, serializable=False)
    root = HeapObject(64, refs=[bad])
    with pytest.raises(SerializationError):
        ser.serialize(root)


def test_metadata_rejected():
    ser, _ = make_serializer()
    root = HeapObject(64, refs=[HeapObject(64, is_metadata=True)])
    with pytest.raises(SerializationError):
        ser.serialize(root)


def test_temp_object_pressure():
    temps = []
    ser, _ = make_serializer(temp_sink=temps.append)
    root = make_graph()
    blob = ser.serialize(root)
    assert temps and temps[0] == int(
        blob.size_bytes * ser.cost.sd_temp_object_ratio
    )
    ser.deserialize_cost(blob)
    assert len(temps) == 2


def test_deserialize_cost_charges_sd_bucket():
    ser, clock = make_serializer()
    blob = ser.serialize(make_graph())
    before = clock.total(Bucket.SD_IO)
    ser.deserialize_cost(blob)
    assert clock.total(Bucket.SD_IO) > before


def test_java_slower_than_kryo():
    kryo, kc = make_serializer(KryoSerializer)
    java, jc = make_serializer(JavaSerializer)
    kryo.serialize(make_graph())
    java.serialize(make_graph())
    assert jc.total(Bucket.SD_IO) > kc.total(Bucket.SD_IO)


def test_charge_helpers_count_traffic():
    ser, clock = make_serializer()
    ser.charge_serialize(100, 10_000)
    ser.charge_deserialize(100, 10_000)
    assert ser.objects_serialized == 100
    assert ser.bytes_deserialized == 10_000
    assert clock.total(Bucket.SD_IO) > 0
