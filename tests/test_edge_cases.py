"""Edge cases and failure injection across the substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    JavaVM,
    OutOfMemoryError,
    SegmentationFault,
    TeraHeapConfig,
    VMConfig,
    gb,
)
from repro.clock import Bucket, Clock
from repro.config import CostModel
from repro.devices.mmap import BASE_PAGE, MappedFile
from repro.devices.nvme import NVMeSSD
from repro.devices.page_cache import PageCache
from repro.heap.object_model import HeapObject, SpaceId
from repro.serdes.serializer import KryoSerializer
from repro.units import KiB


class TestAllocatorEdges:
    def test_allocate_exactly_heap_capacity_fails_gracefully(self):
        vm = JavaVM(VMConfig(heap_size=gb(2)))
        with pytest.raises(OutOfMemoryError) as exc:
            vm.allocate(vm.heap.capacity * 2)
        assert exc.value.requested == vm.heap.capacity * 2

    def test_temp_allocation_oom_sets_flag(self):
        vm = JavaVM(VMConfig(heap_size=gb(2)))
        keep = []
        with pytest.raises(OutOfMemoryError):
            while True:
                o = vm.allocate(64 * KiB)
                vm.roots.add(o)
                keep.append(o)
        assert vm.oom

    def test_minimum_object_size(self):
        vm = JavaVM(VMConfig(heap_size=gb(2)))
        with pytest.raises(ValueError):
            vm.allocate(8)

    def test_allocation_after_oom_recovers_if_space_freed(self):
        vm = JavaVM(VMConfig(heap_size=gb(2)))
        keep = []
        with pytest.raises(OutOfMemoryError):
            while True:
                o = vm.allocate(64 * KiB)
                vm.roots.add(o)
                keep.append(o)
        for o in keep:
            vm.roots.remove(o)
        vm.major_gc()
        obj = vm.allocate(64 * KiB)  # succeeds again
        assert obj.space is not SpaceId.FREED


class TestH2Edges:
    def make_vm(self, h2_gb=1):
        return JavaVM(
            VMConfig(
                heap_size=gb(4),
                teraheap=TeraHeapConfig(
                    enabled=True, h2_size=gb(h2_gb), region_size=16 * KiB
                ),
                page_cache_size=gb(1),
            )
        )

    def test_h2_exhaustion_propagates_as_oom(self):
        vm = self.make_vm(h2_gb=1)  # 64 regions only
        with pytest.raises(OutOfMemoryError):
            for i in range(200):
                o = vm.allocate(12 * KiB)
                vm.roots.add(o)
                vm.h2_tag_root(o, f"g{i}")
                vm.h2_move(f"g{i}")
                vm.major_gc()

    def test_double_tag_same_label_is_idempotent(self):
        vm = self.make_vm(h2_gb=16)
        o = vm.allocate(1024)
        vm.roots.add(o)
        vm.h2_tag_root(o, "x")
        vm.h2_tag_root(o, "x")
        vm.h2_move("x")
        vm.major_gc()
        assert o.space is SpaceId.H2

    def test_move_without_tag_is_noop(self):
        vm = self.make_vm(h2_gb=16)
        o = vm.allocate(1024)
        vm.roots.add(o)
        vm.h2_move("never-tagged")
        vm.major_gc()
        assert o.space is SpaceId.OLD

    def test_retag_after_reclaim(self):
        """A label whose group died can be reused for a new group."""
        vm = self.make_vm(h2_gb=16)
        a = vm.allocate(1024, name="a")
        vm.roots.add(a)
        vm.h2_tag_root(a, "label")
        vm.h2_move("label")
        vm.major_gc()
        vm.roots.remove(a)
        vm.major_gc()
        assert a.space is SpaceId.FREED
        b = vm.allocate(1024, name="b")
        vm.roots.add(b)
        vm.h2_tag_root(b, "label")
        vm.h2_move("label")
        vm.major_gc()
        assert b.space is SpaceId.H2


class TestDeviceEdges:
    def test_zero_byte_read_costs_latency_only(self):
        clock = Clock()
        dev = NVMeSSD(clock)
        cost = dev.read(0)
        assert cost >= dev.read_latency

    def test_page_cache_single_page_capacity(self):
        cache = PageCache(NVMeSSD(Clock()), capacity=4096)
        cache.access([1])
        cache.access([2])
        assert len(cache) == 1

    def test_mapping_boundary_access(self):
        clock = Clock()
        dev = NVMeSSD(clock)
        cache = PageCache(dev, 64 * BASE_PAGE)
        m = MappedFile(dev, 0x1000, 8 * BASE_PAGE, cache)
        m.load(0x1000 + 8 * BASE_PAGE - 1, 1)  # last byte: fine
        with pytest.raises(SegmentationFault):
            m.load(0x1000 + 8 * BASE_PAGE, 1)


class TestSerializerEdges:
    def test_empty_refs_single_object(self):
        ser = KryoSerializer(Clock(), CostModel())
        blob = ser.serialize(HeapObject(64))
        assert blob.object_count == 1

    def test_diamond_graph_counted_once(self):
        ser = KryoSerializer(Clock(), CostModel())
        shared = HeapObject(64)
        a = HeapObject(64, refs=[shared])
        b = HeapObject(64, refs=[shared])
        root = HeapObject(64, refs=[a, b])
        blob = ser.serialize(root)
        assert blob.object_count == 4

    @settings(max_examples=25)
    @given(sizes=st.lists(st.integers(16, 4096), min_size=1, max_size=30))
    def test_blob_bytes_equal_closure_bytes(self, sizes):
        ser = KryoSerializer(Clock(), CostModel())
        children = [HeapObject(s) for s in sizes[1:]]
        root = HeapObject(sizes[0], refs=children)
        blob = ser.serialize(root)
        assert blob.size_bytes == sum(sizes)


class TestClockEdges:
    def test_deeply_nested_contexts(self):
        clock = Clock()
        with clock.context(Bucket.MINOR_GC):
            with clock.context(Bucket.MAJOR_GC):
                with clock.context(Bucket.SD_IO):
                    with clock.context(Bucket.OTHER):
                        clock.charge(1.0)
        assert clock.total(Bucket.OTHER) == 1.0
        assert clock.now == 1.0

    def test_zero_charge_allowed(self):
        clock = Clock()
        clock.charge(0.0)
        assert clock.now == 0.0


class TestWriteBarrierEdges:
    def test_remove_nonexistent_ref_is_silent(self):
        vm = JavaVM(VMConfig(heap_size=gb(2)))
        a, b = vm.allocate(64), vm.allocate(64)
        vm.write_ref(a, None, remove=b)  # b was never referenced
        assert a.refs == []

    def test_null_store_only_fires_barrier(self):
        vm = JavaVM(VMConfig(heap_size=gb(2)))
        a = vm.allocate(64)
        before = vm.barrier.barrier_count
        vm.write_ref(a, None)
        assert vm.barrier.barrier_count == before + 1
        assert a.refs == []
